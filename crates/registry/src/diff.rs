//! The diff engine: compares two snapshots of one corpus and explains
//! what changed in gadget-chain terms.
//!
//! Everything here is pure snapshot arithmetic — no corpus re-scan. The
//! symbolic edge sets diff directly; newly activated chains are the chain
//! set difference attributed to the added/changed edges lying on them; and
//! near-chains come from the pathfinder's bounded relaxation pass run over
//! the search projection rebuilt from the *new* snapshot
//! ([`Snapshot::rebuild_search_graph`]). That makes `tabby diff` both
//! deterministic and much cheaper than a cold scan of v(N+1).

use crate::snapshot::{EdgeKind, Snapshot, SymbolicEdge};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use tabby_pathfinder::{find_near_chains, GadgetChain, NearChain, NearChainConfig, WitnessTier};

/// A chain present in the new snapshot but not the old, with the edge
/// delta that completed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivatedChain {
    /// The newly reachable chain.
    pub chain: GadgetChain,
    /// Added or changed edges of the delta that lie on the chain — the
    /// specific code change that completed it. Empty only if the chain
    /// appeared without any edge on it changing (e.g. a sink/source
    /// annotation change).
    pub completing_edges: Vec<SymbolicEdge>,
}

impl std::fmt::Display for ActivatedChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.chain)?;
        for edge in &self.completing_edges {
            write!(f, "\n  completed by: {edge}")?;
        }
        Ok(())
    }
}

/// A chain present in both snapshots whose witness tier went *up* — e.g. a
/// statically known chain whose latest version now executes all the way to
/// its sink (`plan-found` → `witnessed`). No new chain appeared, but an
/// existing one became more exploitable, so promotions make a diff
/// non-clean just like activations do. Chains missing a tier (snapshotted
/// without `--witness`) count as `static-only`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierPromotion {
    /// The promoted chain, as recorded in the new snapshot.
    pub chain: GadgetChain,
    /// Its effective tier in the old snapshot.
    pub from: WitnessTier,
    /// Its effective tier in the new snapshot (`from < to` always holds).
    pub to: WitnessTier,
}

impl std::fmt::Display for TierPromotion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(promoted {} -> {}) {}", self.from, self.to, self.chain)
    }
}

/// What changed between `old` and `new`, in gadget-chain terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// `corpus@vN` of the old side.
    pub old_ref: String,
    /// `corpus@vN` of the new side.
    pub new_ref: String,
    /// True when both snapshots reference byte-identical corpus content
    /// (same content key) — every other field is then trivially empty.
    pub identical: bool,
    /// Edges present only in the new snapshot (includes the new side of
    /// payload changes).
    pub added_edges: Vec<SymbolicEdge>,
    /// Edges present only in the old snapshot (includes the old side of
    /// payload changes).
    pub removed_edges: Vec<SymbolicEdge>,
    /// Methods whose summary digest changed, plus methods only in one
    /// side. Sorted.
    pub changed_methods: Vec<String>,
    /// Chains reachable in new but not old, with edge attribution.
    pub activated: Vec<ActivatedChain>,
    /// Chains reachable in old but not new.
    pub resolved: Vec<GadgetChain>,
    /// Chains present in both snapshots whose witness tier increased
    /// (requires both versions to have been snapshotted with the witness
    /// stage on; absent tiers count as `static-only`).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tier_promotions: Vec<TierPromotion>,
    /// Near-chains of the new snapshot: one forgiven edge away from a
    /// source, blocking Trigger_Condition position named.
    pub near_chains: Vec<NearChain>,
    /// True when the near-chain pass hit its expansion budget.
    pub near_truncated: bool,
}

impl DiffReport {
    /// True when no chain became newly reachable and no existing chain's
    /// witness tier increased — the "safe to upgrade" signal CI gates on
    /// (exit code 0 vs 2).
    pub fn is_clean(&self) -> bool {
        self.activated.is_empty() && self.tier_promotions.is_empty()
    }
}

impl std::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "diff {} -> {}", self.old_ref, self.new_ref)?;
        if self.identical {
            return write!(f, "  corpus content identical; nothing to report");
        }
        writeln!(
            f,
            "  edges: +{} -{}  methods changed: {}",
            self.added_edges.len(),
            self.removed_edges.len(),
            self.changed_methods.len()
        )?;
        writeln!(
            f,
            "  newly activated chains: {}  resolved chains: {}  near-chains: {}{}",
            self.activated.len(),
            self.resolved.len(),
            self.near_chains.len(),
            if self.near_truncated {
                " (truncated)"
            } else {
                ""
            }
        )?;
        if !self.tier_promotions.is_empty() {
            writeln!(f, "  tier promotions: {}", self.tier_promotions.len())?;
        }
        for a in &self.activated {
            writeln!(f, "{a}")?;
        }
        for p in &self.tier_promotions {
            writeln!(f, "{p}")?;
        }
        for c in &self.resolved {
            writeln!(f, "(resolved) {c}")?;
        }
        for n in &self.near_chains {
            writeln!(f, "{n}")?;
        }
        Ok(())
    }
}

/// Chain identity across independently built graphs: node ids are not
/// stable, signatures and category are.
fn chain_key(c: &GadgetChain) -> (&[String], &str) {
    (&c.signatures, &c.sink_category)
}

/// The tier a chain is compared at: a chain snapshotted without the
/// witness stage has no tier and counts as `static-only`, the floor.
fn effective_tier(c: &GadgetChain) -> WitnessTier {
    c.tier.unwrap_or(WitnessTier::StaticOnly)
}

fn class_of(sig: &str) -> &str {
    sig.rfind('.').map(|i| &sig[..i]).unwrap_or(sig)
}

/// True when `edge` (an added/changed edge of the delta) lies on the
/// consecutive signature pair `(a, b)` of a chain running source → sink:
/// CALL edges match in chain direction, ALIAS in either orientation, and
/// EXTEND/INTERFACE when they connect the two methods' classes (the class
/// hierarchy change that rebinds a virtual call).
fn edge_on_pair(edge: &SymbolicEdge, a: &str, b: &str) -> bool {
    match edge.kind {
        EdgeKind::Call => edge.from == a && edge.to == b,
        EdgeKind::Alias => (edge.from == a && edge.to == b) || (edge.from == b && edge.to == a),
        // Hierarchy edges attribute only when they connect the two
        // methods' classes directly; looser matching over-attributes.
        EdgeKind::Extend | EdgeKind::Interface => {
            let (ca, cb) = (class_of(a), class_of(b));
            (edge.from == ca && edge.to == cb) || (edge.from == cb && edge.to == ca)
        }
    }
}

/// Diffs `old` against `new` (two snapshots of the same corpus) and runs
/// the near-chain relaxation over the new snapshot's search projection.
pub fn diff_snapshots(old: &Snapshot, new: &Snapshot, near: &NearChainConfig) -> DiffReport {
    let mut report = DiffReport {
        old_ref: old.reference(),
        new_ref: new.reference(),
        identical: old.content_key == new.content_key,
        added_edges: Vec::new(),
        removed_edges: Vec::new(),
        changed_methods: Vec::new(),
        activated: Vec::new(),
        resolved: Vec::new(),
        tier_promotions: Vec::new(),
        near_chains: Vec::new(),
        near_truncated: false,
    };
    if report.identical {
        return report;
    }

    let old_edges: BTreeSet<&SymbolicEdge> = old.edges.iter().collect();
    let new_edges: BTreeSet<&SymbolicEdge> = new.edges.iter().collect();
    report.added_edges = new_edges
        .difference(&old_edges)
        .map(|e| (*e).clone())
        .collect();
    report.removed_edges = old_edges
        .difference(&new_edges)
        .map(|e| (*e).clone())
        .collect();

    let mut changed: BTreeSet<&str> = BTreeSet::new();
    for (method, digest) in &new.summary_digests {
        if old.summary_digests.get(method) != Some(digest) {
            changed.insert(method);
        }
    }
    for method in old.summary_digests.keys() {
        if !new.summary_digests.contains_key(method) {
            changed.insert(method);
        }
    }
    report.changed_methods = changed.into_iter().map(str::to_owned).collect();

    let old_chains: BTreeMap<(&[String], &str), WitnessTier> = old
        .chains
        .iter()
        .map(|c| (chain_key(c), effective_tier(c)))
        .collect();
    let new_chains: BTreeSet<(&[String], &str)> = new.chains.iter().map(chain_key).collect();
    for chain in &new.chains {
        if let Some(&old_tier) = old_chains.get(&chain_key(chain)) {
            // The chain survived the upgrade; report it if its witness
            // tier went up (a static finding became an executable one).
            let new_tier = effective_tier(chain);
            if new_tier > old_tier {
                report.tier_promotions.push(TierPromotion {
                    chain: chain.clone(),
                    from: old_tier,
                    to: new_tier,
                });
            }
            continue;
        }
        let completing_edges: Vec<SymbolicEdge> = report
            .added_edges
            .iter()
            .filter(|e| {
                chain
                    .signatures
                    .windows(2)
                    .any(|pair| edge_on_pair(e, &pair[0], &pair[1]))
            })
            .cloned()
            .collect();
        report.activated.push(ActivatedChain {
            chain: chain.clone(),
            completing_edges,
        });
    }
    report.resolved = old
        .chains
        .iter()
        .filter(|c| !new_chains.contains(&chain_key(c)))
        .cloned()
        .collect();

    let (graph, schema, sinks, categories, sources) = new.rebuild_search_graph();
    let outcome = find_near_chains(&graph, &schema, sinks, categories, &sources, near);
    report.near_chains = outcome.near_chains;
    report.near_truncated = outcome.truncated;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SinkEntry;
    use std::collections::BTreeMap;

    fn call(from: &str, to: &str, pp: &[i64]) -> SymbolicEdge {
        SymbolicEdge {
            kind: EdgeKind::Call,
            from: from.to_owned(),
            to: to.to_owned(),
            payload: pp.to_vec(),
        }
    }

    fn chain(sigs: &[&str], category: &str) -> GadgetChain {
        GadgetChain {
            signatures: sigs.iter().map(|s| (*s).to_owned()).collect(),
            sink_category: category.to_owned(),
            tier: None,
            nodes: Vec::new(),
        }
    }

    /// A corpus hand-assembled at the snapshot level: v1 has the sink call
    /// but the pivot sanitizes (PP all-∞ on the pivot→helper hop), v2
    /// forwards the payload. v1 also carries a permanently dormant route.
    fn version(v: u32, pivot_forwards: bool) -> Snapshot {
        let pivot = "t.Pivot.readObject";
        let helper = "t.Helper.run";
        let sink = "java.lang.Runtime.exec";
        let dormant = "t.Dormant.readObject";
        let pivot_pp: &[i64] = if pivot_forwards { &[0, 1] } else { &[-1, -1] };
        let edges = vec![
            call(pivot, helper, pivot_pp),
            call(helper, sink, &[-1, 1]),
            call(dormant, helper, &[-1, -1]),
        ];
        let methods: Vec<String> = [pivot, helper, sink, dormant]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let summary_digests: BTreeMap<String, u64> = methods
            .iter()
            .enumerate()
            .map(|(i, m)| {
                // The pivot's digest flips with its PP; others are stable.
                let d = if m == pivot && pivot_forwards {
                    1000
                } else {
                    i as u64
                };
                (m.clone(), d)
            })
            .collect();
        let chains = if pivot_forwards {
            vec![chain(&[pivot, helper, sink], "EXEC")]
        } else {
            Vec::new()
        };
        Snapshot {
            format: crate::snapshot::SNAPSHOT_FORMAT,
            corpus: "t".to_owned(),
            version: v,
            content_key: format!("{:016x}", u64::from(v)),
            class_hashes: BTreeMap::new(),
            depth: 12,
            methods,
            edges,
            sinks: vec![SinkEntry {
                method: sink.to_owned(),
                trigger_condition: vec![1],
                category: "EXEC".to_owned(),
            }],
            sources: vec![pivot.to_owned(), dormant.to_owned()],
            chains,
            summary_digests,
            diagnostics: Default::default(),
        }
    }

    #[test]
    fn activation_is_attributed_to_the_changed_edge() {
        let v1 = version(1, false);
        let v2 = version(2, true);
        let report = diff_snapshots(&v1, &v2, &NearChainConfig::default());
        assert!(!report.identical);
        assert!(!report.is_clean());
        assert_eq!(report.activated.len(), 1, "{report}");
        let a = &report.activated[0];
        assert_eq!(a.chain.source(), "t.Pivot.readObject");
        assert_eq!(a.chain.sink(), "java.lang.Runtime.exec");
        assert_eq!(a.completing_edges.len(), 1, "{report}");
        assert_eq!(a.completing_edges[0].from, "t.Pivot.readObject");
        assert_eq!(a.completing_edges[0].to, "t.Helper.run");
        assert_eq!(a.completing_edges[0].payload, vec![0, 1]);
        assert!(report.resolved.is_empty());
        // Methods changed: exactly the pivot.
        assert_eq!(
            report.changed_methods,
            vec!["t.Pivot.readObject".to_owned()]
        );
        // The changed edge shows up as one removed + one added.
        assert_eq!(report.added_edges.len(), 1);
        assert_eq!(report.removed_edges.len(), 1);
    }

    #[test]
    fn dormant_route_surfaces_as_a_near_chain_with_named_position() {
        let v1 = version(1, false);
        let v2 = version(2, true);
        let report = diff_snapshots(&v1, &v2, &NearChainConfig::default());
        let near: Vec<&NearChain> = report
            .near_chains
            .iter()
            .filter(|n| n.signatures.first().map(String::as_str) == Some("t.Dormant.readObject"))
            .collect();
        assert_eq!(near.len(), 1, "{report}");
        assert_eq!(near[0].blocked.caller, "t.Dormant.readObject");
        assert_eq!(near[0].blocked.callee, "t.Helper.run");
        assert_eq!(near[0].blocked.position, 1);
    }

    #[test]
    fn reverse_diff_reports_the_chain_as_resolved() {
        let v1 = version(1, false);
        let v2 = version(2, true);
        let report = diff_snapshots(&v2, &v1, &NearChainConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.activated.len(), 0);
        assert_eq!(report.resolved.len(), 1);
        assert_eq!(report.resolved[0].source(), "t.Pivot.readObject");
    }

    #[test]
    fn identical_content_short_circuits() {
        let v1 = version(1, false);
        let mut v1b = version(2, true);
        v1b.content_key = v1.content_key.clone();
        let report = diff_snapshots(&v1, &v1b, &NearChainConfig::default());
        assert!(report.identical);
        assert!(report.is_clean());
        assert!(report.added_edges.is_empty());
        assert!(report.near_chains.is_empty());
    }

    #[test]
    fn self_diff_is_a_no_op_for_activations() {
        let v2 = version(2, true);
        let report = diff_snapshots(&v2, &v2, &NearChainConfig::default());
        assert!(report.identical);
        assert!(report.is_clean());
    }

    #[test]
    fn tier_promotion_is_reported_and_makes_the_diff_dirty() {
        // Same chain in both versions; only the witness tier moves.
        let mut v2 = version(2, true);
        let mut v3 = version(3, true);
        v2.chains[0].tier = Some(WitnessTier::PlanFound);
        v3.chains[0].tier = Some(WitnessTier::Witnessed);
        let report = diff_snapshots(&v2, &v3, &NearChainConfig::default());
        assert!(report.activated.is_empty(), "{report}");
        assert_eq!(report.tier_promotions.len(), 1, "{report}");
        let p = &report.tier_promotions[0];
        assert_eq!(p.from, WitnessTier::PlanFound);
        assert_eq!(p.to, WitnessTier::Witnessed);
        assert_eq!(p.chain.source(), "t.Pivot.readObject");
        assert!(!report.is_clean(), "a promotion is an escalation");
        let text = report.to_string();
        assert!(text.contains("tier promotions: 1"), "{text}");
        assert!(text.contains("promoted plan-found -> witnessed"), "{text}");
        // An untiered old snapshot counts as static-only: moving to a
        // tiered one still reports the climb …
        v2.chains[0].tier = None;
        let report = diff_snapshots(&v2, &v3, &NearChainConfig::default());
        assert_eq!(report.tier_promotions.len(), 1);
        assert_eq!(report.tier_promotions[0].from, WitnessTier::StaticOnly);
        // … while a demotion (or equal tier) reports nothing.
        let report = diff_snapshots(&v3, &v2, &NearChainConfig::default());
        assert!(report.tier_promotions.is_empty(), "{report}");
        assert!(report.is_clean());
    }

    #[test]
    fn report_display_names_the_completing_edge() {
        let v1 = version(1, false);
        let v2 = version(2, true);
        let report = diff_snapshots(&v1, &v2, &NearChainConfig::default());
        let text = report.to_string();
        assert!(text.contains("newly activated chains: 1"), "{text}");
        assert!(
            text.contains("completed by: CALL t.Pivot.readObject -> t.Helper.run"),
            "{text}"
        );
        assert!(text.contains("maps to \u{221e}"), "{text}");
    }
}
