//! The on-disk registry: named corpora, each a directory of versioned
//! snapshot files.
//!
//! Layout is deliberately boring and inspectable:
//!
//! ```text
//! <root>/
//!   <corpus>/
//!     v1.json           (envelope-wrapped JSON snapshot)
//!     v2.json
//!     pins.json         (GC-exempt version list)
//!     quarantine/       (corrupt files moved aside, never served)
//! ```
//!
//! Every write goes through the crash-safe checksummed envelope
//! (`tabby_core::envelope`): fsync'd temp file, atomic publish, parent-dir
//! fsync. Version files publish with *create-new* semantics (`link`), so
//! two concurrent writers can never mint the same `corpus@vN` — snapshots
//! are immutable once registered, and [`Registry::save_next`] retries with
//! the next free version on a lost race. Opening a registry runs a
//! crash-recovery sweep: orphaned write-staging `*.tmp` files are deleted
//! and version files that fail envelope verification are moved to the
//! corpus's `quarantine/` directory, rolling `latest_version` back to the
//! newest intact snapshot. Pre-envelope plain-JSON snapshots remain
//! readable.
//!
//! [`Registry::gc`] enforces a size budget: oldest unprotected versions go
//! first, the newest `keep_latest` per corpus and every pinned version
//! ([`Registry::pin`]) are exempt.

use crate::snapshot::{Snapshot, SNAPSHOT_FORMAT};
use std::fs;
use std::path::{Path, PathBuf};
use tabby_core::envelope::{
    self, kind, quarantine_file, read_envelope, write_envelope, EnvelopeError, Publish,
};

/// A `corpus@vN` reference split into its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusRef {
    /// Corpus name.
    pub corpus: String,
    /// Version number, or `None` for a bare `corpus` reference (meaning
    /// "latest" on read, "next" on write).
    pub version: Option<u32>,
}

impl std::fmt::Display for CorpusRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.version {
            Some(v) => write!(f, "{}@v{}", self.corpus, v),
            None => f.write_str(&self.corpus),
        }
    }
}

/// Parses `corpus` / `corpus@vN` references. Corpus names may not be
/// empty, contain path separators, or start with a dot.
///
/// # Errors
///
/// Returns a message naming the malformed part.
pub fn parse_corpus_ref(text: &str) -> Result<CorpusRef, String> {
    let (corpus, version) = match text.split_once('@') {
        Some((corpus, tag)) => {
            let digits = tag.strip_prefix('v').ok_or_else(|| {
                format!("malformed version tag {tag:?}: expected v<N> (as in demo@v2)")
            })?;
            let version: u32 = digits.parse().map_err(|_| {
                format!("malformed version tag {tag:?}: expected v<N> (as in demo@v2)")
            })?;
            if version == 0 {
                return Err("version numbers start at v1".to_owned());
            }
            (corpus, Some(version))
        }
        None => (text, None),
    };
    if corpus.is_empty() {
        return Err("empty corpus name".to_owned());
    }
    if corpus.starts_with('.') || corpus.contains('/') || corpus.contains('\\') {
        return Err(format!(
            "corpus name {corpus:?} may not start with '.' or contain path separators"
        ));
    }
    Ok(CorpusRef {
        corpus: corpus.to_owned(),
        version,
    })
}

/// What the crash-recovery sweep found and fixed on open.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Orphaned write-staging temp files deleted.
    pub removed_tmps: usize,
    /// Version files that failed envelope verification, moved to their
    /// corpus's `quarantine/` directory (`latest_version` rolls back past
    /// them).
    pub quarantined: Vec<PathBuf>,
}

/// Size-budget garbage collection policy for [`Registry::gc`].
#[derive(Debug, Clone, Copy)]
pub struct GcPolicy {
    /// Target total size of all version files, in bytes.
    pub budget_bytes: u64,
    /// The newest K versions of every corpus are always kept.
    pub keep_latest: usize,
}

/// What [`Registry::gc`] removed and kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Removed snapshots as `corpus@vN` references, oldest first.
    pub removed: Vec<String>,
    /// Bytes freed by the removals.
    pub bytes_freed: u64,
    /// Bytes still held by version files after the sweep.
    pub bytes_kept: u64,
}

/// A registry rooted at one directory.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// Opens (creating if absent) a registry rooted at `root`, running the
    /// crash-recovery sweep ([`Registry::recover`]) before returning.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Registry, String> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create registry root {}: {e}", root.display()))?;
        let registry = Registry { root };
        let _ = registry.recover();
        Ok(registry)
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn version_path(&self, corpus: &str, version: u32) -> PathBuf {
        self.root.join(corpus).join(format!("v{version}.json"))
    }

    fn pins_path(&self, corpus: &str) -> PathBuf {
        self.root.join(corpus).join("pins.json")
    }

    /// Crash-recovery sweep: deletes orphaned write-staging `*.tmp` files
    /// in every corpus directory and quarantines version files that fail
    /// envelope verification (bit rot, truncation, format skew), so
    /// [`Registry::latest_version`] rolls back to the newest intact
    /// snapshot. Pre-envelope plain-JSON files are left for [`load`] to
    /// verify. Never fails — recovery is best-effort by design.
    ///
    /// [`load`]: Registry::load
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let Ok(entries) = fs::read_dir(&self.root) else {
            return report;
        };
        for entry in entries.flatten() {
            if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let corpus_dir = entry.path();
            report.removed_tmps += envelope::sweep_orphan_tmps(&corpus_dir);
            let Ok(files) = fs::read_dir(&corpus_dir) else {
                continue;
            };
            for file in files.flatten() {
                let name = file.file_name();
                let Some(name) = name.to_str() else { continue };
                if parse_version_file(name).is_none() {
                    continue;
                }
                let path = file.path();
                let Ok(bytes) = fs::read(&path) else { continue };
                match envelope::decode_envelope(&bytes, kind::SNAPSHOT) {
                    Ok(_) => {}
                    // Legacy plain JSON: verified (and quarantined if
                    // corrupt) on load, not here.
                    Err(EnvelopeError::NotAnEnvelope) => {}
                    Err(_) => {
                        if let Ok(dest) = quarantine_file(&path) {
                            report.quarantined.push(dest);
                        }
                    }
                }
            }
        }
        report
    }

    /// Registered corpus names, sorted.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the root cannot be listed.
    pub fn corpora(&self) -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root)
            .map_err(|e| format!("cannot list registry root {}: {e}", self.root.display()))?;
        for entry in entries.flatten() {
            if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Registered versions of `corpus`, ascending. Empty when the corpus
    /// is unknown.
    pub fn versions(&self, corpus: &str) -> Vec<u32> {
        let mut versions = Vec::new();
        if let Ok(entries) = fs::read_dir(self.root.join(corpus)) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(v) = parse_version_file(name) {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        versions
    }

    /// The highest registered version of `corpus`, if any.
    pub fn latest_version(&self, corpus: &str) -> Option<u32> {
        self.versions(corpus).into_iter().next_back()
    }

    /// Persists a snapshot as `corpus@v{snapshot.version}`, durably: the
    /// envelope-wrapped body is fsync'd to a temp file, published with
    /// create-new semantics (two racing writers cannot both mint the same
    /// version), and the directory entry is fsync'd.
    ///
    /// # Errors
    ///
    /// Errors when the version already exists (snapshots are immutable) or
    /// on I/O failure; a failed write leaves no partial file behind.
    pub fn save(&self, snapshot: &Snapshot) -> Result<PathBuf, String> {
        let path = self.version_path(&snapshot.corpus, snapshot.version);
        let dir = self.root.join(&snapshot.corpus);
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create corpus dir {}: {e}", dir.display()))?;
        let body = serde_json::to_vec_pretty(snapshot)
            .map_err(|e| format!("cannot serialize snapshot: {e}"))?;
        match write_envelope(&path, kind::SNAPSHOT, &body, Publish::CreateNew) {
            Ok(()) => Ok(path),
            Err(EnvelopeError::AlreadyExists) => Err(format!(
                "{} already exists: snapshots are immutable, bump the version instead",
                snapshot.reference()
            )),
            Err(e) => Err(format!("cannot save {}: {e}", snapshot.reference())),
        }
    }

    /// Persists `snapshot` at the next free version of its corpus,
    /// retrying past concurrent writers: on a lost publish race the
    /// version is bumped and the save retried, so two `tabby snapshot`
    /// processes registering simultaneously mint distinct versions.
    /// `snapshot.version` is updated to the version actually minted
    /// (always ≥ its value on entry).
    ///
    /// # Errors
    ///
    /// Errors on I/O or serialization failure, or when the retry budget is
    /// exhausted (pathological: dozens of concurrent writers).
    pub fn save_next(&self, snapshot: &mut Snapshot) -> Result<PathBuf, String> {
        let floor = snapshot.version.max(1);
        let next = self
            .latest_version(&snapshot.corpus)
            .map_or(floor, |latest| floor.max(latest + 1));
        snapshot.version = next;
        for _ in 0..64 {
            match self.save(snapshot) {
                Ok(path) => return Ok(path),
                Err(e) if e.contains("immutable") => {
                    snapshot.version += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Err(format!(
            "cannot register {}: lost the publish race 64 times",
            snapshot.corpus
        ))
    }

    /// Loads `corpus@v{version}`, verifying the envelope. A snapshot that
    /// fails verification is quarantined (moved to the corpus's
    /// `quarantine/` directory) so it is never served and never considered
    /// by [`Registry::latest_version`] again. Pre-envelope plain-JSON
    /// snapshots load transparently.
    ///
    /// # Errors
    ///
    /// Errors when the snapshot is missing, corrupt (naming the quarantine
    /// location), or written by an incompatible format version.
    pub fn load(&self, corpus: &str, version: u32) -> Result<Snapshot, String> {
        let path = self.version_path(corpus, version);
        let body = match read_envelope(&path, kind::SNAPSHOT) {
            Ok(payload) => payload,
            Err(EnvelopeError::Missing) => {
                return Err(format!(
                    "no snapshot {corpus}@v{version} in {}",
                    self.root.display()
                ));
            }
            Err(EnvelopeError::NotAnEnvelope) => {
                fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?
            }
            Err(e) if e.is_corruption() => {
                let where_to = quarantine_file(&path)
                    .map(|dest| format!("quarantined at {}", dest.display()))
                    .unwrap_or_else(|q| q);
                return Err(format!(
                    "corrupt snapshot {corpus}@v{version} ({e}); {where_to}"
                ));
            }
            Err(e) => {
                return Err(format!("cannot read {}: {e}", path.display()));
            }
        };
        let snapshot: Snapshot = match serde_json::from_slice(&body) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                let where_to = quarantine_file(&path)
                    .map(|dest| format!("quarantined at {}", dest.display()))
                    .unwrap_or_else(|q| q);
                return Err(format!(
                    "corrupt snapshot {}: {e}; {where_to}",
                    path.display()
                ));
            }
        };
        if snapshot.format != SNAPSHOT_FORMAT {
            return Err(format!(
                "snapshot {} has format v{}, this build reads v{}",
                path.display(),
                snapshot.format,
                SNAPSHOT_FORMAT
            ));
        }
        Ok(snapshot)
    }

    /// Resolves a [`CorpusRef`] to a snapshot; a bare `corpus` reference
    /// loads the latest version.
    ///
    /// # Errors
    ///
    /// Errors when the corpus has no versions or the load fails.
    pub fn load_ref(&self, reference: &CorpusRef) -> Result<Snapshot, String> {
        let version = match reference.version {
            Some(v) => v,
            None => self.latest_version(&reference.corpus).ok_or_else(|| {
                format!(
                    "corpus {:?} has no snapshots in {}",
                    reference.corpus,
                    self.root.display()
                )
            })?,
        };
        self.load(&reference.corpus, version)
    }

    // ----- pins -------------------------------------------------------------

    /// Pinned (GC-exempt) versions of `corpus`, ascending.
    pub fn pinned(&self, corpus: &str) -> Vec<u32> {
        let path = self.pins_path(corpus);
        let body = match read_envelope(&path, kind::PINS) {
            Ok(payload) => payload,
            Err(EnvelopeError::NotAnEnvelope) => match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(_) => return Vec::new(),
            },
            Err(_) => return Vec::new(),
        };
        let mut pins: Vec<u32> = serde_json::from_slice(&body).unwrap_or_default();
        pins.sort_unstable();
        pins.dedup();
        pins
    }

    fn write_pins(&self, corpus: &str, pins: &[u32]) -> Result<(), String> {
        let dir = self.root.join(corpus);
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create corpus dir {}: {e}", dir.display()))?;
        let body = serde_json::to_vec(pins).map_err(|e| format!("cannot serialize pins: {e}"))?;
        write_envelope(
            &self.pins_path(corpus),
            kind::PINS,
            &body,
            Publish::Overwrite,
        )
        .map_err(|e| format!("cannot write pins for {corpus}: {e}"))
    }

    /// Pins `corpus@v{version}`: [`Registry::gc`] will never remove it.
    ///
    /// # Errors
    ///
    /// Errors when the version is not registered or the pin list cannot be
    /// written.
    pub fn pin(&self, corpus: &str, version: u32) -> Result<(), String> {
        if !self.versions(corpus).contains(&version) {
            return Err(format!("cannot pin {corpus}@v{version}: not registered"));
        }
        let mut pins = self.pinned(corpus);
        if !pins.contains(&version) {
            pins.push(version);
            pins.sort_unstable();
            self.write_pins(corpus, &pins)?;
        }
        Ok(())
    }

    /// Removes a pin; a no-op when the version was not pinned.
    ///
    /// # Errors
    ///
    /// Errors when the pin list cannot be written.
    pub fn unpin(&self, corpus: &str, version: u32) -> Result<(), String> {
        let mut pins = self.pinned(corpus);
        let before = pins.len();
        pins.retain(|&v| v != version);
        if pins.len() != before {
            self.write_pins(corpus, &pins)?;
        }
        Ok(())
    }

    // ----- size-budget GC ---------------------------------------------------

    /// Removes the oldest unprotected snapshots until the registry's
    /// version files fit `policy.budget_bytes`. Protected and never
    /// removed: the newest `policy.keep_latest` versions of every corpus,
    /// and every pinned version. Candidates are removed oldest first (by
    /// file modification time, then reference).
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the root cannot be listed.
    pub fn gc(&self, policy: &GcPolicy) -> Result<GcReport, String> {
        let mut report = GcReport::default();
        let mut candidates: Vec<(std::time::SystemTime, String, u32, u64, PathBuf)> = Vec::new();
        let mut total: u64 = 0;
        for corpus in self.corpora()? {
            let versions = self.versions(&corpus);
            let keep_from = versions.len().saturating_sub(policy.keep_latest.max(1));
            let protected: Vec<u32> = versions[keep_from..].to_vec();
            let pinned = self.pinned(&corpus);
            for &v in &versions {
                let path = self.version_path(&corpus, v);
                let Ok(meta) = fs::metadata(&path) else {
                    continue;
                };
                total += meta.len();
                if protected.contains(&v) || pinned.contains(&v) {
                    continue;
                }
                let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                candidates.push((modified, corpus.clone(), v, meta.len(), path));
            }
        }
        candidates.sort();
        for (_, corpus, version, len, path) in candidates {
            if total <= policy.budget_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                report.bytes_freed += len;
                report.removed.push(format!("{corpus}@v{version}"));
            }
        }
        report.bytes_kept = total;
        Ok(report)
    }
}

/// Parses `v<N>.json` file names to their version number.
fn parse_version_file(name: &str) -> Option<u32> {
    name.strip_prefix('v')
        .and_then(|rest| rest.strip_suffix(".json"))
        .and_then(|digits| digits.parse::<u32>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabby-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(corpus: &str, version: u32) -> Snapshot {
        Snapshot {
            format: SNAPSHOT_FORMAT,
            corpus: corpus.to_owned(),
            version,
            content_key: format!("{version:016x}"),
            class_hashes: Default::default(),
            depth: 12,
            methods: vec!["a.B.c".to_owned()],
            edges: Vec::new(),
            sinks: Vec::new(),
            sources: Vec::new(),
            chains: Vec::new(),
            summary_digests: Default::default(),
            diagnostics: Default::default(),
        }
    }

    #[test]
    fn parse_accepts_bare_and_versioned_refs() {
        let r = parse_corpus_ref("demo").expect("bare ref");
        assert_eq!(r.corpus, "demo");
        assert_eq!(r.version, None);
        let r = parse_corpus_ref("demo@v12").expect("versioned ref");
        assert_eq!(r.version, Some(12));
        assert_eq!(r.to_string(), "demo@v12");
    }

    #[test]
    fn parse_rejects_malformed_refs() {
        for bad in [
            "", "demo@", "demo@2", "demo@vx", "demo@v0", "../x@v1", ".hidden",
        ] {
            assert!(parse_corpus_ref(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn save_load_round_trips_and_versions_sort() {
        let root = temp_root("roundtrip");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 2)).expect("save v2");
        reg.save(&sample("demo", 1)).expect("save v1");
        reg.save(&sample("demo", 10)).expect("save v10");
        assert_eq!(reg.versions("demo"), vec![1, 2, 10]);
        assert_eq!(reg.latest_version("demo"), Some(10));
        assert_eq!(reg.corpora().expect("corpora"), vec!["demo".to_owned()]);
        let loaded = reg.load("demo", 2).expect("load");
        assert_eq!(loaded.reference(), "demo@v2");
        assert_eq!(loaded.methods, vec!["a.B.c".to_owned()]);
        let latest = reg
            .load_ref(&parse_corpus_ref("demo").expect("ref"))
            .expect("load latest");
        assert_eq!(latest.version, 10);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn existing_versions_are_immutable() {
        let root = temp_root("immutable");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 1)).expect("save");
        let err = reg
            .save(&sample("demo", 1))
            .expect_err("second save must fail");
        assert!(err.contains("immutable"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn save_next_skips_past_taken_versions() {
        let root = temp_root("savenext");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 1)).expect("save v1");
        reg.save(&sample("demo", 2)).expect("save v2");
        let mut racing = sample("demo", 1);
        let path = reg.save_next(&mut racing).expect("save_next");
        assert_eq!(racing.version, 3, "advances past both registered versions");
        assert!(path.ends_with("demo/v3.json"), "{}", path.display());
        assert_eq!(reg.latest_version("demo"), Some(3));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_and_format_mismatched_snapshots_error() {
        let root = temp_root("missing");
        let reg = Registry::open(&root).expect("open");
        assert!(reg.load("demo", 1).is_err());
        let mut future = sample("demo", 1);
        future.format = SNAPSHOT_FORMAT + 1;
        reg.save(&future).expect("save");
        let err = reg.load("demo", 1).expect_err("format mismatch must fail");
        assert!(err.contains("format"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_plain_json_snapshots_still_load() {
        let root = temp_root("legacy");
        let reg = Registry::open(&root).expect("open");
        let dir = root.join("demo");
        fs::create_dir_all(&dir).expect("mkdir");
        let body = serde_json::to_vec_pretty(&sample("demo", 1)).expect("serialize");
        fs::write(dir.join("v1.json"), body).expect("write legacy");
        let loaded = reg.load("demo", 1).expect("legacy load");
        assert_eq!(loaded.reference(), "demo@v1");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_latest_rolls_back() {
        let root = temp_root("rollback");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 1)).expect("save v1");
        reg.save(&sample("demo", 2)).expect("save v2");
        // Bit-rot v2 on disk.
        let v2 = root.join("demo").join("v2.json");
        let mut raw = fs::read(&v2).expect("read v2");
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        fs::write(&v2, &raw).expect("re-write corrupted");

        // Re-open: the recovery sweep quarantines it and v1 is latest again.
        let reg = Registry::open(&root).expect("re-open");
        assert_eq!(reg.latest_version("demo"), Some(1));
        assert!(!v2.exists(), "corrupt version moved out of the corpus");
        assert!(
            root.join("demo")
                .join(envelope::QUARANTINE_DIR)
                .join("v2.json")
                .exists(),
            "corrupt version lands in quarantine/"
        );
        // v1 is intact and still served.
        assert_eq!(reg.load("demo", 1).expect("load v1").version, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recovery_sweep_deletes_orphaned_tmps() {
        let root = temp_root("tmps");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 1)).expect("save");
        let orphan = root.join("demo").join(".v2.json.tmp");
        fs::write(&orphan, b"half a snapshot").expect("write orphan");
        let report = reg.recover();
        assert_eq!(report.removed_tmps, 1);
        assert!(!orphan.exists());
        assert_eq!(reg.latest_version("demo"), Some(1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_keeps_latest_and_pinned_versions() {
        let root = temp_root("gc");
        let reg = Registry::open(&root).expect("open");
        for v in 1..=5 {
            reg.save(&sample("demo", v)).expect("save");
        }
        reg.pin("demo", 2).expect("pin v2");
        let report = reg
            .gc(&GcPolicy {
                budget_bytes: 0,
                keep_latest: 1,
            })
            .expect("gc");
        assert_eq!(
            report.removed,
            vec![
                "demo@v1".to_owned(),
                "demo@v3".to_owned(),
                "demo@v4".to_owned()
            ],
            "pinned v2 and latest v5 survive a zero budget"
        );
        assert_eq!(reg.versions("demo"), vec![2, 5]);
        assert!(report.bytes_freed > 0);
        assert!(report.bytes_kept > 0);
        // Pinning an unknown version is refused.
        assert!(reg.pin("demo", 9).is_err());
        // Unpinning frees it for the next sweep.
        reg.unpin("demo", 2).expect("unpin");
        let report = reg
            .gc(&GcPolicy {
                budget_bytes: 0,
                keep_latest: 1,
            })
            .expect("gc again");
        assert_eq!(report.removed, vec!["demo@v2".to_owned()]);
        assert_eq!(reg.versions("demo"), vec![5]);
        let _ = fs::remove_dir_all(&root);
    }
}
