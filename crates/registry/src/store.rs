//! The on-disk registry: named corpora, each a directory of versioned
//! snapshot files.
//!
//! Layout is deliberately boring and inspectable:
//!
//! ```text
//! <root>/
//!   <corpus>/
//!     v1.json
//!     v2.json
//! ```
//!
//! Writes go through a temp-file + rename so a crashed `tabby snapshot`
//! never leaves a half-written version behind, and saving an existing
//! version is an error — snapshots are immutable once registered.

use crate::snapshot::{Snapshot, SNAPSHOT_FORMAT};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A `corpus@vN` reference split into its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusRef {
    /// Corpus name.
    pub corpus: String,
    /// Version number, or `None` for a bare `corpus` reference (meaning
    /// "latest" on read, "next" on write).
    pub version: Option<u32>,
}

impl std::fmt::Display for CorpusRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.version {
            Some(v) => write!(f, "{}@v{}", self.corpus, v),
            None => f.write_str(&self.corpus),
        }
    }
}

/// Parses `corpus` / `corpus@vN` references. Corpus names may not be
/// empty, contain path separators, or start with a dot.
///
/// # Errors
///
/// Returns a message naming the malformed part.
pub fn parse_corpus_ref(text: &str) -> Result<CorpusRef, String> {
    let (corpus, version) = match text.split_once('@') {
        Some((corpus, tag)) => {
            let digits = tag.strip_prefix('v').ok_or_else(|| {
                format!("malformed version tag {tag:?}: expected v<N> (as in demo@v2)")
            })?;
            let version: u32 = digits.parse().map_err(|_| {
                format!("malformed version tag {tag:?}: expected v<N> (as in demo@v2)")
            })?;
            if version == 0 {
                return Err("version numbers start at v1".to_owned());
            }
            (corpus, Some(version))
        }
        None => (text, None),
    };
    if corpus.is_empty() {
        return Err("empty corpus name".to_owned());
    }
    if corpus.starts_with('.') || corpus.contains('/') || corpus.contains('\\') {
        return Err(format!(
            "corpus name {corpus:?} may not start with '.' or contain path separators"
        ));
    }
    Ok(CorpusRef {
        corpus: corpus.to_owned(),
        version,
    })
}

/// A registry rooted at one directory.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// Opens (creating if absent) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the root cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Registry, String> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create registry root {}: {e}", root.display()))?;
        Ok(Registry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn version_path(&self, corpus: &str, version: u32) -> PathBuf {
        self.root.join(corpus).join(format!("v{version}.json"))
    }

    /// Registered corpus names, sorted.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the root cannot be listed.
    pub fn corpora(&self) -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root)
            .map_err(|e| format!("cannot list registry root {}: {e}", self.root.display()))?;
        for entry in entries.flatten() {
            if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Registered versions of `corpus`, ascending. Empty when the corpus
    /// is unknown.
    pub fn versions(&self, corpus: &str) -> Vec<u32> {
        let mut versions = Vec::new();
        if let Ok(entries) = fs::read_dir(self.root.join(corpus)) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(v) = name
                    .strip_prefix('v')
                    .and_then(|rest| rest.strip_suffix(".json"))
                    .and_then(|digits| digits.parse::<u32>().ok())
                {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        versions
    }

    /// The highest registered version of `corpus`, if any.
    pub fn latest_version(&self, corpus: &str) -> Option<u32> {
        self.versions(corpus).into_iter().next_back()
    }

    /// Persists a snapshot as `corpus@v{snapshot.version}`.
    ///
    /// # Errors
    ///
    /// Errors when the version already exists (snapshots are immutable) or
    /// on I/O failure; a failed write leaves no partial file behind.
    pub fn save(&self, snapshot: &Snapshot) -> Result<PathBuf, String> {
        let path = self.version_path(&snapshot.corpus, snapshot.version);
        if path.exists() {
            return Err(format!(
                "{} already exists: snapshots are immutable, bump the version instead",
                snapshot.reference()
            ));
        }
        let dir = self.root.join(&snapshot.corpus);
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create corpus dir {}: {e}", dir.display()))?;
        let body = serde_json::to_vec_pretty(snapshot)
            .map_err(|e| format!("cannot serialize snapshot: {e}"))?;
        let tmp = dir.join(format!(".v{}.json.tmp", snapshot.version));
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            f.write_all(&body)
                .and_then(|()| f.sync_all())
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        }
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("cannot publish {}: {e}", path.display())
        })?;
        Ok(path)
    }

    /// Loads `corpus@v{version}`.
    ///
    /// # Errors
    ///
    /// Errors when the snapshot is missing, unreadable, or written by an
    /// incompatible format version.
    pub fn load(&self, corpus: &str, version: u32) -> Result<Snapshot, String> {
        let path = self.version_path(corpus, version);
        let body = fs::read(&path).map_err(|e| {
            format!(
                "no snapshot {corpus}@v{version} in {}: {e}",
                self.root.display()
            )
        })?;
        let snapshot: Snapshot = serde_json::from_slice(&body)
            .map_err(|e| format!("corrupt snapshot {}: {e}", path.display()))?;
        if snapshot.format != SNAPSHOT_FORMAT {
            return Err(format!(
                "snapshot {} has format v{}, this build reads v{}",
                path.display(),
                snapshot.format,
                SNAPSHOT_FORMAT
            ));
        }
        Ok(snapshot)
    }

    /// Resolves a [`CorpusRef`] to a snapshot; a bare `corpus` reference
    /// loads the latest version.
    ///
    /// # Errors
    ///
    /// Errors when the corpus has no versions or the load fails.
    pub fn load_ref(&self, reference: &CorpusRef) -> Result<Snapshot, String> {
        let version = match reference.version {
            Some(v) => v,
            None => self.latest_version(&reference.corpus).ok_or_else(|| {
                format!(
                    "corpus {:?} has no snapshots in {}",
                    reference.corpus,
                    self.root.display()
                )
            })?,
        };
        self.load(&reference.corpus, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tabby-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(corpus: &str, version: u32) -> Snapshot {
        Snapshot {
            format: SNAPSHOT_FORMAT,
            corpus: corpus.to_owned(),
            version,
            content_key: format!("{version:016x}"),
            class_hashes: Default::default(),
            depth: 12,
            methods: vec!["a.B.c".to_owned()],
            edges: Vec::new(),
            sinks: Vec::new(),
            sources: Vec::new(),
            chains: Vec::new(),
            summary_digests: Default::default(),
            diagnostics: Default::default(),
        }
    }

    #[test]
    fn parse_accepts_bare_and_versioned_refs() {
        let r = parse_corpus_ref("demo").expect("bare ref");
        assert_eq!(r.corpus, "demo");
        assert_eq!(r.version, None);
        let r = parse_corpus_ref("demo@v12").expect("versioned ref");
        assert_eq!(r.version, Some(12));
        assert_eq!(r.to_string(), "demo@v12");
    }

    #[test]
    fn parse_rejects_malformed_refs() {
        for bad in [
            "", "demo@", "demo@2", "demo@vx", "demo@v0", "../x@v1", ".hidden",
        ] {
            assert!(parse_corpus_ref(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn save_load_round_trips_and_versions_sort() {
        let root = temp_root("roundtrip");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 2)).expect("save v2");
        reg.save(&sample("demo", 1)).expect("save v1");
        reg.save(&sample("demo", 10)).expect("save v10");
        assert_eq!(reg.versions("demo"), vec![1, 2, 10]);
        assert_eq!(reg.latest_version("demo"), Some(10));
        assert_eq!(reg.corpora().expect("corpora"), vec!["demo".to_owned()]);
        let loaded = reg.load("demo", 2).expect("load");
        assert_eq!(loaded.reference(), "demo@v2");
        assert_eq!(loaded.methods, vec!["a.B.c".to_owned()]);
        let latest = reg
            .load_ref(&parse_corpus_ref("demo").expect("ref"))
            .expect("load latest");
        assert_eq!(latest.version, 10);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn existing_versions_are_immutable() {
        let root = temp_root("immutable");
        let reg = Registry::open(&root).expect("open");
        reg.save(&sample("demo", 1)).expect("save");
        let err = reg
            .save(&sample("demo", 1))
            .expect_err("second save must fail");
        assert!(err.contains("immutable"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_and_format_mismatched_snapshots_error() {
        let root = temp_root("missing");
        let reg = Registry::open(&root).expect("open");
        assert!(reg.load("demo", 1).is_err());
        let mut future = sample("demo", 1);
        future.format = SNAPSHOT_FORMAT + 1;
        reg.save(&future).expect("save");
        let err = reg.load("demo", 1).expect_err("format mismatch must fail");
        assert!(err.contains("format"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }
}
