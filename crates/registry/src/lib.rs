//! # tabby-registry — versioned scan snapshots and differential detection
//!
//! The production story for gadget-chain detection is not one-shot scans
//! but watching dependency bumps: *Sleeping Giants*-style attacks complete
//! a dormant chain with a small, innocuous-looking change, and the signal
//! lives in the *delta* between two corpus versions, not in either version
//! alone. This crate gives the one-shot pipeline a memory:
//!
//! - [`Snapshot`] — one scan of one corpus version, reduced to its
//!   symbolic search projection: content-addressed corpus key, method
//!   signatures, CALL/ALIAS/EXTEND/INTERFACE edges with Polluted_Position
//!   payloads, annotated sinks/sources, the canonical chain set,
//!   per-method summary digests, and the scan's diagnostics. Degraded
//!   scans are refused at build time ([`Snapshot::build`]) — diffing a
//!   lower-bound chain set fabricates activations.
//! - [`Registry`] — the on-disk store: `<root>/<corpus>/v<N>.json`,
//!   immutable once written, addressed as `corpus@vN`
//!   ([`parse_corpus_ref`]). Snapshots are wrapped in the checksummed
//!   crash-safe envelope (`tabby_core::envelope`), verified on read
//!   (corrupt files are quarantined, never served), recovered on open,
//!   and garbage-collected by size budget ([`Registry::gc`]) with
//!   keep-latest-K and pinning ([`Registry::pin`]) exemptions.
//! - [`diff_snapshots`] — the diff engine: newly **activated** chains
//!   (present in v(N+1), absent in vN) attributed to the added/changed
//!   edges that completed them, **resolved** chains, and **near-chains**
//!   — paths one forgiven edge short of a source, with the blocking
//!   Trigger_Condition position named, via
//!   [`tabby_pathfinder::find_near_chains`] over the rebuilt projection.
//!
//! # Examples
//!
//! ```
//! use tabby_registry::{diff_snapshots, parse_corpus_ref, Registry};
//! use tabby_pathfinder::NearChainConfig;
//!
//! let root = std::env::temp_dir().join(format!("tabby-reg-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let registry = Registry::open(&root).unwrap();
//! assert!(registry.corpora().unwrap().is_empty());
//! let r = parse_corpus_ref("commons@v3").unwrap();
//! assert_eq!(r.corpus, "commons");
//! assert_eq!(r.version, Some(3));
//! # let _ = std::fs::remove_dir_all(&root);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod diff;
pub mod snapshot;
pub mod store;

pub use diff::{diff_snapshots, ActivatedChain, DiffReport, TierPromotion};
pub use snapshot::{
    corpus_content_key, hash_inputs, EdgeKind, SinkEntry, Snapshot, SymbolicEdge, SNAPSHOT_FORMAT,
};
pub use store::{parse_corpus_ref, CorpusRef, GcPolicy, GcReport, RecoveryReport, Registry};
