//! Shared infrastructure for the baseline detectors: a method-key space
//! that covers out-of-program callees, sink/source matching against the
//! shared catalogs, and a crude flow-insensitive taint derivation.

use std::collections::HashSet;
use tabby_ir::{
    Expr, Hierarchy, IdentityRef, InvokeExpr, Local, MethodId, Operand, Place, Program, Stmt,
    Symbol,
};
use tabby_pathfinder::{SinkCatalog, SinkSpec};

/// A method in the baseline call graphs: analyzed or external.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MKey {
    /// A method of the analyzed program.
    Real(MethodId),
    /// An external callee, keyed by (class, name, arity).
    Phantom(Symbol, Symbol, u16),
}

impl MKey {
    /// `Class.method` signature.
    pub fn signature(self, program: &Program) -> String {
        match self {
            MKey::Real(id) => {
                let class = program.class(id.class);
                let method = program.method(id);
                format!("{}.{}", program.name(class.name), program.name(method.name))
            }
            MKey::Phantom(class, name, _) => {
                format!("{}.{}", program.name(class), program.name(name))
            }
        }
    }

    /// (class name, method name) of the key.
    pub fn class_and_name(self, program: &Program) -> (String, String) {
        match self {
            MKey::Real(id) => (
                program.name(program.class(id.class).name).to_owned(),
                program.name(program.method(id).name).to_owned(),
            ),
            MKey::Phantom(class, name, _) => (
                program.name(class).to_owned(),
                program.name(name).to_owned(),
            ),
        }
    }
}

/// Matches a method key against the sink catalog.
pub fn sink_spec_for<'c>(
    catalog: &'c SinkCatalog,
    program: &Program,
    key: MKey,
) -> Option<&'c SinkSpec> {
    let (class, name) = key.class_and_name(program);
    catalog
        .entries()
        .iter()
        .find(|s| s.class == class && s.method == name)
}

/// The deserialization source set shared with Tabby (readObject et al. of
/// serializable classes).
pub fn native_sources(program: &Program, hierarchy: &Hierarchy<'_>) -> Vec<MethodId> {
    const NAMES: [(&str, usize); 6] = [
        ("readObject", 1),
        ("readExternal", 1),
        ("readResolve", 0),
        ("readObjectNoData", 0),
        ("validateObject", 0),
        ("finalize", 0),
    ];
    let mut out = Vec::new();
    for id in program.method_ids() {
        let m = program.method(id);
        if m.body.is_none() {
            continue;
        }
        let name = program.name(m.name);
        if NAMES
            .iter()
            .any(|(n, p)| *n == name && m.params.len() == *p)
            && hierarchy.is_serializable(id.class)
        {
            out.push(id);
        }
    }
    out
}

/// Flow-insensitive, never-killing taint derivation: the set of locals that
/// (transitively) derive from `this`, the parameters, or any value computed
/// from them — with reassignment *not* clearing taint. This is the
/// "default to it not changing (still controllable)" behaviour §III-C
/// ascribes to the prior tools.
pub fn derived_locals(program: &Program, id: MethodId) -> HashSet<Local> {
    let Some(body) = program.method(id).body.as_ref() else {
        return HashSet::new();
    };
    let mut tainted: HashSet<Local> = HashSet::new();
    for stmt in &body.stmts {
        if let Stmt::Identity { local, source } = stmt {
            if matches!(source, IdentityRef::This | IdentityRef::Param(_)) {
                tainted.insert(*local);
            }
        }
    }
    let operand_tainted = |t: &HashSet<Local>, op: &Operand| match op {
        Operand::Local(l) => t.contains(l),
        Operand::Const(_) => false,
    };
    loop {
        let mut changed = false;
        for stmt in &body.stmts {
            if let Stmt::Assign { place, rhs } = stmt {
                let rhs_tainted = match rhs {
                    Expr::Use(op)
                    | Expr::Cast { value: op, .. }
                    | Expr::Unary { value: op, .. } => operand_tainted(&tainted, op),
                    Expr::Load(place) => match place {
                        Place::Local(l) => tainted.contains(l),
                        Place::InstanceField { base, .. } => tainted.contains(base),
                        Place::ArrayElem { base, .. } => tainted.contains(base),
                        Place::StaticField(_) => false,
                    },
                    Expr::Binary { lhs, rhs, .. } => {
                        operand_tainted(&tainted, lhs) || operand_tainted(&tainted, rhs)
                    }
                    Expr::Invoke(inv) => invoke_has_tainted_input(&tainted, inv),
                    Expr::New(_) | Expr::NewArray { .. } => false,
                    Expr::InstanceOf { .. } | Expr::ArrayLength(_) => false,
                };
                if rhs_tainted {
                    if let Place::Local(l) = place {
                        if tainted.insert(*l) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Whether any input (receiver or argument) of an invoke is tainted.
pub fn invoke_has_tainted_input(tainted: &HashSet<Local>, inv: &InvokeExpr) -> bool {
    let check = |op: &Operand| matches!(op, Operand::Local(l) if tainted.contains(l));
    inv.base.as_ref().map(check).unwrap_or(false) || inv.args.iter().any(check)
}

/// The invoke expressions of a method body, in order.
pub fn invokes_of(program: &Program, id: MethodId) -> Vec<InvokeExpr> {
    program
        .method(id)
        .body
        .as_ref()
        .map(|b| b.stmts.iter().filter_map(|s| s.invoke().cloned()).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    #[test]
    fn derived_locals_never_kill() {
        // x = p0; x = new Object(); — the baseline still considers x tainted.
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![obj.clone()], JType::Void).static_();
        let p0 = mb.param(0);
        let x = mb.fresh();
        mb.copy(x, p0);
        mb.new_obj(x, "java.lang.Object");
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let t = derived_locals(&p, id);
        assert!(t.contains(&x));
    }

    #[test]
    fn constants_stay_untainted() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m", vec![obj.clone()], JType::Void).static_();
        let y = mb.fresh();
        mb.copy(y, mb.c_int(1));
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let t = derived_locals(&p, id);
        assert!(!t.contains(&y));
    }

    #[test]
    fn source_detection_matches_tabby() {
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("t.S").serializable();
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("readObject", vec![obj], JType::Void);
        mb.nop();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let h = Hierarchy::new(&p);
        assert_eq!(native_sources(&p, &h).len(), 1);
    }
}
