//! The GadgetInspector baseline (Black Hat 2018), reimplemented at the
//! fidelity the paper describes (§IV-C, §IV-F):
//!
//! - forward taint search from deserialization sources over an
//!   ASM-style call graph;
//! - **incomplete polymorphism handling**: virtual calls resolve only to
//!   the statically declared target; interface dispatch and subclass
//!   overrides are not expanded ("a less comprehensive call graph");
//! - **assume-still-controllable** interprocedural taint: a value passed
//!   into a method is assumed to stay attacker-controlled, and
//!   reassignments never clear taint (§III-C's critique);
//! - **visited-node skipping** during the search ("skips nodes that have
//!   already been traversed … may also lead to the loss of potential
//!   chains").

use crate::common::{
    derived_locals, invoke_has_tainted_input, invokes_of, native_sources, sink_spec_for, MKey,
};
use std::collections::HashSet;
use tabby_ir::{Hierarchy, InvokeKind, Program};
use tabby_pathfinder::{GadgetChain, SinkCatalog};

/// Result of one baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Reported chains, source-first.
    pub chains: Vec<GadgetChain>,
    /// Whether the work budget was exhausted before completion.
    pub timed_out: bool,
}

/// Configuration of the GadgetInspector simulacrum.
#[derive(Debug, Clone)]
pub struct GiConfig {
    /// Maximum chain depth.
    pub max_depth: usize,
    /// Expansion work budget.
    pub max_expansions: usize,
    /// Restrict detection to GadgetInspector's built-in sink predicates
    /// (command execution, reflection/code loading, and file deletion) —
    /// the released tool has no JNDI/SSRF/XXE/JDBC sink support, which is
    /// part of why its Known column is so sparse in Table IX.
    pub narrow_sinks: bool,
}

impl Default for GiConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            max_expansions: 500_000,
            narrow_sinks: true,
        }
    }
}

/// GadgetInspector's built-in sink coverage.
fn gi_recognizes(config: &GiConfig, spec: &tabby_pathfinder::SinkSpec) -> bool {
    use tabby_pathfinder::SinkCategory;
    if !config.narrow_sinks {
        return true;
    }
    matches!(spec.category, SinkCategory::Exec | SinkCategory::Code)
        || (spec.class == "java.io.File" && spec.method == "delete")
}

/// The GadgetInspector baseline detector.
#[derive(Debug, Default)]
pub struct GadgetInspector {
    /// Tuning knobs.
    pub config: GiConfig,
}

impl GadgetInspector {
    /// Runs the detector over a program.
    pub fn run(&self, program: &Program) -> BaselineOutcome {
        let hierarchy = Hierarchy::new(program);
        let sinks = SinkCatalog::paper();
        let sources = native_sources(program, &hierarchy);
        let mut chains = Vec::new();
        let mut expansions = 0usize;
        let mut timed_out = false;
        // The visited-node shortcut is global across the whole run — the
        // behaviour the paper criticizes for losing chains.
        let mut visited: HashSet<MKey> = HashSet::new();

        for source in sources {
            let start = MKey::Real(source);
            if !visited.insert(start) {
                continue;
            }
            let mut stack: Vec<(MKey, Vec<MKey>)> = vec![(start, vec![start])];
            while let Some((key, path)) = stack.pop() {
                let MKey::Real(id) = key else {
                    continue;
                };
                let tainted = derived_locals(program, id);
                for inv in invokes_of(program, id) {
                    expansions += 1;
                    if expansions > self.config.max_expansions {
                        timed_out = true;
                        break;
                    }
                    // Only taint-carrying calls are followed.
                    if !invoke_has_tainted_input(&tainted, &inv) {
                        continue;
                    }
                    // Incomplete polymorphism: interface dispatch is not
                    // modeled; invokedynamic is opaque.
                    if matches!(inv.kind, InvokeKind::Interface | InvokeKind::Dynamic) {
                        continue;
                    }
                    let target = resolve_declared(program, &hierarchy, &inv);
                    if let Some(spec) = sink_spec_for(&sinks, program, target)
                        .filter(|spec| gi_recognizes(&self.config, spec))
                    {
                        let mut signatures: Vec<String> =
                            path.iter().map(|k| k.signature(program)).collect();
                        signatures.push(target.signature(program));
                        chains.push(GadgetChain {
                            signatures,
                            sink_category: spec.category.as_str().to_owned(),
                            tier: None,
                            nodes: vec![],
                        });
                        continue;
                    }
                    if path.len() >= self.config.max_depth {
                        continue;
                    }
                    // Visited-node skipping (global).
                    if visited.insert(target) {
                        if let MKey::Real(_) = target {
                            let mut next = path.clone();
                            next.push(target);
                            stack.push((target, next));
                        }
                    }
                }
                if timed_out {
                    break;
                }
            }
            if timed_out {
                break;
            }
        }
        dedupe(&mut chains);
        BaselineOutcome { chains, timed_out }
    }
}

/// Declared-target resolution only — no override expansion.
fn resolve_declared(
    program: &Program,
    hierarchy: &Hierarchy<'_>,
    inv: &tabby_ir::InvokeExpr,
) -> MKey {
    if let Some(class) = program.class_by_name(inv.callee.class) {
        if let Some(id) = hierarchy.resolve_method(class, inv.callee.name, inv.callee.params.len())
        {
            return MKey::Real(id);
        }
    }
    MKey::Phantom(
        inv.callee.class,
        inv.callee.name,
        inv.callee.params.len() as u16,
    )
}

pub(crate) fn dedupe(chains: &mut Vec<GadgetChain>) {
    let mut seen = HashSet::new();
    chains.retain(|c| seen.insert(c.signatures.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    /// A direct readObject → Runtime.exec chain GI can find.
    fn direct_chain_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("g.Direct").serializable();
        let obj = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        cb.field("cmd", obj.clone());
        let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "g.Direct", "cmd", obj.clone());
        let s = mb.fresh();
        mb.cast(s, string.clone(), cmd);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[s.into()]);
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn gi_finds_direct_chain() {
        let p = direct_chain_program();
        let out = GadgetInspector::default().run(&p);
        assert_eq!(out.chains.len(), 1);
        assert_eq!(out.chains[0].source(), "g.Direct.readObject");
        assert_eq!(out.chains[0].sink(), "java.lang.Runtime.exec");
        assert!(!out.timed_out);
    }

    #[test]
    fn gi_skips_interface_dispatch() {
        // source -> iface.run(payload); Impl.run -> exec. GI cannot cross
        // the interface call.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("g.Runner").interface();
        let obj = cb.object_type("java.lang.Object");
        cb.method("run", vec![obj.clone()], JType::Void)
            .abstract_()
            .finish();
        cb.finish();
        let mut cb = pb.class("g.Impl").serializable().implements(&["g.Runner"]);
        let obj = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("run", vec![obj.clone()], JType::Void);
        let x = mb.param(0);
        let s = mb.fresh();
        mb.cast(s, string.clone(), x);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[s.into()]);
        mb.finish();
        cb.finish();
        let mut cb = pb.class("g.Src").serializable();
        let obj = cb.object_type("java.lang.Object");
        let runner = cb.object_type("g.Runner");
        cb.field("r", runner.clone());
        cb.field("payload", obj.clone());
        let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
        let this = mb.this();
        let r = mb.fresh();
        mb.get_field(r, this, "g.Src", "r", runner.clone());
        let payload = mb.fresh();
        mb.get_field(payload, this, "g.Src", "payload", obj.clone());
        let run = mb.sig("g.Runner", "run", &[obj.clone()], JType::Void);
        mb.call_interface(None, r, run, &[payload.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let out = GadgetInspector::default().run(&p);
        assert!(out.chains.is_empty());
    }

    #[test]
    fn gi_reports_sanitized_route() {
        // readObject -> process(payload); process replaces the value before
        // exec — Tabby prunes this, GI does not.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("g.Bait").serializable();
        let obj = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        cb.field("payload", obj.clone());
        let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
        let this = mb.this();
        let payload = mb.fresh();
        mb.get_field(payload, this, "g.Bait", "payload", obj.clone());
        let process = mb.sig("g.Bait", "process", &[obj.clone()], JType::Void);
        mb.call_virtual(None, this, process, &[payload.into()]);
        mb.finish();
        let mut mb = cb.method("process", vec![obj.clone()], JType::Void);
        let x = mb.param(0);
        mb.new_obj(x, "java.lang.Object");
        let s = mb.fresh();
        mb.cast(s, string.clone(), x);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[s.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        let out = GadgetInspector::default().run(&p);
        assert_eq!(out.chains.len(), 1);
    }

    #[test]
    fn gi_visited_skipping_loses_second_chain() {
        // Two sources share a middle method; the global visited set lets
        // only the first one through.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        // Shared middle.
        let mut cb = pb.class("g.Mid");
        let obj = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("go", vec![obj.clone()], JType::Void).static_();
        let x = mb.param(0);
        let s = mb.fresh();
        mb.cast(s, string.clone(), x);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
        mb.call_virtual(None, rt, exec, &[s.into()]);
        mb.finish();
        cb.finish();
        for name in ["g.SrcA", "g.SrcB"] {
            let mut cb = pb.class(name).serializable();
            let obj = cb.object_type("java.lang.Object");
            cb.field("payload", obj.clone());
            let mut mb = cb.method("readObject", vec![obj.clone()], JType::Void);
            let this = mb.this();
            let payload = mb.fresh();
            mb.get_field(payload, this, name, "payload", obj.clone());
            let go = mb.sig("g.Mid", "go", &[obj.clone()], JType::Void);
            mb.call_static(None, go, &[payload.into()]);
            mb.finish();
            cb.finish();
        }
        let p = pb.build();
        let out = GadgetInspector::default().run(&p);
        // Both sources call into g.Mid.go; the visited shortcut reports only
        // one full chain (the second stops at the already-visited node).
        assert_eq!(out.chains.len(), 1);
    }
}
