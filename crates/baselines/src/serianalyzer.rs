//! The Serianalyzer baseline, reimplemented at the fidelity the paper
//! describes (§IV-C, §IV-F):
//!
//! - backwards reachability from sink methods over a *fully* expanded call
//!   graph (all overrides, interface dispatch included) with **no
//!   argument-position tracking** — every caller edge is followed;
//! - a loose notion of deserialization entry point: any concrete public
//!   method of a serializable class is assumed reachable during
//!   deserialization, which floods the output with "often … hundreds per
//!   component" of invalid chains;
//! - weak pruning: the unpruned graph makes the search exceed any
//!   reasonable work budget on components with dense call webs — "unable to
//!   output results for some components within an acceptable time",
//!   rendered as the paper's `X`.

use crate::common::{invokes_of, sink_spec_for, MKey};
use crate::gadget_inspector::{dedupe, BaselineOutcome};
use std::collections::{HashMap, HashSet};
use tabby_ir::{Hierarchy, InvokeKind, MethodId, Program};
use tabby_pathfinder::SinkCatalog;

/// Configuration of the Serianalyzer simulacrum.
#[derive(Debug, Clone)]
pub struct SlConfig {
    /// Maximum chain depth. Serianalyzer explores shallowly relative to the
    /// long dispatch-heavy dataset chains, which is where its false
    /// negatives come from.
    pub max_depth: usize,
    /// Expansion work budget; exceeding it aborts the run (`X`).
    pub max_expansions: usize,
    /// Stop each backward path at the *first* entry-point hit: the shortest
    /// suffix is reported as the chain, so a pivot method (`toString`,
    /// `compare`, …) of a serializable class shadows the genuine
    /// deserialization source behind it — a large share of Serianalyzer's
    /// false negatives *and* false positives at once.
    pub stop_at_first_entry: bool,
    /// Restrict detection to the sink families the released tool models
    /// well (file access, reflective invocation, class loading).
    pub narrow_sinks: bool,
}

impl Default for SlConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            max_expansions: 150_000,
            stop_at_first_entry: true,
            narrow_sinks: true,
        }
    }
}

/// Serianalyzer's sink coverage.
fn sl_recognizes(config: &SlConfig, spec: &tabby_pathfinder::SinkSpec) -> bool {
    use tabby_pathfinder::SinkCategory;
    if !config.narrow_sinks {
        return true;
    }
    matches!(spec.category, SinkCategory::File)
        || (spec.class == "java.lang.reflect.Method" && spec.method == "invoke")
        || spec.class == "java.lang.ClassLoader"
        || (spec.class == "java.lang.Class" && spec.method == "forName")
}

/// The Serianalyzer baseline detector.
#[derive(Debug, Default)]
pub struct Serianalyzer {
    /// Tuning knobs.
    pub config: SlConfig,
}

impl Serianalyzer {
    /// Runs the detector over a program.
    pub fn run(&self, program: &Program) -> BaselineOutcome {
        let hierarchy = Hierarchy::new(program);
        let sinks = SinkCatalog::paper();

        // Fully expanded reverse call graph: callee-key -> callers.
        let mut callers: HashMap<MKey, Vec<MethodId>> = HashMap::new();
        let mut expansions = 0usize;
        for id in program.method_ids() {
            for inv in invokes_of(program, id) {
                if inv.kind == InvokeKind::Dynamic {
                    continue;
                }
                for target in dispatch_all(program, &hierarchy, &inv) {
                    callers.entry(target).or_default().push(id);
                }
            }
        }

        // Entry points: any concrete public method of a serializable class.
        let mut entries: HashSet<MKey> = HashSet::new();
        for id in program.method_ids() {
            let m = program.method(id);
            if m.body.is_some()
                && m.flags.is_public()
                && program.name(m.name) != "<init>"
                && hierarchy.is_serializable(id.class)
            {
                entries.insert(MKey::Real(id));
            }
        }

        // Backwards DFS from every sink occurrence.
        let mut chains = Vec::new();
        let mut timed_out = false;
        let sink_keys: Vec<(MKey, String)> = callers
            .keys()
            .filter_map(|k| {
                sink_spec_for(&sinks, program, *k)
                    .filter(|s| sl_recognizes(&self.config, s))
                    .map(|s| (*k, s.category.as_str().to_owned()))
            })
            .collect();
        'outer: for (sink, category) in sink_keys {
            let mut stack: Vec<Vec<MKey>> = vec![vec![sink]];
            while let Some(path) = stack.pop() {
                let end = *path.last().expect("non-empty path");
                if path.len() > 1 && entries.contains(&end) {
                    let signatures: Vec<String> =
                        path.iter().rev().map(|k| k.signature(program)).collect();
                    // Paths are sink-first; report source-first.
                    chains.push(crate::GadgetChain {
                        signatures,
                        sink_category: category.clone(),
                        tier: None,
                        nodes: vec![],
                    });
                    if self.config.stop_at_first_entry {
                        continue;
                    }
                }
                if path.len() > self.config.max_depth {
                    continue;
                }
                if let Some(cs) = callers.get(&end) {
                    for &caller in cs {
                        expansions += 1;
                        if expansions > self.config.max_expansions {
                            timed_out = true;
                            break 'outer;
                        }
                        let key = MKey::Real(caller);
                        if !path.contains(&key) {
                            let mut next = path.clone();
                            next.push(key);
                            stack.push(next);
                        }
                    }
                }
            }
        }
        if timed_out {
            // The paper's X: the run produced nothing usable.
            return BaselineOutcome {
                chains: Vec::new(),
                timed_out: true,
            };
        }
        dedupe(&mut chains);
        BaselineOutcome {
            chains,
            timed_out: false,
        }
    }
}

/// Full dispatch: declared target plus every override in the subtype
/// closure; interface calls expand to all implementations.
fn dispatch_all(
    program: &Program,
    hierarchy: &Hierarchy<'_>,
    inv: &tabby_ir::InvokeExpr,
) -> Vec<MKey> {
    let arity = inv.callee.params.len();
    let Some(class) = program.class_by_name(inv.callee.class) else {
        return vec![MKey::Phantom(
            inv.callee.class,
            inv.callee.name,
            arity as u16,
        )];
    };
    let Some(declared) = hierarchy.resolve_method(class, inv.callee.name, arity) else {
        return vec![MKey::Phantom(
            inv.callee.class,
            inv.callee.name,
            arity as u16,
        )];
    };
    if matches!(inv.kind, InvokeKind::Static | InvokeKind::Special) {
        return vec![MKey::Real(declared)];
    }
    hierarchy
        .dispatch_targets(declared, inv.callee.name, arity)
        .into_iter()
        .map(MKey::Real)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_ir::{JType, ProgramBuilder};

    #[test]
    fn sl_reports_every_serializable_suffix() {
        // entry1.step -> helper.go -> forName; helper.go is itself an entry.
        // With stop-at-first-entry the shortest suffix shadows the longer
        // chain; without it both are reported.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let mut cb = pb.class("s.Helper").serializable();
        let obj = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("go", vec![obj.clone()], JType::Void);
        let x = mb.param(0);
        let s = mb.fresh();
        mb.cast(s, string.clone(), x);
        let class_ty = mb.object_type("java.lang.Class");
        let for_name = mb.sig("java.lang.Class", "forName", &[string], class_ty);
        let c = mb.fresh();
        mb.call_static(Some(c), for_name, &[s.into()]);
        mb.finish();
        cb.finish();
        let mut cb = pb.class("s.Outer").serializable();
        let obj = cb.object_type("java.lang.Object");
        let helper = cb.object_type("s.Helper");
        cb.field("h", helper.clone());
        cb.field("payload", obj.clone());
        let mut mb = cb.method("step", vec![], JType::Void);
        let this = mb.this();
        let h = mb.fresh();
        mb.get_field(h, this, "s.Outer", "h", helper.clone());
        let payload = mb.fresh();
        mb.get_field(payload, this, "s.Outer", "payload", obj.clone());
        let go = mb.sig("s.Helper", "go", &[obj.clone()], JType::Void);
        mb.call_virtual(None, h, go, &[payload.into()]);
        mb.finish();
        cb.finish();
        let p = pb.build();
        // Default config: the first entry (helper.go) shadows the real
        // deserialization-adjacent chain.
        let out = Serianalyzer::default().run(&p);
        assert!(!out.timed_out);
        assert_eq!(out.chains.len(), 1);
        assert_eq!(out.chains[0].source(), "s.Helper.go");
        // Without the shortcut both suffixes are reported.
        let sl = Serianalyzer {
            config: SlConfig {
                stop_at_first_entry: false,
                ..SlConfig::default()
            },
        };
        let out = sl.run(&p);
        assert_eq!(out.chains.len(), 2);
    }

    #[test]
    fn sl_misses_deep_chains() {
        // A chain longer than the depth budget yields nothing.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let depth = 9;
        let string_sig = "java.lang.String";
        for i in 0..depth {
            let fqcn = format!("s.Stage{i}");
            let mut cb = pb.class(&fqcn);
            if i == 0 {
                cb.serializable_in_place();
            }
            let obj = cb.object_type("java.lang.Object");
            let string = cb.object_type(string_sig);
            let mut mb = cb.method("go", vec![obj.clone()], JType::Void);
            let x = mb.param(0);
            if i + 1 < depth {
                let next = format!("s.Stage{}", i + 1);
                let callee = mb.sig(&next, "go", &[obj.clone()], JType::Void);
                let n = mb.fresh();
                mb.copy(n, mb.c_null());
                mb.call_virtual(None, n, callee, &[x.into()]);
            } else {
                let s = mb.fresh();
                mb.cast(s, string.clone(), x);
                let rt = mb.fresh();
                mb.copy(rt, mb.c_null());
                let exec = mb.sig("java.lang.Runtime", "exec", &[string], JType::Void);
                mb.call_virtual(None, rt, exec, &[s.into()]);
            }
            mb.finish();
            cb.finish();
        }
        let p = pb.build();
        let out = Serianalyzer::default().run(&p);
        assert!(out.chains.is_empty());
    }

    #[test]
    fn sl_times_out_on_dense_web() {
        // A complete static-call web with a sink at the far end explodes the
        // unpruned backward search.
        let mut pb = ProgramBuilder::new();
        pb.class("java.io.Serializable").interface().finish();
        let k = 14;
        let fqcn = "s.Dispatch";
        let mut cb = pb.class(fqcn);
        let object = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        for i in 0..k {
            let mut mb = cb
                .method(&format!("stage{i}"), vec![object.clone()], JType::Void)
                .static_();
            let fresh = mb.fresh();
            mb.new_obj(fresh, "java.lang.Object");
            for j in 0..k {
                if i != j {
                    let callee = mb.sig(fqcn, &format!("stage{j}"), &[object.clone()], JType::Void);
                    mb.call_static(None, callee, &[fresh.into()]);
                }
            }
            if i == 0 {
                let s = mb.fresh();
                mb.cast(s, string.clone(), fresh);
                let class_ty = mb.object_type("java.lang.Class");
                let for_name = mb.sig("java.lang.Class", "forName", &[string.clone()], class_ty);
                let c = mb.fresh();
                mb.call_static(Some(c), for_name, &[s.into()]);
            }
            mb.finish();
        }
        cb.finish();
        let p = pb.build();
        let out = Serianalyzer::default().run(&p);
        assert!(out.timed_out);
        assert!(out.chains.is_empty());
    }
}
