//! # tabby-baselines — the comparison detectors of Table IX
//!
//! Reimplementations of the two baseline tools the paper evaluates against,
//! at the fidelity §IV-C/§IV-F describe — each with exactly the design
//! decisions the paper identifies as the source of its accuracy gap:
//!
//! - [`GadgetInspector`] (Black Hat 2018): forward taint with
//!   assume-still-controllable interprocedural defaults, incomplete
//!   polymorphism handling, and global visited-node skipping;
//! - [`Serianalyzer`]: backwards reachability over an unpruned call graph
//!   with loose entry points and no argument-position tracking, which
//!   floods output and blows its work budget on dense call webs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod gadget_inspector;
pub mod serianalyzer;

pub use gadget_inspector::{BaselineOutcome, GadgetInspector, GiConfig};
pub use serianalyzer::{Serianalyzer, SlConfig};
pub use tabby_pathfinder::GadgetChain;
