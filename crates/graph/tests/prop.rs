//! Property-based tests for the property-graph substrate.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tabby_graph::{
    encode_flat_cpg, follow, CsrSnapshot, Direction, EdgeId, Evaluation, FlatCpg, Graph, MappedBuf,
    NodeId, Path, Traversal, Uniqueness, Value,
};

/// Unique temp-file suffix per proptest case (cases run concurrently).
static FLAT_CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #[test]
    fn adjacency_is_consistent(edges in prop::collection::vec((0u32..30, 0u32..30), 0..120)) {
        let mut g = Graph::new();
        let l = g.label("N");
        let t = g.edge_type("E");
        let nodes: Vec<NodeId> = (0..30).map(|_| g.add_node(l)).collect();
        for (a, b) in &edges {
            g.add_edge(t, nodes[*a as usize], nodes[*b as usize]);
        }
        prop_assert_eq!(g.edge_count(), edges.len());
        // Every out-edge appears as an in-edge of its other endpoint.
        let mut out_total = 0;
        let mut in_total = 0;
        for &n in &nodes {
            for e in g.edges_of(n, Direction::Outgoing, Some(t)) {
                let (from, to) = g.endpoints(e);
                prop_assert_eq!(from, n);
                prop_assert!(g.edges_of(to, Direction::Incoming, Some(t)).contains(&e));
            }
            out_total += g.edges_of(n, Direction::Outgoing, Some(t)).len();
            in_total += g.edges_of(n, Direction::Incoming, Some(t)).len();
        }
        prop_assert_eq!(out_total, edges.len());
        prop_assert_eq!(in_total, edges.len());
    }

    #[test]
    fn index_lookup_matches_scan(values in prop::collection::vec(0i64..8, 1..40)) {
        let mut g = Graph::new();
        let l = g.label("N");
        let k = g.prop_key("V");
        g.create_index(l, k);
        for v in &values {
            let n = g.add_node(l);
            g.set_node_prop(n, k, Value::Int(*v));
        }
        for probe in 0..8i64 {
            let mut indexed = g.nodes_by(l, k, &Value::Int(probe));
            indexed.sort();
            let mut scanned: Vec<NodeId> = g
                .node_ids()
                .filter(|n| g.node_prop(*n, k) == Some(&Value::Int(probe)))
                .collect();
            scanned.sort();
            prop_assert_eq!(indexed, scanned);
        }
    }

    #[test]
    fn serde_round_trip_any_graph(edges in prop::collection::vec((0u32..12, 0u32..12), 0..40)) {
        let mut g = Graph::new();
        let l = g.label("N");
        let t = g.edge_type("CALL");
        let pp = g.prop_key("PP");
        let nodes: Vec<NodeId> = (0..12).map(|_| g.add_node(l)).collect();
        for (i, (a, b)) in edges.iter().enumerate() {
            let e = g.add_edge(t, nodes[*a as usize], nodes[*b as usize]);
            g.set_edge_prop(e, pp, Value::IntList(vec![i as i64, -1]));
        }
        let json = serde_json::to_string(&g).unwrap();
        let mut back: Graph = serde_json::from_str(&json).unwrap();
        back.rebuild_after_deserialize();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            prop_assert_eq!(back.endpoints(e), g.endpoints(e));
            prop_assert_eq!(back.edge_prop(e, pp), g.edge_prop(e, pp));
        }
    }

    #[test]
    fn serialization_is_byte_stable(
        edges in prop::collection::vec((0u32..10, 0u32..10), 0..30),
        props in prop::collection::vec((0u32..10, 0u8..4, -8i64..8), 0..40),
    ) {
        // The service cache keys on graph bytes, so serialize →
        // deserialize → re-serialize must reproduce the exact bytes.
        // Property maps used to be HashMaps, whose iteration order (and
        // hence JSON field order) varied run to run; this pins the fix.
        let mut g = Graph::new();
        let l = g.label("Method");
        let t = g.edge_type("CALL");
        let keys = [
            g.prop_key("NAME"),
            g.prop_key("SIGNATURE"),
            g.prop_key("PP"),
            g.prop_key("IS_SINK"),
        ];
        g.create_index(l, keys[0]);
        let nodes: Vec<NodeId> = (0..10).map(|_| g.add_node(l)).collect();
        for (a, b) in &edges {
            let e = g.add_edge(t, nodes[*a as usize], nodes[*b as usize]);
            g.set_edge_prop(e, keys[2], Value::IntList(vec![*a as i64, *b as i64]));
        }
        for (n, k, v) in &props {
            let value = match k % 4 {
                0 => Value::from(format!("s{v}")),
                1 => Value::Int(*v),
                2 => Value::Bool(*v > 0),
                _ => Value::IntList(vec![*v, -*v]),
            };
            g.set_node_prop(nodes[*n as usize], keys[(*k % 4) as usize], value);
        }
        let first = serde_json::to_vec(&g).unwrap();
        let mut back: Graph = serde_json::from_slice(&first).unwrap();
        // Stability must hold both before and after rebuilding the
        // transient lookup state — neither may leak into the bytes.
        let raw = serde_json::to_vec(&back).unwrap();
        prop_assert_eq!(&raw, &first, "re-serialization before rebuild drifted");
        back.rebuild_after_deserialize();
        let second = serde_json::to_vec(&back).unwrap();
        prop_assert_eq!(&second, &first, "re-serialization after rebuild drifted");
        prop_assert_eq!(back.content_hash(), g.content_hash());
    }

    #[test]
    fn flat_round_trip_matches_frozen_csr(
        calls in prop::collection::vec((0u32..14, 0u32..14), 0..50),
        aliases in prop::collection::vec((0u32..14, 0u32..14), 0..30),
        named in prop::collection::vec((0u32..14, 0u8..6), 0..30),
    ) {
        // The flat on-disk layout promises its per-type arrays are exactly
        // the arrays `CsrSnapshot::freeze` builds, so a mapped graph and a
        // frozen graph must agree on every neighbor list, payload span,
        // and interned node string — for any graph shape.
        let mut g = Graph::new();
        let l = g.label("Method");
        let call = g.edge_type("CALL");
        let alias = g.edge_type("ALIAS");
        let pp = g.prop_key("POLLUTED_POSITION");
        let name = g.prop_key("NAME");
        let class = g.prop_key("CLASS_NAME");
        let nodes: Vec<NodeId> = (0..14).map(|_| g.add_node(l)).collect();
        for (i, (a, b)) in calls.iter().enumerate() {
            let e = g.add_edge(call, nodes[*a as usize], nodes[*b as usize]);
            g.set_edge_prop(e, pp, Value::IntList(vec![i as i64, -1]));
        }
        for (a, b) in &aliases {
            g.add_edge(alias, nodes[*a as usize], nodes[*b as usize]);
        }
        for (n, which) in &named {
            let node = nodes[*n as usize];
            if which % 2 == 0 {
                g.set_node_prop(node, name, Value::from(format!("m{n}")));
            }
            if which % 3 == 0 {
                g.set_node_prop(node, class, Value::from(format!("com.example.C{n}")));
            }
        }

        let meta = br#"{"provenance":"prop"}"#;
        let bytes = encode_flat_cpg(&g, Some(pp), Some(name), Some(class), meta).unwrap();
        let path = std::env::temp_dir().join(format!(
            "tabby-flat-prop-{}-{}.bin",
            std::process::id(),
            FLAT_CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, &bytes).unwrap();
        let buf = Arc::new(MappedBuf::open(&path).unwrap());
        let _ = std::fs::remove_file(&path);
        let flat = FlatCpg::from_buf(buf, 0..bytes.len()).unwrap();

        prop_assert_eq!(flat.meta(), &meta[..]);
        prop_assert_eq!(flat.node_count(), g.node_count());
        let types = [call, alias];
        let frozen = CsrSnapshot::freeze(&g, &types, Some(pp)).unwrap();
        let mapped = flat.snapshot(&types);
        for layer in 0..types.len() {
            for &n in &nodes {
                for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                    let want: Vec<(EdgeId, NodeId, Vec<i64>)> = frozen
                        .neighbors(layer, n, dir)
                        .map(|(e, m, p)| (e, m, p.to_vec()))
                        .collect();
                    let got: Vec<(EdgeId, NodeId, Vec<i64>)> = mapped
                        .neighbors(layer, n, dir)
                        .map(|(e, m, p)| (e, m, p.to_vec()))
                        .collect();
                    prop_assert_eq!(want, got, "layer {} node {:?} {:?}", layer, n, dir);
                }
            }
        }
        for &n in &nodes {
            prop_assert_eq!(flat.node_name(n), g.node_prop(n, name).and_then(Value::as_str));
            prop_assert_eq!(flat.node_class(n), g.node_prop(n, class).and_then(Value::as_str));
        }
    }

    #[test]
    fn node_path_traversal_never_repeats_nodes(edges in prop::collection::vec((0u32..10, 0u32..10), 0..40)) {
        let mut g = Graph::new();
        let l = g.label("N");
        let t = g.edge_type("E");
        let nodes: Vec<NodeId> = (0..10).map(|_| g.add_node(l)).collect();
        for (a, b) in &edges {
            g.add_edge(t, nodes[*a as usize], nodes[*b as usize]);
        }
        let paths = Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            |_: &Graph, path: &Path, _: &()| {
                if path.len() >= 1 {
                    Evaluation::IncludeAndContinue
                } else {
                    Evaluation::ExcludeAndContinue
                }
            },
        )
        .uniqueness(Uniqueness::NodePath)
        .max_results(500)
        .max_expansions(20_000)
        .run(&g, nodes[0], ());
        for (path, _) in paths {
            let mut seen = path.nodes().to_vec();
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), path.nodes().len(), "node repeated on path");
            prop_assert_eq!(path.edges().len() + 1, path.nodes().len());
        }
    }
}
