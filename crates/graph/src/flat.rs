//! The offset-based, mmap-able on-disk CPG format.
//!
//! The serde representation of a [`Graph`] is a construction format: every
//! cache hit pays a full `serde_json` parse — O(graph) allocation and
//! decoding — before the first adjacency lookup. This module defines a
//! *flat* artifact that a worker opens with one `mmap` and queries in
//! place:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ header (128 B): version, endian tag, node/type counts, offsets   │
//! │ type table: type_count × u32 edge-type ids                       │
//! │ layer directory: per type, fwd/rev {offsets_off, entries_off,    │
//! │                  entries_len} (u64 each)                         │
//! │ per type × direction: offsets  (node_count+1 × u32, CSR)         │
//! │                       entries  (n × 16 B Entry, CSR)             │
//! │ payload arena: pre-decoded Polluted_Position words (i64)         │
//! │ string table: (count+1) × u32 offsets + UTF-8 blob               │
//! │ node columns: NAME / CLASS_NAME string indices (u32, MAX=absent) │
//! │ meta blob: caller-opaque bytes (sinks, sources, diagnostics)     │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every section is 8-byte aligned, every array is little-endian, and the
//! per-layer arrays mirror [`CsrSnapshot::freeze`]'s `CsrDir` layout
//! exactly — entries appear in edge-insertion order — so a search run off
//! the mapping expands in the identical order and returns byte-identical
//! results. The artifact is wrapped in the checksummed `tabby_core`
//! envelope *by the caller* (this crate sits below `tabby_core` in the
//! dependency order): the caller verifies the envelope over the raw file
//! bytes and hands [`FlatCpg::from_buf`] the payload range.
//!
//! [`MappedBuf`] does the mapping itself with a raw `mmap(2)` call against
//! the C library the Rust runtime already links on Unix — no new
//! dependencies — and falls back to an 8-aligned heap read everywhere
//! else (or when `mmap` fails). Big-endian hosts are refused at open and
//! degrade to the serde path.

use crate::csr::{CsrSnapshot, Entry, GraphError};
use crate::store::{EdgeType, Graph, NodeId, PropKey};
use crate::value::Value;
use std::collections::HashMap;
use std::io::Read;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// Version of the flat layout described in the module docs. Bumped on any
/// incompatible change; readers refuse other versions and fall back to the
/// serde artifact.
pub const FLAT_FORMAT_VERSION: u64 = 1;

/// Little-endian sentinel: reads back as itself only when writer and
/// reader agree on byte order.
const ENDIAN_TAG: u64 = 0x0102_0304_0506_0708;

/// Fixed header size in bytes (16 u64 fields).
const HEADER_LEN: usize = 128;

/// Column sentinel for "node has no such property".
const NO_STRING: u32 = u32::MAX;

/// An error opening or validating a flat CPG artifact. Every variant is a
/// *fallback* signal, not a fatal one: callers degrade to the serde
/// artifact or a cold build.
#[derive(Debug)]
pub enum FlatError {
    /// The file could not be read or mapped.
    Io(std::io::Error),
    /// The payload does not parse as the flat layout (bad lengths,
    /// misaligned sections, out-of-bounds directory entries).
    Format(String),
    /// The payload declares a flat format version this reader does not
    /// speak.
    VersionSkew {
        /// The version the file declares.
        found: u64,
        /// The version this reader implements.
        supported: u64,
    },
    /// The host cannot use the zero-copy path (big-endian byte order).
    Unsupported(String),
}

impl std::fmt::Display for FlatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatError::Io(e) => write!(f, "flat CPG I/O error: {e}"),
            FlatError::Format(m) => write!(f, "malformed flat CPG: {m}"),
            FlatError::VersionSkew { found, supported } => write!(
                f,
                "flat CPG format version {found} (this reader supports {supported})"
            ),
            FlatError::Unsupported(m) => write!(f, "flat CPG unsupported here: {m}"),
        }
    }
}

impl std::error::Error for FlatError {}

impl From<std::io::Error> for FlatError {
    fn from(e: std::io::Error) -> Self {
        FlatError::Io(e)
    }
}

impl FlatError {
    /// `true` when the artifact itself is damaged or incompatible (worth
    /// quarantining), as opposed to a host limitation.
    pub fn is_corruption(&self) -> bool {
        matches!(self, FlatError::Format(_) | FlatError::VersionSkew { .. })
    }
}

// ---------------------------------------------------------------------------
// MappedBuf: one read-only mapping (or an aligned heap copy) of a file.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// The bytes of one artifact, either memory-mapped read-only or copied
/// into an 8-byte-aligned heap buffer (the fallback when `mmap` is
/// unavailable or fails). Either way [`MappedBuf::as_bytes`] starts on an
/// 8-byte boundary, which the flat layout's section alignment relies on.
pub struct MappedBuf {
    inner: Inner,
}

enum Inner {
    /// A `PROT_READ`/`MAP_PRIVATE` mapping; unmapped on drop.
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    /// Heap copy held in `u64`s so the base is 8-aligned; `len` is the
    /// byte length (the final word may be partially used).
    Heap { words: Vec<u64>, len: usize },
}

// SAFETY: the buffer is read-only for its entire lifetime (PROT_READ
// mapping or never-mutated heap words) and the raw pointer is owned
// exclusively by this value (unmapped exactly once, on drop).
unsafe impl Send for MappedBuf {}
// SAFETY: shared access is read-only; see above.
unsafe impl Sync for MappedBuf {}

impl std::fmt::Debug for MappedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBuf")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl MappedBuf {
    /// Opens `path` read-only, preferring one `mmap(2)` of the whole file
    /// and falling back to an aligned heap read (empty files, non-Unix
    /// hosts, or a failed map).
    pub fn open(path: &Path) -> Result<MappedBuf, std::io::Error> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len > 0 {
                // SAFETY: mapping `len` bytes of an open fd read-only;
                // the pointer (checked against MAP_FAILED) stays valid
                // until the munmap in Drop, and the fd may close freely
                // after mmap returns.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != usize::MAX as *mut std::ffi::c_void && !ptr.is_null() {
                    return Ok(MappedBuf {
                        inner: Inner::Mmap {
                            ptr: ptr.cast::<u8>(),
                            len,
                        },
                    });
                }
            }
            return Self::read_heap(file, len);
        }
        #[cfg(not(unix))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            Self::read_heap(file, len)
        }
    }

    fn read_heap(mut file: std::fs::File, len: usize) -> Result<MappedBuf, std::io::Error> {
        let mut words = vec![0u64; len.div_ceil(8)];
        if len > 0 {
            // SAFETY: viewing the zero-initialized u64 buffer as bytes;
            // `len <= words.len() * 8` by construction.
            let dst =
                unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
            file.read_exact(dst)?;
        }
        Ok(MappedBuf {
            inner: Inner::Heap { words, len },
        })
    }

    /// The file bytes. The returned slice starts 8-byte aligned.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; no mutable aliases exist.
            Inner::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap { words, len } => {
                // SAFETY: `len <= words.len() * 8`; u64s viewed as bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Byte length of the artifact.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mmap { len, .. } => *len,
            Inner::Heap { len, .. } => *len,
        }
    }

    /// `true` when the artifact is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when backed by a real memory mapping (false for the heap
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mmap { .. } => true,
            Inner::Heap { .. } => false,
        }
    }
}

impl Drop for MappedBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mmap { ptr, len } = self.inner {
            // SAFETY: exactly this mapping was created in `open`; after
            // drop no slice borrowed from it can be alive.
            unsafe {
                sys::munmap(ptr.cast::<std::ffi::c_void>(), len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mapped CSR views handed to CsrSnapshot.
// ---------------------------------------------------------------------------

/// One direction of one layer inside the mapping: absolute byte offsets
/// plus element counts, validated (bounds + alignment) at open.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MappedDir {
    offsets_off: usize,
    /// u32 count (`node_count + 1`, or 0 for an empty layer).
    offsets_len: usize,
    entries_off: usize,
    /// Entry count.
    entries_len: usize,
}

/// The mapped arrays backing a [`CsrSnapshot`]: per-layer CSR directories
/// plus the shared payload arena, all slices into one [`MappedBuf`].
#[derive(Debug, Clone)]
pub(crate) struct MappedCsr {
    buf: Arc<MappedBuf>,
    layers: Vec<(MappedDir, MappedDir)>,
    payload_off: usize,
    payload_words: usize,
}

impl MappedCsr {
    #[inline]
    fn u32s(&self, off: usize, len: usize) -> &[u32] {
        // SAFETY: off/len were bounds- and alignment-checked against the
        // buffer at open; the buffer is immutable and outlives the borrow.
        unsafe { std::slice::from_raw_parts(self.buf.as_bytes().as_ptr().add(off).cast(), len) }
    }

    #[inline]
    pub(crate) fn dir_raw(&self, layer: usize, forward: bool) -> (&[u32], &[Entry]) {
        let d = if forward {
            self.layers[layer].0
        } else {
            self.layers[layer].1
        };
        let offsets = self.u32s(d.offsets_off, d.offsets_len);
        // SAFETY: Entry is #[repr(C)], 16 bytes, no padding, any bit
        // pattern valid; offset/len checked at open; 8-aligned sections
        // satisfy its 4-byte alignment.
        let entries = unsafe {
            std::slice::from_raw_parts(
                self.buf
                    .as_bytes()
                    .as_ptr()
                    .add(d.entries_off)
                    .cast::<Entry>(),
                d.entries_len,
            )
        };
        (offsets, entries)
    }

    #[inline]
    pub(crate) fn payload_arena(&self) -> &[i64] {
        // SAFETY: checked at open; 8-aligned.
        unsafe {
            std::slice::from_raw_parts(
                self.buf
                    .as_bytes()
                    .as_ptr()
                    .add(self.payload_off)
                    .cast::<i64>(),
                self.payload_words,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------------

/// Little-endian serializer with 8-byte section alignment.
struct FlatWriter {
    out: Vec<u8>,
}

impl FlatWriter {
    fn align8(&mut self) {
        while self.out.len() % 8 != 0 {
            self.out.push(0);
        }
    }

    fn put_u64_at(&mut self, at: usize, v: u64) {
        self.out[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn put_u32s(&mut self, vs: &[u32]) {
        self.out.reserve(vs.len() * 4);
        for v in vs {
            self.out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Encodes `graph` into the flat payload (no envelope). `payload_key` is
/// the pre-decoded edge payload (Polluted_Position); `name_key` /
/// `class_key` fill the node NAME / CLASS_NAME columns used to describe
/// chain steps without the serde graph; `meta` is stored verbatim for the
/// caller (sink/source/diagnostics summary).
///
/// Layers are written for every edge type present in the graph, in
/// ascending type-id order, each one byte-for-byte the `CsrDir` arrays
/// [`CsrSnapshot::freeze`] builds for that type.
///
/// # Errors
///
/// Propagates [`GraphError`] when the graph outgrows the u32-indexed CSR
/// layout.
pub fn encode_flat_cpg(
    graph: &Graph,
    payload_key: Option<PropKey>,
    name_key: Option<PropKey>,
    class_key: Option<PropKey>,
    meta: &[u8],
) -> Result<Vec<u8>, GraphError> {
    // Every edge type with at least one edge, ascending by id; a type
    // absent here has no edges, which readers model as an empty layer.
    let mut types: Vec<EdgeType> = graph
        .edge_type_histogram()
        .iter()
        .filter_map(|(name, _)| graph.get_edge_type(name))
        .collect();
    types.sort_unstable_by_key(|t| t.0);
    types.dedup();

    let snapshot = CsrSnapshot::freeze(graph, &types, payload_key)?;
    let n = graph.node_count();

    // String table: dedup every NAME/CLASS_NAME value once.
    let mut strings: Vec<&str> = Vec::new();
    let mut string_ids: HashMap<&str, u32> = HashMap::new();
    let mut column =
        |key: Option<PropKey>, strings: &mut Vec<&str>, ids: &mut HashMap<&str, u32>| {
            let mut col = vec![NO_STRING; n];
            if let Some(key) = key {
                for (i, slot) in col.iter_mut().enumerate() {
                    let node = NodeId(i as u32);
                    if let Some(s) = graph.node_prop(node, key).and_then(Value::as_str) {
                        let id = *ids.entry(s).or_insert_with(|| {
                            strings.push(s);
                            (strings.len() - 1) as u32
                        });
                        *slot = id;
                    }
                }
            }
            col
        };
    let names = column(name_key, &mut strings, &mut string_ids);
    let classes = column(class_key, &mut strings, &mut string_ids);

    let mut w = FlatWriter {
        out: vec![0u8; HEADER_LEN],
    };

    // Type table.
    let type_ids: Vec<u32> = types.iter().map(|t| u32::from(t.0)).collect();
    let types_off = w.out.len();
    w.put_u32s(&type_ids);
    w.align8();

    // Layer directory placeholder (6 u64 per type), patched below.
    let layers_off = w.out.len();
    w.out.extend(std::iter::repeat(0u8).take(types.len() * 48));

    // Per-layer arrays, in the exact CsrDir layout freeze produced.
    let mut dir_entries: Vec<u64> = Vec::with_capacity(types.len() * 6);
    for layer in 0..types.len() {
        for forward in [true, false] {
            let (offsets, entries) = snapshot.dir_raw(layer, forward);
            w.align8();
            let offsets_off = w.out.len();
            w.put_u32s(offsets);
            w.align8();
            let entries_off = w.out.len();
            for e in entries {
                w.put_u32s(&[e.edge, e.node, e.start, e.len]);
            }
            dir_entries.extend([offsets_off as u64, entries_off as u64, entries.len() as u64]);
        }
    }
    for (i, v) in dir_entries.iter().enumerate() {
        w.put_u64_at(layers_off + i * 8, *v);
    }

    // Payload arena.
    w.align8();
    let payload_off = w.out.len();
    let payload = snapshot.payload_arena();
    w.out.reserve(payload.len() * 8);
    for v in payload {
        w.out.extend_from_slice(&v.to_le_bytes());
    }

    // String table: (count + 1) u32 offsets into the blob, then the blob.
    w.align8();
    let strings_off = w.out.len();
    let mut blob_offsets: Vec<u32> = Vec::with_capacity(strings.len() + 1);
    let mut blob: Vec<u8> = Vec::new();
    blob_offsets.push(0);
    for s in &strings {
        blob.extend_from_slice(s.as_bytes());
        blob_offsets.push(blob.len() as u32);
    }
    w.put_u32s(&blob_offsets);
    w.out.extend_from_slice(&blob);

    // Node columns.
    w.align8();
    let names_off = w.out.len();
    w.put_u32s(&names);
    w.align8();
    let classes_off = w.out.len();
    w.put_u32s(&classes);

    // Meta blob.
    w.align8();
    let meta_off = w.out.len();
    w.out.extend_from_slice(meta);
    w.align8();

    // Header.
    let total = w.out.len() as u64;
    for (i, v) in [
        FLAT_FORMAT_VERSION,
        ENDIAN_TAG,
        n as u64,
        types.len() as u64,
        types_off as u64,
        layers_off as u64,
        payload_off as u64,
        payload.len() as u64,
        strings_off as u64,
        strings.len() as u64,
        names_off as u64,
        classes_off as u64,
        meta_off as u64,
        meta.len() as u64,
        total,
        0,
    ]
    .iter()
    .enumerate()
    {
        w.put_u64_at(i * 8, *v);
    }
    Ok(w.out)
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// One opened flat CPG artifact: the mapping plus the validated section
/// directory. Cheap to clone-share behind an `Arc`; every accessor is a
/// pointer offset into the mapping.
#[derive(Debug)]
pub struct FlatCpg {
    buf: Arc<MappedBuf>,
    node_count: usize,
    types: Vec<EdgeType>,
    layers: Vec<(MappedDir, MappedDir)>,
    payload_off: usize,
    payload_words: usize,
    strings_off: usize,
    string_count: usize,
    names_off: usize,
    classes_off: usize,
    meta: Range<usize>,
}

/// Bounds/alignment validator over one payload window.
struct Check<'a> {
    bytes: &'a [u8],
    base: usize,
    end: usize,
}

impl Check<'_> {
    fn u64_at(&self, field: usize) -> Result<u64, FlatError> {
        let at = self.base + field * 8;
        if at + 8 > self.end {
            return Err(FlatError::Format("header out of bounds".into()));
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[at..at + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Validates a section of `len` elements of `size` bytes at absolute
    /// offset `off` (relative to payload base), returning the absolute
    /// buffer offset.
    fn section(&self, off: u64, len: usize, size: usize, what: &str) -> Result<usize, FlatError> {
        let off = usize::try_from(off)
            .ok()
            .and_then(|o| self.base.checked_add(o))
            .ok_or_else(|| FlatError::Format(format!("{what} offset overflow")))?;
        let bytes = len
            .checked_mul(size)
            .ok_or_else(|| FlatError::Format(format!("{what} length overflow")))?;
        if off % size.min(8) != 0 {
            return Err(FlatError::Format(format!("{what} misaligned")));
        }
        if off.checked_add(bytes).map_or(true, |e| e > self.end) {
            return Err(FlatError::Format(format!("{what} out of bounds")));
        }
        Ok(off)
    }
}

impl FlatCpg {
    /// Validates the flat payload occupying `payload` inside `buf` (the
    /// caller already verified the enclosing checksummed envelope) and
    /// returns the zero-copy handle.
    ///
    /// # Errors
    ///
    /// [`FlatError::VersionSkew`] on an unknown format version,
    /// [`FlatError::Unsupported`] on big-endian hosts, and
    /// [`FlatError::Format`] on structural damage.
    pub fn from_buf(buf: Arc<MappedBuf>, payload: Range<usize>) -> Result<FlatCpg, FlatError> {
        if cfg!(target_endian = "big") {
            return Err(FlatError::Unsupported(
                "zero-copy flat CPGs are little-endian".into(),
            ));
        }
        let bytes = buf.as_bytes();
        if payload.start % 8 != 0 {
            return Err(FlatError::Format("payload base misaligned".into()));
        }
        if payload.end > bytes.len() || payload.start > payload.end {
            return Err(FlatError::Format("payload range out of bounds".into()));
        }
        if payload.len() < HEADER_LEN {
            return Err(FlatError::Format("payload shorter than header".into()));
        }
        let c = Check {
            bytes,
            base: payload.start,
            end: payload.end,
        };
        let version = c.u64_at(0)?;
        if version != FLAT_FORMAT_VERSION {
            return Err(FlatError::VersionSkew {
                found: version,
                supported: FLAT_FORMAT_VERSION,
            });
        }
        if c.u64_at(1)? != ENDIAN_TAG {
            return Err(FlatError::Format("endian tag mismatch".into()));
        }
        let node_count = c.u64_at(2)? as usize;
        let type_count = c.u64_at(3)? as usize;
        if c.u64_at(14)? as usize != payload.len() {
            return Err(FlatError::Format("declared length mismatch".into()));
        }

        let types_off = c.section(c.u64_at(4)?, type_count, 4, "type table")?;
        let layers_off = c.section(c.u64_at(5)?, type_count * 6, 8, "layer directory")?;
        let payload_words = c.u64_at(7)? as usize;
        let payload_off = c.section(c.u64_at(6)?, payload_words, 8, "payload arena")?;
        let string_count = c.u64_at(9)? as usize;
        let strings_off = c.section(c.u64_at(8)?, string_count + 1, 4, "string offsets")?;
        let names_off = c.section(c.u64_at(10)?, node_count, 4, "name column")?;
        let classes_off = c.section(c.u64_at(11)?, node_count, 4, "class column")?;
        let meta_len = c.u64_at(13)? as usize;
        let meta_off = c.section(c.u64_at(12)?, meta_len, 1, "meta blob")?;

        let mut types = Vec::with_capacity(type_count);
        for i in 0..type_count {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[types_off + i * 4..types_off + i * 4 + 4]);
            let id = u32::from_le_bytes(b);
            let id = u16::try_from(id)
                .map_err(|_| FlatError::Format("edge type id out of range".into()))?;
            types.push(EdgeType(id));
        }

        let mut layers = Vec::with_capacity(type_count);
        for i in 0..type_count {
            let mut dirs = [MappedDir::default(); 2];
            for (d, dir) in dirs.iter_mut().enumerate() {
                let at = layers_off + (i * 6 + d * 3) * 8;
                let read = |k: usize| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&bytes[at + k * 8..at + k * 8 + 8]);
                    u64::from_le_bytes(b)
                };
                let entries_len = read(2) as usize;
                let offsets_len = if node_count == 0 { 1 } else { node_count + 1 };
                let offsets_off = c.section(read(0), offsets_len, 4, "CSR offsets")?;
                let entries_off = c.section(read(1), entries_len, 16, "CSR entries")?;
                *dir = MappedDir {
                    offsets_off,
                    offsets_len,
                    entries_off,
                    entries_len,
                };
            }
            layers.push((dirs[0], dirs[1]));
        }

        // The string blob sits right after the offsets array; its end is
        // implied by the last offset. Bound it.
        let blob_base = strings_off + (string_count + 1) * 4;
        let last = {
            let at = strings_off + string_count * 4;
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[at..at + 4]);
            u32::from_le_bytes(b) as usize
        };
        if blob_base + last > payload.end {
            return Err(FlatError::Format("string blob out of bounds".into()));
        }

        Ok(FlatCpg {
            buf,
            node_count,
            types,
            layers,
            payload_off,
            payload_words,
            strings_off,
            string_count,
            names_off,
            classes_off,
            meta: meta_off..meta_off + meta_len,
        })
    }

    /// Nodes in the stored graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Bytes of the underlying artifact (mapping size, for budgets).
    pub fn mapped_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// `true` when served by a real `mmap` rather than the heap fallback.
    pub fn is_mmap(&self) -> bool {
        self.buf.is_mapped()
    }

    /// The caller-opaque meta blob stored at encode time.
    pub fn meta(&self) -> &[u8] {
        &self.buf.as_bytes()[self.meta.clone()]
    }

    /// A zero-copy [`CsrSnapshot`] over the requested edge `types`, layer
    /// *i* serving `types[i]` exactly like [`CsrSnapshot::freeze`] would.
    /// A type with no edges in the stored graph yields an empty layer.
    pub fn snapshot(&self, types: &[EdgeType]) -> CsrSnapshot {
        let layers = types
            .iter()
            .map(|ty| match self.types.iter().position(|t| t == ty) {
                Some(i) => self.layers[i],
                None => (MappedDir::default(), MappedDir::default()),
            })
            .collect();
        CsrSnapshot::from_mapped(
            types.to_vec(),
            MappedCsr {
                buf: Arc::clone(&self.buf),
                layers,
                payload_off: self.payload_off,
                payload_words: self.payload_words,
            },
        )
    }

    /// Every edge type stored in the artifact, ascending by id.
    pub fn stored_types(&self) -> &[EdgeType] {
        &self.types
    }

    fn string(&self, id: u32) -> Option<&str> {
        if id == NO_STRING || (id as usize) >= self.string_count {
            return None;
        }
        let bytes = self.buf.as_bytes();
        let at = self.strings_off + (id as usize) * 4;
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[at..at + 4]);
        let start = u32::from_le_bytes(b) as usize;
        b.copy_from_slice(&bytes[at + 4..at + 8]);
        let end = u32::from_le_bytes(b) as usize;
        let blob = self.strings_off + (self.string_count + 1) * 4;
        std::str::from_utf8(&bytes[blob + start..blob + end]).ok()
    }

    fn column(&self, off: usize, node: NodeId) -> Option<&str> {
        let i = node.index();
        if i >= self.node_count {
            return None;
        }
        let at = off + i * 4;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf.as_bytes()[at..at + 4]);
        self.string(u32::from_le_bytes(b))
    }

    /// The node's NAME column value, if present at encode time.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.column(self.names_off, node)
    }

    /// The node's CLASS_NAME column value, if present at encode time.
    pub fn node_class(&self, node: NodeId) -> Option<&str> {
        self.column(self.classes_off, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Direction;

    fn sample() -> (Graph, EdgeType, EdgeType, PropKey, PropKey, PropKey) {
        let mut g = Graph::new();
        let method = g.label("Method");
        let call = g.edge_type("CALL");
        let alias = g.edge_type("ALIAS");
        let pp = g.prop_key("PP");
        let name = g.prop_key("NAME");
        let class = g.prop_key("CLASS_NAME");
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node(method)).collect();
        for (i, &n) in nodes.iter().enumerate() {
            g.set_node_prop(n, name, Value::from(format!("m{i}").as_str()));
            if i != 3 {
                g.set_node_prop(n, class, Value::from("t.C"));
            }
        }
        let e = g.add_edge(call, nodes[1], nodes[0]);
        g.set_edge_prop(e, pp, Value::IntList(vec![-1, 0, 2]));
        g.add_edge(alias, nodes[2], nodes[0]);
        let e = g.add_edge(call, nodes[2], nodes[1]);
        g.set_edge_prop(e, pp, Value::IntList(vec![1]));
        g.add_edge(call, nodes[4], nodes[2]);
        g.add_edge(call, nodes[0], nodes[0]);
        (g, call, alias, pp, name, class)
    }

    fn write_and_open(payload: &[u8]) -> (FlatCpg, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "tabby-flat-test-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, payload).unwrap();
        let buf = Arc::new(MappedBuf::open(&path).unwrap());
        let len = buf.len();
        let flat = FlatCpg::from_buf(buf, 0..len).unwrap();
        (flat, path)
    }

    #[test]
    fn mapped_snapshot_matches_frozen_snapshot() {
        let (g, call, alias, pp, name, class) = sample();
        let payload = encode_flat_cpg(&g, Some(pp), Some(name), Some(class), b"meta!").unwrap();
        let (flat, path) = write_and_open(&payload);
        assert_eq!(flat.meta(), b"meta!");
        assert_eq!(flat.node_count(), g.node_count());

        let frozen = CsrSnapshot::freeze(&g, &[call, alias], Some(pp)).unwrap();
        let mapped = flat.snapshot(&[call, alias]);
        assert!(mapped.is_mapped() || !flat.is_mmap());
        for n in g.node_ids() {
            for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                for layer in [0usize, 1] {
                    let want: Vec<_> = frozen.neighbors(layer, n, dir).collect();
                    let got: Vec<_> = mapped.neighbors(layer, n, dir).collect();
                    assert_eq!(got, want, "node {n:?} dir {dir:?} layer {layer}");
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn node_columns_round_trip() {
        let (g, _, _, pp, name, class) = sample();
        let payload = encode_flat_cpg(&g, Some(pp), Some(name), Some(class), b"").unwrap();
        let (flat, path) = write_and_open(&payload);
        for n in g.node_ids() {
            let want_name = g.node_prop(n, name).and_then(Value::as_str);
            let want_class = g.node_prop(n, class).and_then(Value::as_str);
            assert_eq!(flat.node_name(n), want_name, "node {n:?}");
            assert_eq!(flat.node_class(n), want_class, "node {n:?}");
        }
        assert_eq!(flat.node_name(NodeId(999)), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn absent_type_is_an_empty_layer() {
        let (g, call, _, pp, _, _) = sample();
        let payload = encode_flat_cpg(&g, Some(pp), None, None, b"").unwrap();
        let (flat, path) = write_and_open(&payload);
        let ghost = EdgeType(200);
        let mapped = flat.snapshot(&[ghost, call]);
        assert_eq!(mapped.layer_of(ghost), Some(0));
        assert_eq!(mapped.layer_len(0), 0);
        for n in g.node_ids() {
            assert_eq!(mapped.neighbors(0, n, Direction::Both).count(), 0);
        }
        assert!(mapped.layer_len(1) > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_skew_and_truncation_are_refused() {
        let (g, _, _, pp, _, _) = sample();
        let mut payload = encode_flat_cpg(&g, Some(pp), None, None, b"m").unwrap();

        // Truncation.
        let path = std::env::temp_dir().join(format!(
            "tabby-flat-trunc-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, &payload[..payload.len() / 2]).unwrap();
        let buf = Arc::new(MappedBuf::open(&path).unwrap());
        let len = buf.len();
        let err = FlatCpg::from_buf(buf, 0..len).unwrap_err();
        assert!(err.is_corruption(), "{err}");

        // Version skew.
        payload[0..8].copy_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &payload).unwrap();
        let buf = Arc::new(MappedBuf::open(&path).unwrap());
        let len = buf.len();
        match FlatCpg::from_buf(buf, 0..len) {
            Err(FlatError::VersionSkew { found: 99, .. }) => {}
            other => panic!("expected version skew, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let payload = encode_flat_cpg(&g, None, None, None, b"").unwrap();
        let (flat, path) = write_and_open(&payload);
        assert_eq!(flat.node_count(), 0);
        assert!(flat.stored_types().is_empty());
        let snap = flat.snapshot(&[EdgeType(0)]);
        assert_eq!(snap.layer_len(0), 0);
        let _ = std::fs::remove_file(&path);
    }
}
