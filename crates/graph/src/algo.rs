//! Generic graph algorithms used by the analysis layers and the benchmark
//! harness: reachability, shortest paths, degree statistics, and strongly
//! connected components.

use crate::store::{Direction, EdgeType, Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Nodes reachable from `start` following edges of the given types in the
/// given direction (including `start`).
pub fn reachable(graph: &Graph, start: NodeId, types: &[(EdgeType, Direction)]) -> HashSet<NodeId> {
    let mut seen = HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &(ty, dir) in types {
            for e in graph.edges_of(n, dir, Some(ty)) {
                let m = graph.other_node(e, n);
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
    }
    seen
}

/// Shortest path (by hop count) from `start` to `goal`, as a node sequence,
/// or `None` if unreachable.
pub fn shortest_path(
    graph: &Graph,
    start: NodeId,
    goal: NodeId,
    types: &[(EdgeType, Direction)],
) -> Option<Vec<NodeId>> {
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut seen = HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        if n == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &(ty, dir) in types {
            for e in graph.edges_of(n, dir, Some(ty)) {
                let m = graph.other_node(e, n);
                if seen.insert(m) {
                    prev.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
    }
    None
}

/// Degree statistics over all nodes for one edge type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max_out: usize,
    /// Mean out-degree.
    pub mean_out: f64,
    /// Number of nodes with no outgoing edge of the type.
    pub sinks: usize,
}

/// Computes out-degree statistics for `ty`.
pub fn degree_stats(graph: &Graph, ty: EdgeType) -> DegreeStats {
    let mut max_out = 0usize;
    let mut total = 0usize;
    let mut sinks = 0usize;
    let n = graph.node_count().max(1);
    for node in graph.node_ids() {
        let d = graph.edges_of(node, Direction::Outgoing, Some(ty)).len();
        max_out = max_out.max(d);
        total += d;
        if d == 0 {
            sinks += 1;
        }
    }
    DegreeStats {
        max_out,
        mean_out: total as f64 / n as f64,
        sinks,
    }
}

/// Strongly connected components over edges of the given types (Tarjan,
/// iterative). Returns components in reverse topological order; singleton
/// components without self-loops are included.
pub fn strongly_connected_components(graph: &Graph, types: &[EdgeType]) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let succs = |v: NodeId| -> Vec<NodeId> {
        let mut out = Vec::new();
        for &ty in types {
            for e in graph.edges_of(v, Direction::Outgoing, Some(ty)) {
                out.push(graph.other_node(e, v));
            }
        }
        out
    };
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    for start in graph.node_ids() {
        if index[start.index()] != usize::MAX {
            continue;
        }
        // Iterative Tarjan with an explicit work stack.
        let mut work: Vec<(NodeId, Vec<NodeId>, usize)> = vec![(start, succs(start), 0)];
        index[start.index()] = next_index;
        low[start.index()] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start.index()] = true;
        while let Some((v, children, mut i)) = work.pop() {
            let mut descended = false;
            while i < children.len() {
                let w = children[i];
                i += 1;
                if index[w.index()] == usize::MAX {
                    work.push((v, children, i));
                    index[w.index()] = next_index;
                    low[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    work.push((w, succs(w), 0));
                    descended = true;
                    break;
                } else if on_stack[w.index()] {
                    low[v.index()] = low[v.index()].min(index[w.index()]);
                }
            }
            if descended {
                continue;
            }
            if low[v.index()] == index[v.index()] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w.index()] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                components.push(comp);
            }
            if let Some((parent, _, _)) = work.last() {
                let p = parent.index();
                low[p] = low[p].min(low[v.index()]);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_cycle() -> (Graph, Vec<NodeId>, EdgeType) {
        // 0 -> 1 -> 2 -> 3, 3 -> 1 (cycle {1,2,3}), 4 isolated
        let mut g = Graph::new();
        let l = g.label("N");
        let t = g.edge_type("E");
        let ns: Vec<_> = (0..5).map(|_| g.add_node(l)).collect();
        g.add_edge(t, ns[0], ns[1]);
        g.add_edge(t, ns[1], ns[2]);
        g.add_edge(t, ns[2], ns[3]);
        g.add_edge(t, ns[3], ns[1]);
        (g, ns, t)
    }

    #[test]
    fn reachability() {
        let (g, ns, t) = chain_with_cycle();
        let r = reachable(&g, ns[0], &[(t, Direction::Outgoing)]);
        assert_eq!(r.len(), 4);
        assert!(!r.contains(&ns[4]));
        let back = reachable(&g, ns[3], &[(t, Direction::Incoming)]);
        assert!(back.contains(&ns[0]));
    }

    #[test]
    fn shortest_path_exists() {
        let (g, ns, t) = chain_with_cycle();
        let p = shortest_path(&g, ns[0], ns[3], &[(t, Direction::Outgoing)]).unwrap();
        assert_eq!(p, vec![ns[0], ns[1], ns[2], ns[3]]);
        assert!(shortest_path(&g, ns[0], ns[4], &[(t, Direction::Outgoing)]).is_none());
    }

    #[test]
    fn degree_statistics() {
        let (g, _, t) = chain_with_cycle();
        let s = degree_stats(&g, t);
        assert_eq!(s.max_out, 1);
        assert_eq!(s.sinks, 1); // only the isolated node 4 has no out-edge
        assert!((s.mean_out - 4.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn scc_finds_cycle() {
        let (g, ns, t) = chain_with_cycle();
        let comps = strongly_connected_components(&g, &[t]);
        let big = comps.iter().find(|c| c.len() == 3).expect("cycle SCC");
        for n in [ns[1], ns[2], ns[3]] {
            assert!(big.contains(&n));
        }
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), 5);
    }

    #[test]
    fn scc_on_empty_graph() {
        let g = Graph::new();
        assert!(strongly_connected_components(&g, &[]).is_empty());
    }
}
