//! A small declarative path-query layer over the property graph — the
//! "researchers can re-use the graph database query syntax" workflow of
//! §II-B, without shipping a full Cypher. A query is a node pattern
//! followed by hop patterns; execution returns all matching paths.
//!
//! This module is the single pattern-matching backend of the repo: the
//! textual TQL layer (`tabby-query`) plans onto these [`NodePattern`]s and
//! [`Query`] hops and executes through [`Query::stream`], the streaming,
//! budget-aware matcher. [`Query::run`] is the eager convenience wrapper.
//!
//! # Examples
//!
//! ```
//! use tabby_graph::{Graph, Value};
//! use tabby_graph::query::{NodePattern, Query};
//!
//! let mut g = Graph::new();
//! let method = g.label("Method");
//! let call = g.edge_type("CALL");
//! let name = g.prop_key("NAME");
//! let a = g.add_node(method);
//! let b = g.add_node(method);
//! g.set_node_prop(a, name, Value::from("readObject"));
//! g.set_node_prop(b, name, Value::from("exec"));
//! g.add_edge(call, a, b);
//!
//! // MATCH (m:Method {NAME: "readObject"})-[:CALL]->(s:Method {NAME: "exec"})
//! let rows = Query::new(NodePattern::label(method).prop(name, Value::from("readObject")))
//!     .out(call, NodePattern::label(method).prop(name, Value::from("exec")))
//!     .run(&g);
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].nodes(), &[a, b]);
//! ```

use std::time::Instant;

use crate::csr::CsrSnapshot;
use crate::store::{Direction, EdgeId, EdgeType, Graph, Label, NodeId, PropKey};
use crate::traversal::Path;
use crate::value::Value;

/// A predicate over one node: optional label, property equalities, and an
/// arbitrary filter.
pub struct NodePattern {
    label: Option<Label>,
    props: Vec<(PropKey, Value)>,
    #[allow(clippy::type_complexity)]
    filter: Option<Box<dyn Fn(&Graph, NodeId) -> bool>>,
}

impl std::fmt::Debug for NodePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePattern")
            .field("label", &self.label)
            .field("props", &self.props)
            .field("has_filter", &self.filter.is_some())
            .finish()
    }
}

impl NodePattern {
    /// Matches any node.
    pub fn any() -> Self {
        Self {
            label: None,
            props: Vec::new(),
            filter: None,
        }
    }

    /// Matches nodes with the given label.
    pub fn label(label: Label) -> Self {
        Self {
            label: Some(label),
            props: Vec::new(),
            filter: None,
        }
    }

    /// Adds a property-equality constraint.
    #[must_use]
    pub fn prop(mut self, key: PropKey, value: Value) -> Self {
        self.props.push((key, value));
        self
    }

    /// Adds an arbitrary filter.
    #[must_use]
    pub fn filter(mut self, f: impl Fn(&Graph, NodeId) -> bool + 'static) -> Self {
        self.filter = Some(Box::new(f));
        self
    }

    /// Tests a node against the pattern.
    pub fn matches(&self, graph: &Graph, node: NodeId) -> bool {
        if let Some(label) = self.label {
            if graph.node_label(node) != label {
                return false;
            }
        }
        for (key, value) in &self.props {
            if graph.node_prop(node, *key) != Some(value) {
                return false;
            }
        }
        if let Some(f) = &self.filter {
            if !f(graph, node) {
                return false;
            }
        }
        true
    }

    /// The property-equality constraint an index could serve, if any:
    /// the first `(key, value)` pair for which `(label, key)` is indexed.
    fn indexed_prop<'a>(&'a self, graph: &Graph) -> Option<(PropKey, &'a Value)> {
        let label = self.label?;
        self.props
            .iter()
            .find(|(key, _)| graph.has_index(label, *key))
            .map(|(key, value)| (*key, value))
    }

    /// Candidate start nodes, using an index when the pattern pins a label
    /// plus an indexed property, otherwise scanning.
    fn candidates(&self, graph: &Graph) -> Vec<NodeId> {
        if let Some(label) = self.label {
            if let Some((key, value)) = self
                .indexed_prop(graph)
                .or_else(|| self.props.first().map(|(k, v)| (*k, v)))
            {
                let hits = graph.nodes_by(label, key, value);
                return hits
                    .into_iter()
                    .filter(|n| self.matches(graph, *n))
                    .collect();
            }
        }
        graph
            .node_ids()
            .filter(|n| self.matches(graph, *n))
            .collect()
    }

    /// An estimate of how many candidate nodes this pattern anchors, used
    /// by planners to pick the cheaper end of a pattern chain. Exact when
    /// an index serves the pattern (index bucket size), otherwise the
    /// label population (one scan) or the node count.
    pub fn estimated_candidates(&self, graph: &Graph) -> usize {
        if let Some(label) = self.label {
            if let Some((key, value)) = self.indexed_prop(graph) {
                return graph.nodes_by(label, key, value).len();
            }
            return graph.nodes_with_label(label).len();
        }
        graph.node_count()
    }

    /// Whether an index can anchor this pattern (label plus an indexed
    /// property equality).
    pub fn is_indexed(&self, graph: &Graph) -> bool {
        self.indexed_prop(graph).is_some()
    }
}

/// One hop of a query: an edge type with a direction and bounded
/// repetition, ending at a node pattern.
#[derive(Debug)]
struct Hop {
    ty: EdgeType,
    direction: Direction,
    min: usize,
    max: usize,
    end: NodePattern,
}

/// A path query: a start pattern plus hops.
#[derive(Debug)]
pub struct Query {
    start: NodePattern,
    hops: Vec<Hop>,
    limit: usize,
}

/// Execution budget for a [`QueryStream`]: caps edge expansions and wall
/// time, mirroring the phase-budget knobs of the chain search. Exceeding
/// either ends the stream early with [`QueryStats::truncated`] set instead
/// of hanging.
#[derive(Debug, Clone, Copy)]
pub struct ExecBudget {
    /// Maximum number of edge expansions before the stream truncates.
    pub max_expansions: usize,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Default for ExecBudget {
    fn default() -> Self {
        Self {
            max_expansions: usize::MAX,
            deadline: None,
        }
    }
}

/// Counters reported by a [`QueryStream`] after (or during) iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Edge expansions performed.
    pub expansions: usize,
    /// True when the budget ended the stream before the match space was
    /// exhausted.
    pub truncated: bool,
}

/// One query match: the concrete path plus, for each pattern node of the
/// query (start node and each hop end, in order), the index into
/// [`Path::nodes`] where that pattern node was bound. Variable-length hops
/// make these positions non-trivial; the anchors let callers project "the
/// node variable of pattern position j" without re-matching.
#[derive(Debug, Clone)]
pub struct Match {
    /// The matched path.
    pub path: Path,
    /// For pattern node `j` (0 = start, `j` = end of hop `j-1`), the index
    /// into `path.nodes()` where it matched. `anchors.len()` equals the
    /// number of hops plus one.
    pub anchors: Vec<usize>,
}

impl Match {
    /// The node bound to pattern position `j`.
    pub fn binding(&self, j: usize) -> NodeId {
        self.path.nodes()[self.anchors[j]]
    }

    /// The single edge traversed by hop `j`, if that hop matched exactly
    /// one edge (`None` for zero-length or multi-step repetitions).
    pub fn hop_edge(&self, j: usize) -> Option<EdgeId> {
        let (from, to) = (self.anchors[j], self.anchors[j + 1]);
        if to == from + 1 {
            Some(self.path.edges()[from])
        } else {
            None
        }
    }
}

/// A depth-first frame: a partial path about to attempt hop `hop_index`
/// after `steps` repetitions of it.
struct Frame {
    path: Path,
    anchors: Vec<usize>,
    hop_index: usize,
    steps: usize,
}

impl Query {
    /// Starts a query at nodes matching `start`.
    pub fn new(start: NodePattern) -> Self {
        Self {
            start,
            hops: Vec::new(),
            limit: usize::MAX,
        }
    }

    /// Follows one outgoing edge of type `ty` to a node matching `end`.
    #[must_use]
    pub fn out(self, ty: EdgeType, end: NodePattern) -> Self {
        self.hop(ty, Direction::Outgoing, 1, 1, end)
    }

    /// Follows one incoming edge of type `ty`.
    #[must_use]
    pub fn in_(self, ty: EdgeType, end: NodePattern) -> Self {
        self.hop(ty, Direction::Incoming, 1, 1, end)
    }

    /// Follows between `min` and `max` edges of type `ty` in `direction`
    /// (Cypher's `-[:T*min..max]->`).
    #[must_use]
    pub fn repeat(
        self,
        ty: EdgeType,
        direction: Direction,
        min: usize,
        max: usize,
        end: NodePattern,
    ) -> Self {
        self.hop(ty, direction, min, max, end)
    }

    fn hop(
        mut self,
        ty: EdgeType,
        direction: Direction,
        min: usize,
        max: usize,
        end: NodePattern,
    ) -> Self {
        self.hops.push(Hop {
            ty,
            direction,
            min,
            max,
            end,
        });
        self
    }

    /// Caps the number of returned paths.
    #[must_use]
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    /// The number of pattern nodes (start plus one per hop).
    pub fn pattern_len(&self) -> usize {
        self.hops.len() + 1
    }

    /// The edge types this query traverses, deduplicated in hop order —
    /// the set a [`CsrSnapshot`] must cover to serve the whole query.
    pub fn edge_types(&self) -> Vec<EdgeType> {
        let mut types = Vec::new();
        for hop in &self.hops {
            if !types.contains(&hop.ty) {
                types.push(hop.ty);
            }
        }
        types
    }

    /// Executes the query eagerly, returning matching paths (nodes may
    /// repeat only across, not within, a repetition hop).
    pub fn run(&self, graph: &Graph) -> Vec<Path> {
        self.stream(graph, ExecBudget::default())
            .map(|m| m.path)
            .collect()
    }

    /// Streams matches lazily under `budget`, expanding adjacency through
    /// the store.
    pub fn stream<'q, 'g>(&'q self, graph: &'g Graph, budget: ExecBudget) -> QueryStream<'q, 'g> {
        self.stream_with(graph, budget, None)
    }

    /// Streams matches lazily under `budget`, expanding adjacency through
    /// `csr` for every hop whose edge type the snapshot covers (falling
    /// back to the store otherwise). CSR entry order matches
    /// [`Graph::edges_of`], so results and their order are identical with
    /// or without a snapshot.
    pub fn stream_with<'q, 'g>(
        &'q self,
        graph: &'g Graph,
        budget: ExecBudget,
        csr: Option<&'g CsrSnapshot>,
    ) -> QueryStream<'q, 'g> {
        let layers = self
            .hops
            .iter()
            .map(|h| csr.and_then(|c| c.layer_of(h.ty)))
            .collect();
        let mut stack: Vec<Frame> = self
            .start
            .candidates(graph)
            .into_iter()
            .map(|n| Frame {
                path: Path::start(n),
                anchors: vec![0],
                hop_index: 0,
                steps: 0,
            })
            .collect();
        // LIFO stack: reverse so the first candidate is explored first,
        // preserving the historical depth-first result order.
        stack.reverse();
        QueryStream {
            query: self,
            graph,
            csr,
            layers,
            stack,
            emitted: 0,
            stats: QueryStats::default(),
            budget,
        }
    }
}

/// A lazy, budget-aware stream of query [`Match`]es. Produced by
/// [`Query::stream`]; iteration order is the same depth-first order
/// [`Query::run`] returns.
pub struct QueryStream<'q, 'g> {
    query: &'q Query,
    graph: &'g Graph,
    csr: Option<&'g CsrSnapshot>,
    /// Per-hop CSR layer index, when the snapshot covers that hop's type.
    layers: Vec<Option<usize>>,
    stack: Vec<Frame>,
    emitted: usize,
    stats: QueryStats,
    budget: ExecBudget,
}

/// How many expansions happen between deadline checks.
const DEADLINE_STRIDE: usize = 256;

impl QueryStream<'_, '_> {
    /// Execution counters so far; final once the iterator returns `None`.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// True when the budget ended the stream early.
    pub fn truncated(&self) -> bool {
        self.stats.truncated
    }

    fn deadline_passed(&self) -> bool {
        match self.budget.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    fn out_of_budget(&mut self) -> bool {
        if self.stats.expansions >= self.budget.max_expansions {
            return true;
        }
        self.stats.expansions % DEADLINE_STRIDE == 0 && self.deadline_passed()
    }

    /// Expands one frame, pushing its children so they pop in the same
    /// order the historical recursive matcher visited them: first each
    /// edge continuation (in adjacency order), preceded on the stack by
    /// the accept-here continuation so acceptance is explored first.
    fn expand(&mut self, frame: Frame) -> bool {
        let hop = &self.query.hops[frame.hop_index];
        let end = frame.path.end();
        if frame.steps < hop.max {
            // Children must pop in adjacency order after the accept
            // continuation, so collect then push in reverse.
            let next: Vec<(EdgeId, NodeId)> = match (self.layers[frame.hop_index], self.csr) {
                (Some(layer), Some(csr)) => csr
                    .neighbors(layer, end, hop.direction)
                    .map(|(e, n, _)| (e, n))
                    .collect(),
                _ => self
                    .graph
                    .edges_of(end, hop.direction, Some(hop.ty))
                    .into_iter()
                    .map(|e| (e, self.graph.other_node(e, end)))
                    .collect(),
            };
            for (e, n) in next.into_iter().rev() {
                if frame.path.contains(n) {
                    continue;
                }
                self.stats.expansions += 1;
                if self.out_of_budget() {
                    self.stats.truncated = true;
                    self.stack.clear();
                    return false;
                }
                self.stack.push(Frame {
                    path: frame.path.extend(e, n),
                    anchors: frame.anchors.clone(),
                    hop_index: frame.hop_index,
                    steps: frame.steps + 1,
                });
            }
        }
        if frame.steps >= hop.min && hop.end.matches(self.graph, end) {
            let mut anchors = frame.anchors;
            anchors.push(frame.path.nodes().len() - 1);
            self.stack.push(Frame {
                path: frame.path,
                anchors,
                hop_index: frame.hop_index + 1,
                steps: 0,
            });
        }
        true
    }
}

impl Iterator for QueryStream<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.emitted >= self.query.limit {
            self.stack.clear();
            return None;
        }
        // Check the deadline once per emitted row here; long intra-row
        // searches are covered by the stride check in `out_of_budget`.
        if !self.stack.is_empty() && self.deadline_passed() {
            self.stats.truncated = true;
            self.stack.clear();
            return None;
        }
        while let Some(frame) = self.stack.pop() {
            if frame.hop_index == self.query.hops.len() {
                self.emitted += 1;
                let item = Match {
                    path: frame.path,
                    anchors: frame.anchors,
                };
                if self.emitted >= self.query.limit {
                    self.stack.clear();
                }
                return Some(item);
            }
            if !self.expand(frame) {
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -CALL-> b -CALL-> c ; a -ALIAS-> c
    fn fixture() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let l = g.label("Method");
        let call = g.edge_type("CALL");
        let alias = g.edge_type("ALIAS");
        let name = g.prop_key("NAME");
        g.create_index(l, name);
        let a = g.add_node(l);
        let b = g.add_node(l);
        let c = g.add_node(l);
        for (n, v) in [(a, "a"), (b, "b"), (c, "c")] {
            g.set_node_prop(n, name, Value::from(v));
        }
        g.add_edge(call, a, b);
        g.add_edge(call, b, c);
        g.add_edge(alias, a, c);
        (g, [a, b, c])
    }

    #[test]
    fn single_hop_match() {
        let (g, [a, b, _]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .out(call, NodePattern::any())
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].nodes(), &[a, b]);
    }

    #[test]
    fn repetition_hop_finds_all_depths() {
        let (g, [a, _, c]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        // a -[:CALL*1..3]-> (NAME=c)
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .repeat(
                call,
                Direction::Outgoing,
                1,
                3,
                NodePattern::label(l).prop(name, Value::from("c")),
            )
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].first(), a);
        assert_eq!(rows[0].end(), c);
        assert_eq!(rows[0].len(), 2);
    }

    #[test]
    fn zero_repetition_matches_in_place() {
        let (g, [a, ..]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .repeat(call, Direction::Outgoing, 0, 2, NodePattern::any())
            .run(&g);
        // depth 0 (a), depth 1 (a,b), depth 2 (a,b,c)
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|p| p.nodes() == [a]));
    }

    #[test]
    fn incoming_hop() {
        let (g, [_, b, c]) = fixture();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let l = g.get_label("Method").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("c")))
            .in_(call, NodePattern::any())
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].nodes(), &[c, b]);
    }

    #[test]
    fn filter_and_limit() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(
            NodePattern::label(l)
                .filter(move |g, n| g.node_prop(n, name).and_then(|v| v.as_str()) != Some("b")),
        )
        .limit(1)
        .run(&g);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn mixed_edge_types() {
        let (g, [a, _, c]) = fixture();
        let l = g.get_label("Method").unwrap();
        let alias = g.get_edge_type("ALIAS").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .out(alias, NodePattern::any())
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].nodes(), &[a, c]);
    }

    #[test]
    fn stream_matches_run_order() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let q = Query::new(NodePattern::label(l)).repeat(
            call,
            Direction::Outgoing,
            0,
            2,
            NodePattern::any(),
        );
        let eager: Vec<_> = q.run(&g);
        let lazy: Vec<_> = q
            .stream(&g, ExecBudget::default())
            .map(|m| m.path)
            .collect();
        assert_eq!(eager.len(), lazy.len());
        for (a, b) in eager.iter().zip(&lazy) {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn anchors_bind_pattern_nodes() {
        let (g, [a, _, c]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        // (a)-[:CALL*1..3]->(c)-[:CALL*0..1]->(any)
        let q = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .repeat(
                call,
                Direction::Outgoing,
                1,
                3,
                NodePattern::label(l).prop(name, Value::from("c")),
            )
            .repeat(call, Direction::Outgoing, 0, 1, NodePattern::any());
        let matches: Vec<_> = q.stream(&g, ExecBudget::default()).collect();
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.anchors.len(), 3);
        assert_eq!(m.binding(0), a);
        assert_eq!(m.binding(1), c);
        assert_eq!(m.binding(2), c);
    }

    #[test]
    fn hop_edge_binds_single_step_hops() {
        let (g, [a, b, _]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let q = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .out(call, NodePattern::any());
        let m = q.stream(&g, ExecBudget::default()).next().unwrap();
        let e = m.hop_edge(0).unwrap();
        assert_eq!(g.other_node(e, a), b);
        // Zero-length repetition binds no edge.
        let q0 = Query::new(NodePattern::label(l).prop(name, Value::from("a"))).repeat(
            call,
            Direction::Outgoing,
            0,
            0,
            NodePattern::any(),
        );
        let m0 = q0.stream(&g, ExecBudget::default()).next().unwrap();
        assert_eq!(m0.hop_edge(0), None);
    }

    #[test]
    fn expansion_budget_truncates() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let q = Query::new(NodePattern::label(l)).repeat(
            call,
            Direction::Outgoing,
            0,
            2,
            NodePattern::any(),
        );
        let mut stream = q.stream(
            &g,
            ExecBudget {
                max_expansions: 1,
                deadline: None,
            },
        );
        let got: Vec<_> = stream.by_ref().collect();
        assert!(stream.truncated());
        assert!(stream.stats().expansions <= 1);
        // Unbudgeted, the same query yields strictly more matches.
        let full: Vec<_> = q.stream(&g, ExecBudget::default()).collect();
        assert!(got.len() < full.len());
    }

    #[test]
    fn deadline_budget_truncates() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let q = Query::new(NodePattern::label(l)).repeat(
            call,
            Direction::Outgoing,
            0,
            2,
            NodePattern::any(),
        );
        let mut stream = q.stream(
            &g,
            ExecBudget {
                max_expansions: usize::MAX,
                deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            },
        );
        let _drained: Vec<_> = stream.by_ref().collect();
        assert!(stream.truncated());
    }

    #[test]
    fn csr_stream_is_byte_identical() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let alias = g.get_edge_type("ALIAS").unwrap();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], None).unwrap();
        let q = Query::new(NodePattern::label(l))
            .repeat(call, Direction::Outgoing, 0, 2, NodePattern::any())
            .repeat(alias, Direction::Incoming, 0, 1, NodePattern::any());
        let plain: Vec<_> = q.stream(&g, ExecBudget::default()).collect();
        let frozen: Vec<_> = q
            .stream_with(&g, ExecBudget::default(), Some(&csr))
            .collect();
        assert_eq!(plain.len(), frozen.len());
        for (a, b) in plain.iter().zip(&frozen) {
            assert_eq!(a.path.nodes(), b.path.nodes());
            assert_eq!(a.path.edges(), b.path.edges());
            assert_eq!(a.anchors, b.anchors);
        }
    }

    #[test]
    fn estimated_candidates_prefers_index() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let indexed = NodePattern::label(l).prop(name, Value::from("a"));
        assert!(indexed.is_indexed(&g));
        assert_eq!(indexed.estimated_candidates(&g), 1);
        assert_eq!(NodePattern::label(l).estimated_candidates(&g), 3);
        assert_eq!(NodePattern::any().estimated_candidates(&g), 3);
    }
}
