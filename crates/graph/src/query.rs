//! A small declarative path-query layer over the property graph — the
//! "researchers can re-use the graph database query syntax" workflow of
//! §II-B, without shipping a full Cypher. A query is a node pattern
//! followed by hop patterns; execution returns all matching paths.
//!
//! # Examples
//!
//! ```
//! use tabby_graph::{Graph, Value};
//! use tabby_graph::query::{NodePattern, Query};
//!
//! let mut g = Graph::new();
//! let method = g.label("Method");
//! let call = g.edge_type("CALL");
//! let name = g.prop_key("NAME");
//! let a = g.add_node(method);
//! let b = g.add_node(method);
//! g.set_node_prop(a, name, Value::from("readObject"));
//! g.set_node_prop(b, name, Value::from("exec"));
//! g.add_edge(call, a, b);
//!
//! // MATCH (m:Method {NAME: "readObject"})-[:CALL]->(s:Method {NAME: "exec"})
//! let rows = Query::new(NodePattern::label(method).prop(name, Value::from("readObject")))
//!     .out(call, NodePattern::label(method).prop(name, Value::from("exec")))
//!     .run(&g);
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].nodes(), &[a, b]);
//! ```

use crate::store::{Direction, EdgeType, Graph, Label, NodeId, PropKey};
use crate::traversal::Path;
use crate::value::Value;

/// A predicate over one node: optional label, property equalities, and an
/// arbitrary filter.
pub struct NodePattern {
    label: Option<Label>,
    props: Vec<(PropKey, Value)>,
    #[allow(clippy::type_complexity)]
    filter: Option<Box<dyn Fn(&Graph, NodeId) -> bool>>,
}

impl std::fmt::Debug for NodePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePattern")
            .field("label", &self.label)
            .field("props", &self.props)
            .field("has_filter", &self.filter.is_some())
            .finish()
    }
}

impl NodePattern {
    /// Matches any node.
    pub fn any() -> Self {
        Self {
            label: None,
            props: Vec::new(),
            filter: None,
        }
    }

    /// Matches nodes with the given label.
    pub fn label(label: Label) -> Self {
        Self {
            label: Some(label),
            props: Vec::new(),
            filter: None,
        }
    }

    /// Adds a property-equality constraint.
    #[must_use]
    pub fn prop(mut self, key: PropKey, value: Value) -> Self {
        self.props.push((key, value));
        self
    }

    /// Adds an arbitrary filter.
    #[must_use]
    pub fn filter(mut self, f: impl Fn(&Graph, NodeId) -> bool + 'static) -> Self {
        self.filter = Some(Box::new(f));
        self
    }

    /// Tests a node against the pattern.
    pub fn matches(&self, graph: &Graph, node: NodeId) -> bool {
        if let Some(label) = self.label {
            if graph.node_label(node) != label {
                return false;
            }
        }
        for (key, value) in &self.props {
            if graph.node_prop(node, *key) != Some(value) {
                return false;
            }
        }
        if let Some(f) = &self.filter {
            if !f(graph, node) {
                return false;
            }
        }
        true
    }

    /// Candidate start nodes, using an index when the pattern pins a label
    /// plus an indexed property, otherwise scanning.
    fn candidates(&self, graph: &Graph) -> Vec<NodeId> {
        if let (Some(label), Some((key, value))) = (self.label, self.props.first()) {
            let hits = graph.nodes_by(label, *key, value);
            return hits
                .into_iter()
                .filter(|n| self.matches(graph, *n))
                .collect();
        }
        graph
            .node_ids()
            .filter(|n| self.matches(graph, *n))
            .collect()
    }
}

/// One hop of a query: an edge type with a direction and bounded
/// repetition, ending at a node pattern.
#[derive(Debug)]
struct Hop {
    ty: EdgeType,
    direction: Direction,
    min: usize,
    max: usize,
    end: NodePattern,
}

/// A path query: a start pattern plus hops.
#[derive(Debug)]
pub struct Query {
    start: NodePattern,
    hops: Vec<Hop>,
    limit: usize,
}

impl Query {
    /// Starts a query at nodes matching `start`.
    pub fn new(start: NodePattern) -> Self {
        Self {
            start,
            hops: Vec::new(),
            limit: usize::MAX,
        }
    }

    /// Follows one outgoing edge of type `ty` to a node matching `end`.
    #[must_use]
    pub fn out(self, ty: EdgeType, end: NodePattern) -> Self {
        self.hop(ty, Direction::Outgoing, 1, 1, end)
    }

    /// Follows one incoming edge of type `ty`.
    #[must_use]
    pub fn in_(self, ty: EdgeType, end: NodePattern) -> Self {
        self.hop(ty, Direction::Incoming, 1, 1, end)
    }

    /// Follows between `min` and `max` edges of type `ty` in `direction`
    /// (Cypher's `-[:T*min..max]->`).
    #[must_use]
    pub fn repeat(
        self,
        ty: EdgeType,
        direction: Direction,
        min: usize,
        max: usize,
        end: NodePattern,
    ) -> Self {
        self.hop(ty, direction, min, max, end)
    }

    fn hop(
        mut self,
        ty: EdgeType,
        direction: Direction,
        min: usize,
        max: usize,
        end: NodePattern,
    ) -> Self {
        self.hops.push(Hop {
            ty,
            direction,
            min,
            max,
            end,
        });
        self
    }

    /// Caps the number of returned paths.
    #[must_use]
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    /// Executes the query, returning matching paths (nodes may repeat only
    /// across, not within, a repetition hop).
    pub fn run(&self, graph: &Graph) -> Vec<Path> {
        let mut results = Vec::new();
        for start in self.start.candidates(graph) {
            self.extend(graph, Path::start(start), 0, &mut results);
            if results.len() >= self.limit {
                results.truncate(self.limit);
                break;
            }
        }
        results
    }

    fn extend(&self, graph: &Graph, path: Path, hop_index: usize, out: &mut Vec<Path>) {
        if out.len() >= self.limit {
            return;
        }
        let Some(hop) = self.hops.get(hop_index) else {
            out.push(path);
            return;
        };
        // Repetition: explore 0..=max steps, accepting the end pattern at
        // any count ≥ min.
        self.expand_hop(graph, path, hop, 0, hop_index, out);
    }

    fn expand_hop(
        &self,
        graph: &Graph,
        path: Path,
        hop: &Hop,
        steps: usize,
        hop_index: usize,
        out: &mut Vec<Path>,
    ) {
        if steps >= hop.min && hop.end.matches(graph, path.end()) {
            self.extend(graph, path.clone(), hop_index + 1, out);
        }
        if steps >= hop.max {
            return;
        }
        for e in graph.edges_of(path.end(), hop.direction, Some(hop.ty)) {
            let next = graph.other_node(e, path.end());
            if !path.contains(next) {
                self.expand_hop(graph, path.extend(e, next), hop, steps + 1, hop_index, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -CALL-> b -CALL-> c ; a -ALIAS-> c
    fn fixture() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let l = g.label("Method");
        let call = g.edge_type("CALL");
        let alias = g.edge_type("ALIAS");
        let name = g.prop_key("NAME");
        g.create_index(l, name);
        let a = g.add_node(l);
        let b = g.add_node(l);
        let c = g.add_node(l);
        for (n, v) in [(a, "a"), (b, "b"), (c, "c")] {
            g.set_node_prop(n, name, Value::from(v));
        }
        g.add_edge(call, a, b);
        g.add_edge(call, b, c);
        g.add_edge(alias, a, c);
        (g, [a, b, c])
    }

    #[test]
    fn single_hop_match() {
        let (g, [a, b, _]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .out(call, NodePattern::any())
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].nodes(), &[a, b]);
    }

    #[test]
    fn repetition_hop_finds_all_depths() {
        let (g, [a, _, c]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        // a -[:CALL*1..3]-> (NAME=c)
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .repeat(
                call,
                Direction::Outgoing,
                1,
                3,
                NodePattern::label(l).prop(name, Value::from("c")),
            )
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].first(), a);
        assert_eq!(rows[0].end(), c);
        assert_eq!(rows[0].len(), 2);
    }

    #[test]
    fn zero_repetition_matches_in_place() {
        let (g, [a, ..]) = fixture();
        let l = g.get_label("Method").unwrap();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .repeat(call, Direction::Outgoing, 0, 2, NodePattern::any())
            .run(&g);
        // depth 0 (a), depth 1 (a,b), depth 2 (a,b,c)
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|p| p.nodes() == [a]));
    }

    #[test]
    fn incoming_hop() {
        let (g, [_, b, c]) = fixture();
        let call = g.get_edge_type("CALL").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let l = g.get_label("Method").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("c")))
            .in_(call, NodePattern::any())
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].nodes(), &[c, b]);
    }

    #[test]
    fn filter_and_limit() {
        let (g, _) = fixture();
        let l = g.get_label("Method").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(
            NodePattern::label(l)
                .filter(move |g, n| g.node_prop(n, name).and_then(|v| v.as_str()) != Some("b")),
        )
        .limit(1)
        .run(&g);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn mixed_edge_types() {
        let (g, [a, _, c]) = fixture();
        let l = g.get_label("Method").unwrap();
        let alias = g.get_edge_type("ALIAS").unwrap();
        let name = g.get_prop_key("NAME").unwrap();
        let rows = Query::new(NodePattern::label(l).prop(name, Value::from("a")))
            .out(alias, NodePattern::any())
            .run(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].nodes(), &[a, c]);
    }
}
