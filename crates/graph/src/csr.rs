//! A frozen CSR (compressed sparse row) snapshot of a graph, for search
//! hot loops.
//!
//! The mutable [`Graph`] is the construction and serialization format: its
//! per-node edge lists are unfiltered (`edges_of` allocates a fresh `Vec`
//! per call to filter by type) and its edge properties live in per-edge
//! `BTreeMap`s (every Polluted_Position read re-decodes a [`Value`]).
//! Neither matters during CPG construction, but the sink-backward search
//! reads the same adjacency millions of times.
//!
//! [`CsrSnapshot::freeze`] derives, once per search, a read-only index:
//! per-edge-type forward and reverse adjacency arrays in CSR layout, with
//! the payload property (Polluted_Position, for Tabby) pre-decoded into a
//! shared arena. Lookups are a slice borrow — no allocation, no property
//! decoding, no type filtering. Entry order is exactly the order
//! [`Graph::edges_of`] returns ([`Graph::add_edge`] appends edge ids in
//! increasing order, and the snapshot is built by one pass over
//! [`Graph::edge_ids`]), so a traversal ported from `edges_of` onto the
//! snapshot expands in the identical order — byte-identical results.
//!
//! A snapshot has two backings behind one API:
//!
//! - **Owned** — built by [`CsrSnapshot::freeze`] from a live [`Graph`];
//!   the arrays are heap `Vec`s.
//! - **Mapped** — borrowed from an on-disk flat CPG artifact opened by
//!   [`crate::flat::FlatCpg`]; the arrays are slices straight into the
//!   memory mapping (kept alive by an `Arc`), so opening a cached graph
//!   and searching it involves no deserialization at all.
//!
//! Both backings yield entries in the same order from the same graph, so
//! search results are byte-identical regardless of which one served them.

use crate::store::{Direction, EdgeId, EdgeType, Graph, NodeId, PropKey};
use crate::value::Value;

/// An error surfaced while freezing CSR adjacency, instead of a panic:
/// a graph too large for the u32-indexed CSR layout degrades (callers
/// fall back to store-backed expansion or report a truncated scan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// One layer holds more than `u32::MAX` adjacency entries.
    EdgeOverflow {
        /// The entry count that did not fit.
        entries: usize,
    },
    /// The decoded payload arena holds more than `u32::MAX` words.
    PayloadOverflow {
        /// The word count that did not fit.
        words: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EdgeOverflow { entries } => write!(
                f,
                "CSR layer has {entries} adjacency entries, more than the \
                 u32 index space"
            ),
            GraphError::PayloadOverflow { words } => write!(
                f,
                "CSR payload arena has {words} words, more than the u32 \
                 index space"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// One adjacency entry: the edge, the node at its far end, and the span of
/// its pre-decoded payload in the snapshot's arena.
///
/// The layout is part of the on-disk flat CPG format: 16 bytes, four
/// little-endian `u32`s, no padding, every bit pattern valid — so a mapped
/// file region can be reinterpreted as `&[Entry]` without copying.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    pub(crate) edge: u32,
    pub(crate) node: u32,
    pub(crate) start: u32,
    pub(crate) len: u32,
}

// The flat format casts mapped bytes to `&[Entry]`; these hold that cast
// sound (no padding, 4-byte alignment satisfied by the 8-aligned sections).
const _: () = assert!(std::mem::size_of::<Entry>() == 16);
const _: () = assert!(std::mem::align_of::<Entry>() == 4);

/// CSR adjacency for one edge type in one direction.
#[derive(Debug, Clone)]
pub(crate) struct CsrDir {
    /// `offsets[i]..offsets[i + 1]` indexes `entries` for node *i*;
    /// `len == node_count + 1`.
    pub(crate) offsets: Vec<u32>,
    pub(crate) entries: Vec<Entry>,
}

impl CsrDir {
    fn flatten(per_node: Vec<Vec<Entry>>) -> Result<Self, GraphError> {
        let mut offsets = Vec::with_capacity(per_node.len() + 1);
        let mut entries = Vec::new();
        offsets.push(0);
        for list in per_node {
            entries.extend(list);
            let end = u32::try_from(entries.len()).map_err(|_| GraphError::EdgeOverflow {
                entries: entries.len(),
            })?;
            offsets.push(end);
        }
        Ok(CsrDir { offsets, entries })
    }
}

/// Forward (outgoing) and reverse (incoming) adjacency for one edge type.
#[derive(Debug, Clone)]
pub(crate) struct CsrLayer {
    pub(crate) fwd: CsrDir,
    pub(crate) rev: CsrDir,
}

/// Where a snapshot's arrays live.
#[derive(Debug, Clone)]
enum Backing {
    /// Heap arrays built by [`CsrSnapshot::freeze`].
    Owned {
        layers: Vec<CsrLayer>,
        /// Arena of decoded payload lists; entries carry `(start, len)`
        /// spans.
        payload: Vec<i64>,
    },
    /// Slices into a memory-mapped flat CPG artifact.
    Mapped(crate::flat::MappedCsr),
}

/// Shared slice-window logic: the adjacency of one node in one direction.
#[inline]
fn slice_of<'a>(offsets: &'a [u32], entries: &'a [Entry], node: NodeId) -> &'a [Entry] {
    let i = node.index();
    if i + 1 >= offsets.len() {
        return &[];
    }
    &entries[offsets[i] as usize..offsets[i + 1] as usize]
}

/// A frozen per-edge-type adjacency snapshot of a [`Graph`] with
/// pre-decoded integer-list edge payloads. See the module docs.
#[derive(Debug, Clone)]
pub struct CsrSnapshot {
    types: Vec<EdgeType>,
    backing: Backing,
}

impl CsrSnapshot {
    /// Builds the snapshot for the given edge `types`. When `payload_key`
    /// is set, each edge's value under that key is decoded with
    /// [`Value::as_int_list`] into the arena; edges without the property
    /// (or with a non-int-list value) get an empty slice — the same view
    /// `edge_prop(..).and_then(as_int_list).unwrap_or(&[])` produces.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOverflow`] / [`GraphError::PayloadOverflow`] when
    /// a layer or the payload arena outgrows the u32 index space.
    pub fn freeze(
        graph: &Graph,
        types: &[EdgeType],
        payload_key: Option<PropKey>,
    ) -> Result<Self, GraphError> {
        let n = graph.node_count();
        let mut payload: Vec<i64> = Vec::new();
        let mut layers = Vec::with_capacity(types.len());
        for &ty in types {
            let mut fwd: Vec<Vec<Entry>> = vec![Vec::new(); n];
            let mut rev: Vec<Vec<Entry>> = vec![Vec::new(); n];
            for e in graph.edge_ids() {
                if graph.edge_ty(e) != ty {
                    continue;
                }
                let (from, to) = graph.endpoints(e);
                let span = match payload_key
                    .and_then(|k| graph.edge_prop(e, k))
                    .and_then(Value::as_int_list)
                {
                    Some(list) => {
                        let start = u32::try_from(payload.len()).map_err(|_| {
                            GraphError::PayloadOverflow {
                                words: payload.len(),
                            }
                        })?;
                        payload.extend_from_slice(list);
                        let len = u32::try_from(list.len())
                            .map_err(|_| GraphError::PayloadOverflow { words: list.len() })?;
                        (start, len)
                    }
                    None => (0, 0),
                };
                fwd[from.index()].push(Entry {
                    edge: e.0,
                    node: to.0,
                    start: span.0,
                    len: span.1,
                });
                rev[to.index()].push(Entry {
                    edge: e.0,
                    node: from.0,
                    start: span.0,
                    len: span.1,
                });
            }
            layers.push(CsrLayer {
                fwd: CsrDir::flatten(fwd)?,
                rev: CsrDir::flatten(rev)?,
            });
        }
        Ok(CsrSnapshot {
            types: types.to_vec(),
            backing: Backing::Owned { layers, payload },
        })
    }

    /// Wraps mapped flat-file arrays as a snapshot (zero-copy open path);
    /// called by [`crate::flat::FlatCpg::snapshot`].
    pub(crate) fn from_mapped(types: Vec<EdgeType>, mapped: crate::flat::MappedCsr) -> Self {
        CsrSnapshot {
            types,
            backing: Backing::Mapped(mapped),
        }
    }

    /// `true` when the arrays live in a memory-mapped artifact rather than
    /// on the heap.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// `(offsets, entries)` of one layer in one direction, whichever
    /// backing serves them.
    #[inline]
    pub(crate) fn dir_raw(&self, layer: usize, forward: bool) -> (&[u32], &[Entry]) {
        match &self.backing {
            Backing::Owned { layers, .. } => {
                let d = if forward {
                    &layers[layer].fwd
                } else {
                    &layers[layer].rev
                };
                (&d.offsets, &d.entries)
            }
            Backing::Mapped(m) => m.dir_raw(layer, forward),
        }
    }

    /// The shared decoded-payload arena.
    #[inline]
    pub(crate) fn payload_arena(&self) -> &[i64] {
        match &self.backing {
            Backing::Owned { payload, .. } => payload,
            Backing::Mapped(m) => m.payload_arena(),
        }
    }

    /// The layer index for an edge type passed to [`CsrSnapshot::freeze`]
    /// (its position in the `types` slice), or `None` if it was not frozen.
    pub fn layer_of(&self, ty: EdgeType) -> Option<usize> {
        self.types.iter().position(|&t| t == ty)
    }

    /// Adjacent `(edge, neighbor, payload)` triples of `node` over the
    /// given layer, in the exact order [`Graph::edges_of`] yields for the
    /// same `(node, direction, type)` query: outgoing entries in edge
    /// insertion order, then (for [`Direction::Both`]) incoming entries in
    /// edge insertion order.
    pub fn neighbors(
        &self,
        layer: usize,
        node: NodeId,
        direction: Direction,
    ) -> impl Iterator<Item = (EdgeId, NodeId, &[i64])> + '_ {
        let (fo, fe) = self.dir_raw(layer, true);
        let (ro, re) = self.dir_raw(layer, false);
        let payload = self.payload_arena();
        let fwd: &[Entry] = match direction {
            Direction::Outgoing | Direction::Both => slice_of(fo, fe, node),
            Direction::Incoming => &[],
        };
        let rev: &[Entry] = match direction {
            Direction::Incoming | Direction::Both => slice_of(ro, re, node),
            Direction::Outgoing => &[],
        };
        fwd.iter().chain(rev.iter()).map(move |e| {
            (
                EdgeId(e.edge),
                NodeId(e.node),
                &payload[e.start as usize..(e.start as usize + e.len as usize)],
            )
        })
    }

    /// Total adjacency entries in one layer (each edge appears once
    /// forward and once reverse).
    pub fn layer_len(&self, layer: usize) -> usize {
        self.dir_raw(layer, true).1.len()
    }

    /// The edge types this snapshot froze, in layer order.
    pub(crate) fn frozen_types(&self) -> &[EdgeType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small multigraph with interleaved CALL/ALIAS edges, a PP payload
    /// on some CALL edges, and a self-loop.
    fn sample() -> (Graph, EdgeType, EdgeType, PropKey, Vec<NodeId>) {
        let mut g = Graph::new();
        let l = g.label("Method");
        let call = g.edge_type("CALL");
        let alias = g.edge_type("ALIAS");
        let pp = g.prop_key("PP");
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_node(l)).collect();
        let e0 = g.add_edge(call, nodes[1], nodes[0]);
        g.set_edge_prop(e0, pp, Value::IntList(vec![-1, 1]));
        g.add_edge(alias, nodes[2], nodes[0]);
        let e2 = g.add_edge(call, nodes[2], nodes[0]);
        g.set_edge_prop(e2, pp, Value::IntList(vec![0]));
        g.add_edge(call, nodes[3], nodes[2]); // no payload
        g.add_edge(alias, nodes[0], nodes[3]);
        g.add_edge(call, nodes[0], nodes[0]); // self-loop
        (g, call, alias, pp, nodes)
    }

    #[test]
    fn entry_order_matches_edges_of() {
        let (g, call, alias, pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], Some(pp)).unwrap();
        let cl = csr.layer_of(call).unwrap();
        let al = csr.layer_of(alias).unwrap();
        for &n in &nodes {
            for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                for (ty, layer) in [(call, cl), (alias, al)] {
                    let want: Vec<EdgeId> = g.edges_of(n, dir, Some(ty));
                    let got: Vec<EdgeId> = csr.neighbors(layer, n, dir).map(|(e, ..)| e).collect();
                    assert_eq!(got, want, "node {n:?} dir {dir:?} ty {ty:?}");
                }
            }
        }
    }

    #[test]
    fn neighbors_match_other_node() {
        let (g, call, alias, pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], Some(pp)).unwrap();
        for &n in &nodes {
            for layer in [0usize, 1] {
                for (e, nb, _) in csr.neighbors(layer, n, Direction::Both) {
                    assert_eq!(nb, g.other_node(e, n));
                }
            }
        }
    }

    #[test]
    fn payload_matches_decoded_edge_prop() {
        let (g, call, alias, pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], Some(pp)).unwrap();
        let cl = csr.layer_of(call).unwrap();
        for &n in &nodes {
            for (e, _, payload) in csr.neighbors(cl, n, Direction::Both) {
                let want: &[i64] = g
                    .edge_prop(e, pp)
                    .and_then(Value::as_int_list)
                    .unwrap_or(&[]);
                assert_eq!(payload, want, "edge {e:?}");
            }
        }
    }

    #[test]
    fn absent_payload_key_yields_empty_slices() {
        let (g, call, alias, _pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], None).unwrap();
        for &n in &nodes {
            for (_, _, payload) in csr.neighbors(0, n, Direction::Both) {
                assert!(payload.is_empty());
            }
        }
    }

    #[test]
    fn unknown_type_has_no_layer() {
        let (g, call, _alias, _pp, _nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call], None).unwrap();
        assert_eq!(csr.layer_of(call), Some(0));
        assert_eq!(csr.layer_of(EdgeType(99)), None);
        assert_eq!(csr.layer_len(0), 5);
    }

    #[test]
    fn out_of_range_node_is_empty() {
        let (g, call, _alias, _pp, _nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call], None).unwrap();
        assert_eq!(csr.neighbors(0, NodeId(1000), Direction::Both).count(), 0);
    }
}
