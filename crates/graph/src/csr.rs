//! A frozen CSR (compressed sparse row) snapshot of a graph, for search
//! hot loops.
//!
//! The mutable [`Graph`] is the construction and serialization format: its
//! per-node edge lists are unfiltered (`edges_of` allocates a fresh `Vec`
//! per call to filter by type) and its edge properties live in per-edge
//! `BTreeMap`s (every Polluted_Position read re-decodes a [`Value`]).
//! Neither matters during CPG construction, but the sink-backward search
//! reads the same adjacency millions of times.
//!
//! [`CsrSnapshot::freeze`] derives, once per search, a read-only index:
//! per-edge-type forward and reverse adjacency arrays in CSR layout, with
//! the payload property (Polluted_Position, for Tabby) pre-decoded into a
//! shared arena. Lookups are a slice borrow — no allocation, no property
//! decoding, no type filtering. Entry order is exactly the order
//! [`Graph::edges_of`] returns ([`Graph::add_edge`] appends edge ids in
//! increasing order, and the snapshot is built by one pass over
//! [`Graph::edge_ids`]), so a traversal ported from `edges_of` onto the
//! snapshot expands in the identical order — byte-identical results.
//!
//! The snapshot borrows nothing and is never cached or serialized; it is
//! rebuilt from the graph for every search that wants one.

use crate::store::{Direction, EdgeId, EdgeType, Graph, NodeId, PropKey};
use crate::value::Value;

/// One adjacency entry: the edge, the node at its far end, and the span of
/// its pre-decoded payload in the snapshot's arena.
type Entry = (EdgeId, NodeId, u32, u32);

/// CSR adjacency for one edge type in one direction.
#[derive(Debug, Clone)]
struct CsrDir {
    /// `offsets[i]..offsets[i + 1]` indexes `entries` for node *i*;
    /// `len == node_count + 1`.
    offsets: Vec<u32>,
    entries: Vec<Entry>,
}

impl CsrDir {
    fn flatten(per_node: Vec<Vec<Entry>>) -> Self {
        let mut offsets = Vec::with_capacity(per_node.len() + 1);
        let mut entries = Vec::new();
        offsets.push(0);
        for list in per_node {
            entries.extend(list);
            offsets.push(u32::try_from(entries.len()).expect("edge overflow"));
        }
        CsrDir { offsets, entries }
    }

    fn slice(&self, node: NodeId) -> &[Entry] {
        let i = node.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Forward (outgoing) and reverse (incoming) adjacency for one edge type.
#[derive(Debug, Clone)]
struct CsrLayer {
    fwd: CsrDir,
    rev: CsrDir,
}

/// A frozen per-edge-type adjacency snapshot of a [`Graph`] with
/// pre-decoded integer-list edge payloads. See the module docs.
#[derive(Debug, Clone)]
pub struct CsrSnapshot {
    types: Vec<EdgeType>,
    layers: Vec<CsrLayer>,
    /// Arena of decoded payload lists; entries carry `(start, len)` spans.
    payload: Vec<i64>,
}

impl CsrSnapshot {
    /// Builds the snapshot for the given edge `types`. When `payload_key`
    /// is set, each edge's value under that key is decoded with
    /// [`Value::as_int_list`] into the arena; edges without the property
    /// (or with a non-int-list value) get an empty slice — the same view
    /// `edge_prop(..).and_then(as_int_list).unwrap_or(&[])` produces.
    pub fn freeze(graph: &Graph, types: &[EdgeType], payload_key: Option<PropKey>) -> Self {
        let n = graph.node_count();
        let mut payload: Vec<i64> = Vec::new();
        let mut layers = Vec::with_capacity(types.len());
        for &ty in types {
            let mut fwd: Vec<Vec<Entry>> = vec![Vec::new(); n];
            let mut rev: Vec<Vec<Entry>> = vec![Vec::new(); n];
            for e in graph.edge_ids() {
                if graph.edge_ty(e) != ty {
                    continue;
                }
                let (from, to) = graph.endpoints(e);
                let span = payload_key
                    .and_then(|k| graph.edge_prop(e, k))
                    .and_then(Value::as_int_list)
                    .map(|list| {
                        let start = u32::try_from(payload.len()).expect("payload overflow");
                        payload.extend_from_slice(list);
                        (start, u32::try_from(list.len()).expect("payload overflow"))
                    })
                    .unwrap_or((0, 0));
                fwd[from.index()].push((e, to, span.0, span.1));
                rev[to.index()].push((e, from, span.0, span.1));
            }
            layers.push(CsrLayer {
                fwd: CsrDir::flatten(fwd),
                rev: CsrDir::flatten(rev),
            });
        }
        CsrSnapshot {
            types: types.to_vec(),
            layers,
            payload,
        }
    }

    /// The layer index for an edge type passed to [`CsrSnapshot::freeze`]
    /// (its position in the `types` slice), or `None` if it was not frozen.
    pub fn layer_of(&self, ty: EdgeType) -> Option<usize> {
        self.types.iter().position(|&t| t == ty)
    }

    /// Adjacent `(edge, neighbor, payload)` triples of `node` over the
    /// given layer, in the exact order [`Graph::edges_of`] yields for the
    /// same `(node, direction, type)` query: outgoing entries in edge
    /// insertion order, then (for [`Direction::Both`]) incoming entries in
    /// edge insertion order.
    pub fn neighbors(
        &self,
        layer: usize,
        node: NodeId,
        direction: Direction,
    ) -> impl Iterator<Item = (EdgeId, NodeId, &[i64])> + '_ {
        let l = &self.layers[layer];
        let fwd: &[Entry] = match direction {
            Direction::Outgoing | Direction::Both => l.fwd.slice(node),
            Direction::Incoming => &[],
        };
        let rev: &[Entry] = match direction {
            Direction::Incoming | Direction::Both => l.rev.slice(node),
            Direction::Outgoing => &[],
        };
        fwd.iter()
            .chain(rev.iter())
            .map(move |&(e, n, start, len)| {
                (
                    e,
                    n,
                    &self.payload[start as usize..(start as usize + len as usize)],
                )
            })
    }

    /// Total adjacency entries in one layer (each edge appears once
    /// forward and once reverse).
    pub fn layer_len(&self, layer: usize) -> usize {
        self.layers[layer].fwd.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small multigraph with interleaved CALL/ALIAS edges, a PP payload
    /// on some CALL edges, and a self-loop.
    fn sample() -> (Graph, EdgeType, EdgeType, PropKey, Vec<NodeId>) {
        let mut g = Graph::new();
        let l = g.label("Method");
        let call = g.edge_type("CALL");
        let alias = g.edge_type("ALIAS");
        let pp = g.prop_key("PP");
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_node(l)).collect();
        let e0 = g.add_edge(call, nodes[1], nodes[0]);
        g.set_edge_prop(e0, pp, Value::IntList(vec![-1, 1]));
        g.add_edge(alias, nodes[2], nodes[0]);
        let e2 = g.add_edge(call, nodes[2], nodes[0]);
        g.set_edge_prop(e2, pp, Value::IntList(vec![0]));
        g.add_edge(call, nodes[3], nodes[2]); // no payload
        g.add_edge(alias, nodes[0], nodes[3]);
        g.add_edge(call, nodes[0], nodes[0]); // self-loop
        (g, call, alias, pp, nodes)
    }

    #[test]
    fn entry_order_matches_edges_of() {
        let (g, call, alias, pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], Some(pp));
        let cl = csr.layer_of(call).unwrap();
        let al = csr.layer_of(alias).unwrap();
        for &n in &nodes {
            for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                for (ty, layer) in [(call, cl), (alias, al)] {
                    let want: Vec<EdgeId> = g.edges_of(n, dir, Some(ty));
                    let got: Vec<EdgeId> = csr.neighbors(layer, n, dir).map(|(e, ..)| e).collect();
                    assert_eq!(got, want, "node {n:?} dir {dir:?} ty {ty:?}");
                }
            }
        }
    }

    #[test]
    fn neighbors_match_other_node() {
        let (g, call, alias, pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], Some(pp));
        for &n in &nodes {
            for layer in [0usize, 1] {
                for (e, nb, _) in csr.neighbors(layer, n, Direction::Both) {
                    assert_eq!(nb, g.other_node(e, n));
                }
            }
        }
    }

    #[test]
    fn payload_matches_decoded_edge_prop() {
        let (g, call, alias, pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], Some(pp));
        let cl = csr.layer_of(call).unwrap();
        for &n in &nodes {
            for (e, _, payload) in csr.neighbors(cl, n, Direction::Both) {
                let want: &[i64] = g
                    .edge_prop(e, pp)
                    .and_then(Value::as_int_list)
                    .unwrap_or(&[]);
                assert_eq!(payload, want, "edge {e:?}");
            }
        }
    }

    #[test]
    fn absent_payload_key_yields_empty_slices() {
        let (g, call, alias, _pp, nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call, alias], None);
        for &n in &nodes {
            for (_, _, payload) in csr.neighbors(0, n, Direction::Both) {
                assert!(payload.is_empty());
            }
        }
    }

    #[test]
    fn unknown_type_has_no_layer() {
        let (g, call, _alias, _pp, _nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call], None);
        assert_eq!(csr.layer_of(call), Some(0));
        assert_eq!(csr.layer_of(EdgeType(99)), None);
        assert_eq!(csr.layer_len(0), 5);
    }

    #[test]
    fn out_of_range_node_is_empty() {
        let (g, call, _alias, _pp, _nodes) = sample();
        let csr = CsrSnapshot::freeze(&g, &[call], None);
        assert_eq!(csr.neighbors(0, NodeId(1000), Direction::Both).count(), 0);
    }
}
