//! The embedded property-graph store.
//!
//! This is the reproduction's stand-in for Neo4j (§II-B): a directed
//! multigraph whose nodes carry a label and a property map, whose edges
//! carry a type and a property map, with label+property indexes for O(1)
//! lookup and full serde round-tripping (persisting the graph to disk plays
//! the role of "storing the CPG in the database").

use crate::hash::content_hash64;
use crate::value::{IndexKey, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Identifier of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an edge (relationship).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned node label (e.g. `Class`, `Method`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub u16);

/// Interned relationship type (e.g. `CALL`, `ALIAS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeType(pub u16);

/// Interned property key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PropKey(pub u16);

/// Direction of edge traversal relative to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges from source to target.
    Outgoing,
    /// Follow edges from target to source.
    Incoming,
    /// Follow edges either way.
    Both,
}

// Property maps are `BTreeMap`s (not `HashMap`s) on purpose: serialization
// order must be deterministic so that the same graph always produces the
// same bytes. Content-addressed caching (tabby-service) keys on those bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeData {
    label: Label,
    props: BTreeMap<PropKey, Value>,
    out: Vec<EdgeId>,
    inc: Vec<EdgeId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeData {
    ty: EdgeType,
    from: NodeId,
    to: NodeId,
    props: BTreeMap<PropKey, Value>,
}

#[derive(Debug, Clone, Default, Serialize)]
struct SmallInterner {
    names: Vec<String>,
    /// FNV hash of a name → interned ids with that hash (a collision
    /// bucket, almost always a single entry). Keying by hash instead of by
    /// owned string leaves `names` holding the only copy of each name, so
    /// `intern` allocates once per new name. Not serialized; the custom
    /// `Deserialize` below rebuilds it eagerly, so lookups never fall back
    /// to a linear scan.
    #[serde(skip)]
    map: HashMap<u64, Vec<u16>>,
}

/// Deserializes the same shape the derived impl used (`{ names: [...] }`,
/// the skipped map absent), then rebuilds the lookup map immediately.
impl<'de> Deserialize<'de> for SmallInterner {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Shadow {
            names: Vec<String>,
        }
        let Shadow { names } = Shadow::deserialize(deserializer)?;
        let mut interner = SmallInterner {
            names,
            map: HashMap::new(),
        };
        interner.rebuild();
        Ok(interner)
    }
}

impl SmallInterner {
    fn rebuild(&mut self) {
        self.map.clear();
        for (i, n) in self.names.iter().enumerate() {
            self.map
                .entry(content_hash64(n.as_bytes()))
                .or_default()
                .push(i as u16);
        }
    }

    fn intern(&mut self, s: &str) -> u16 {
        let h = content_hash64(s.as_bytes());
        if let Some(bucket) = self.map.get(&h) {
            for &i in bucket {
                if self.names[i as usize] == s {
                    return i;
                }
            }
        }
        let i = u16::try_from(self.names.len()).expect("interner overflow");
        self.names.push(s.to_owned());
        self.map.entry(h).or_default().push(i);
        i
    }

    fn get(&self, s: &str) -> Option<u16> {
        self.map
            .get(&content_hash64(s.as_bytes()))?
            .iter()
            .copied()
            .find(|&i| self.names[i as usize] == s)
    }

    fn resolve(&self, i: u16) -> &str {
        &self.names[i as usize]
    }
}

/// An embedded directed property multigraph.
///
/// # Examples
///
/// ```
/// use tabby_graph::{Graph, Value, Direction};
///
/// let mut g = Graph::new();
/// let class = g.label("Class");
/// let name = g.prop_key("NAME");
/// let n = g.add_node(class);
/// g.set_node_prop(n, name, Value::from("java.util.HashMap"));
/// assert_eq!(g.node_prop(n, name).unwrap().as_str(), Some("java.util.HashMap"));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    labels: SmallInterner,
    edge_types: SmallInterner,
    prop_keys: SmallInterner,
    /// (label, key) pairs with an index, plus the index contents.
    indexed: Vec<(Label, PropKey)>,
    #[serde(skip)]
    index: HashMap<(Label, PropKey, IndexKey), Vec<NodeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- interning --------------------------------------------------------

    /// Interns a node label.
    pub fn label(&mut self, name: &str) -> Label {
        Label(self.labels.intern(name))
    }

    /// Looks up a node label without interning.
    pub fn get_label(&self, name: &str) -> Option<Label> {
        self.labels.get(name).map(Label)
    }

    /// Resolves a label name.
    pub fn label_name(&self, label: Label) -> &str {
        self.labels.resolve(label.0)
    }

    /// Interns a relationship type.
    pub fn edge_type(&mut self, name: &str) -> EdgeType {
        EdgeType(self.edge_types.intern(name))
    }

    /// Looks up a relationship type without interning.
    pub fn get_edge_type(&self, name: &str) -> Option<EdgeType> {
        self.edge_types.get(name).map(EdgeType)
    }

    /// Resolves a relationship-type name.
    pub fn edge_type_name(&self, ty: EdgeType) -> &str {
        self.edge_types.resolve(ty.0)
    }

    /// Interns a property key.
    pub fn prop_key(&mut self, name: &str) -> PropKey {
        PropKey(self.prop_keys.intern(name))
    }

    /// Looks up a property key without interning.
    pub fn get_prop_key(&self, name: &str) -> Option<PropKey> {
        self.prop_keys.get(name).map(PropKey)
    }

    // ----- construction -----------------------------------------------------

    /// Adds a node with the given label.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node overflow"));
        self.nodes.push(NodeData {
            label,
            props: BTreeMap::new(),
            out: Vec::new(),
            inc: Vec::new(),
        });
        id
    }

    /// Adds an edge of type `ty` from `from` to `to`.
    pub fn add_edge(&mut self, ty: EdgeType, from: NodeId, to: NodeId) -> EdgeId {
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge overflow"));
        self.edges.push(EdgeData {
            ty,
            from,
            to,
            props: BTreeMap::new(),
        });
        self.nodes[from.index()].out.push(id);
        self.nodes[to.index()].inc.push(id);
        id
    }

    /// Sets a node property, maintaining any matching index.
    pub fn set_node_prop(&mut self, node: NodeId, key: PropKey, value: Value) {
        let label = self.nodes[node.index()].label;
        if self.indexed.contains(&(label, key)) {
            if let Some(old) = self.nodes[node.index()].props.get(&key) {
                if let Some(k) = IndexKey::from_value(old) {
                    if let Some(v) = self.index.get_mut(&(label, key, k)) {
                        v.retain(|&n| n != node);
                    }
                }
            }
            if let Some(k) = IndexKey::from_value(&value) {
                self.index.entry((label, key, k)).or_default().push(node);
            }
        }
        self.nodes[node.index()].props.insert(key, value);
    }

    /// Sets an edge property.
    pub fn set_edge_prop(&mut self, edge: EdgeId, key: PropKey, value: Value) {
        self.edges[edge.index()].props.insert(key, value);
    }

    /// Declares an index over `(label, key)`; existing nodes are back-filled.
    pub fn create_index(&mut self, label: Label, key: PropKey) {
        if self.indexed.contains(&(label, key)) {
            return;
        }
        self.indexed.push((label, key));
        for (i, node) in self.nodes.iter().enumerate() {
            if node.label == label {
                if let Some(v) = node.props.get(&key) {
                    if let Some(k) = IndexKey::from_value(v) {
                        self.index
                            .entry((label, key, k))
                            .or_default()
                            .push(NodeId(i as u32));
                    }
                }
            }
        }
    }

    /// Whether an index over `(label, key)` exists.
    pub fn has_index(&self, label: Label, key: PropKey) -> bool {
        self.indexed.contains(&(label, key))
    }

    /// Rebuilds transient state (indexes, interner maps) after
    /// deserialization.
    pub fn rebuild_after_deserialize(&mut self) {
        self.labels.rebuild();
        self.edge_types.rebuild();
        self.prop_keys.rebuild();
        self.index.clear();
        let indexed = self.indexed.clone();
        self.indexed.clear();
        for (label, key) in indexed {
            self.create_index(label, key);
        }
    }

    // ----- access -----------------------------------------------------------

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label of `node`.
    pub fn node_label(&self, node: NodeId) -> Label {
        self.nodes[node.index()].label
    }

    /// A node property.
    pub fn node_prop(&self, node: NodeId, key: PropKey) -> Option<&Value> {
        self.nodes[node.index()].props.get(&key)
    }

    /// An edge property.
    pub fn edge_prop(&self, edge: EdgeId, key: PropKey) -> Option<&Value> {
        self.edges[edge.index()].props.get(&key)
    }

    /// The type of `edge`.
    pub fn edge_ty(&self, edge: EdgeId) -> EdgeType {
        self.edges[edge.index()].ty
    }

    /// Source and target of `edge`.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.from, e.to)
    }

    /// The endpoint of `edge` other than `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `edge`.
    pub fn other_node(&self, edge: EdgeId, node: NodeId) -> NodeId {
        let (from, to) = self.endpoints(edge);
        if node == from {
            to
        } else if node == to {
            from
        } else {
            panic!("node {node:?} is not an endpoint of edge {edge:?}")
        }
    }

    /// Edges incident to `node` in the given direction, optionally filtered
    /// by type.
    pub fn edges_of(
        &self,
        node: NodeId,
        direction: Direction,
        ty: Option<EdgeType>,
    ) -> Vec<EdgeId> {
        let data = &self.nodes[node.index()];
        let mut out = Vec::new();
        let keep = |e: EdgeId, edges: &Vec<EdgeData>| match ty {
            Some(t) => edges[e.index()].ty == t,
            None => true,
        };
        if matches!(direction, Direction::Outgoing | Direction::Both) {
            out.extend(data.out.iter().copied().filter(|&e| keep(e, &self.edges)));
        }
        if matches!(direction, Direction::Incoming | Direction::Both) {
            out.extend(data.inc.iter().copied().filter(|&e| keep(e, &self.edges)));
        }
        out
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(|i| EdgeId(i as u32))
    }

    /// All nodes with the given label.
    pub fn nodes_with_label(&self, label: Label) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.nodes[n.index()].label == label)
            .collect()
    }

    /// Index lookup: nodes with `label` whose `key` property equals `value`.
    /// Falls back to a scan when no index exists for `(label, key)`.
    pub fn nodes_by(&self, label: Label, key: PropKey, value: &Value) -> Vec<NodeId> {
        if self.indexed.contains(&(label, key)) {
            match IndexKey::from_value(value) {
                Some(k) => self
                    .index
                    .get(&(label, key, k))
                    .cloned()
                    .unwrap_or_default(),
                None => Vec::new(),
            }
        } else {
            self.node_ids()
                .filter(|n| {
                    self.nodes[n.index()].label == label
                        && self.nodes[n.index()].props.get(&key) == Some(value)
                })
                .collect()
        }
    }

    /// Count of edges by type name, for stats reporting.
    pub fn edge_type_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<EdgeType, usize> = HashMap::new();
        for e in &self.edges {
            *counts.entry(e.ty).or_insert(0) += 1;
        }
        let mut out: Vec<_> = counts
            .into_iter()
            .map(|(t, c)| (self.edge_types.resolve(t.0).to_owned(), c))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, NodeId, NodeId, EdgeId) {
        let mut g = Graph::new();
        let l = g.label("N");
        let t = g.edge_type("E");
        let a = g.add_node(l);
        let b = g.add_node(l);
        let e = g.add_edge(t, a, b);
        (g, a, b, e)
    }

    #[test]
    fn nodes_and_edges() {
        let (g, a, b, e) = tiny();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.endpoints(e), (a, b));
        assert_eq!(g.other_node(e, a), b);
        assert_eq!(g.other_node(e, b), a);
    }

    #[test]
    fn directional_edge_queries() {
        let (g, a, b, e) = tiny();
        assert_eq!(g.edges_of(a, Direction::Outgoing, None), vec![e]);
        assert!(g.edges_of(a, Direction::Incoming, None).is_empty());
        assert_eq!(g.edges_of(b, Direction::Incoming, None), vec![e]);
        assert_eq!(g.edges_of(a, Direction::Both, None), vec![e]);
    }

    #[test]
    fn typed_edge_filter() {
        let mut g = Graph::new();
        let l = g.label("N");
        let t1 = g.edge_type("CALL");
        let t2 = g.edge_type("ALIAS");
        let a = g.add_node(l);
        let b = g.add_node(l);
        let e1 = g.add_edge(t1, a, b);
        let e2 = g.add_edge(t2, a, b);
        assert_eq!(g.edges_of(a, Direction::Outgoing, Some(t1)), vec![e1]);
        assert_eq!(g.edges_of(a, Direction::Outgoing, Some(t2)), vec![e2]);
        assert_eq!(g.edges_of(a, Direction::Outgoing, None).len(), 2);
    }

    #[test]
    fn index_lookup_and_update() {
        let mut g = Graph::new();
        let l = g.label("Method");
        let k = g.prop_key("NAME");
        g.create_index(l, k);
        let a = g.add_node(l);
        g.set_node_prop(a, k, Value::from("readObject"));
        assert_eq!(g.nodes_by(l, k, &Value::from("readObject")), vec![a]);
        // Overwrite moves the index entry.
        g.set_node_prop(a, k, Value::from("hashCode"));
        assert!(g.nodes_by(l, k, &Value::from("readObject")).is_empty());
        assert_eq!(g.nodes_by(l, k, &Value::from("hashCode")), vec![a]);
    }

    #[test]
    fn index_backfill() {
        let mut g = Graph::new();
        let l = g.label("Method");
        let k = g.prop_key("NAME");
        let a = g.add_node(l);
        g.set_node_prop(a, k, Value::from("m"));
        g.create_index(l, k);
        assert_eq!(g.nodes_by(l, k, &Value::from("m")), vec![a]);
    }

    #[test]
    fn unindexed_lookup_scans() {
        let mut g = Graph::new();
        let l = g.label("Method");
        let k = g.prop_key("NAME");
        let a = g.add_node(l);
        g.set_node_prop(a, k, Value::from("m"));
        assert_eq!(g.nodes_by(l, k, &Value::from("m")), vec![a]);
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let (mut g, a, _b, e) = tiny();
        let k = g.prop_key("PP");
        g.set_edge_prop(e, k, Value::IntList(vec![-1, 0, 2]));
        let nk = g.prop_key("NAME");
        let label = g.node_label(a);
        g.create_index(label, nk);
        g.set_node_prop(a, nk, Value::from("x"));
        let json = serde_json::to_string(&g).unwrap();
        let mut g2: Graph = serde_json::from_str(&json).unwrap();
        g2.rebuild_after_deserialize();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_prop(e, k), g.edge_prop(e, k));
        assert_eq!(g2.nodes_by(label, nk, &Value::from("x")), vec![a]);
        assert_eq!(g2.label_name(label), "N");
    }

    #[test]
    fn interner_lookups_work_right_after_deserialization() {
        // The custom `Deserialize` rebuilds the interner maps eagerly, so
        // name lookups work even before `rebuild_after_deserialize` (which
        // is still required for the property indexes).
        let (g, ..) = tiny();
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.get_label("N"), g.get_label("N"));
        assert_eq!(g2.get_edge_type("E"), g.get_edge_type("E"));
        assert_eq!(g2.get_label("missing"), None);
    }

    #[test]
    fn interning_is_idempotent_and_lookup_consistent() {
        let mut g = Graph::new();
        let a = g.label("A");
        let b = g.label("B");
        assert_ne!(a, b);
        assert_eq!(g.label("A"), a);
        assert_eq!(g.get_label("A"), Some(a));
        assert_eq!(g.get_label("B"), Some(b));
        assert_eq!(g.get_label("C"), None);
    }
}

impl Graph {
    /// Renders the graph in Graphviz DOT syntax. `node_label_prop` selects
    /// the property used as the node caption (falling back to the node id);
    /// edge captions are the relationship-type names.
    ///
    /// # Examples
    ///
    /// ```
    /// use tabby_graph::{Graph, Value};
    ///
    /// let mut g = Graph::new();
    /// let l = g.label("Method");
    /// let t = g.edge_type("CALL");
    /// let name = g.prop_key("NAME");
    /// let a = g.add_node(l);
    /// let b = g.add_node(l);
    /// g.set_node_prop(a, name, Value::from("readObject"));
    /// g.set_node_prop(b, name, Value::from("exec"));
    /// g.add_edge(t, a, b);
    /// let dot = g.to_dot(Some(name));
    /// assert!(dot.contains("readObject"));
    /// assert!(dot.contains("-> n1"));
    /// ```
    pub fn to_dot(&self, node_label_prop: Option<PropKey>) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cpg {\n  rankdir=LR;\n  node [shape=box];\n");
        for node in self.node_ids() {
            let caption = node_label_prop
                .and_then(|k| self.node_prop(node, k))
                .map(|v| v.to_string())
                .unwrap_or_else(|| format!("n{}", node.0));
            let caption = caption
                .trim_matches('"')
                .replace('\\', "")
                .replace('"', "'");
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\n:{}\"];",
                node.0,
                caption,
                self.label_name(self.node_label(node))
            );
        }
        for edge in self.edge_ids() {
            let (from, to) = self.endpoints(edge);
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                from.0,
                to.0,
                self.edge_type_name(self.edge_ty(edge))
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_is_well_formed() {
        let mut g = Graph::new();
        let l = g.label("Method");
        let t = g.edge_type("CALL");
        let name = g.prop_key("NAME");
        let a = g.add_node(l);
        let b = g.add_node(l);
        g.set_node_prop(a, name, Value::from("read\"Object"));
        g.add_edge(t, a, b);
        let dot = g.to_dot(Some(name));
        assert!(dot.starts_with("digraph cpg {"));
        assert!(dot.ends_with("}\n"));
        // Quotes in captions are sanitized.
        assert!(dot.contains("read'Object"));
        assert!(dot.contains("n0 -> n1 [label=\"CALL\"]"));
    }

    #[test]
    fn dot_without_caption_prop_uses_ids() {
        let mut g = Graph::new();
        let l = g.label("N");
        g.add_node(l);
        let dot = g.to_dot(None);
        assert!(dot.contains("n0 [label=\"n0"));
    }
}
