//! Content hashing for cache keys.
//!
//! The scan daemon (`tabby-service`) addresses its caches by content: a
//! `.class` file is identified by the hash of its bytes, a stored CPG by the
//! hash of its canonical serialization. The hashes only need to be fast,
//! stable across runs, and well-distributed — FNV-1a over 64 bits fits, and
//! keeps the crate dependency-free. They are *not* cryptographic; cache
//! poisoning is out of scope for a local daemon reading local files.

use crate::store::Graph;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a (64-bit) hasher for composing cache keys from
/// several parts (e.g. a set of class hashes plus an options fingerprint).
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a 64-bit value (little-endian), e.g. a sub-hash.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes a byte slice with 64-bit FNV-1a.
pub fn content_hash64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

impl Graph {
    /// Content hash of the graph: FNV-1a over its canonical JSON
    /// serialization. Two graphs with identical nodes, edges, and
    /// properties hash identically regardless of how they were built —
    /// property maps serialize in key order (see `store::NodeData`).
    pub fn content_hash(&self) -> u64 {
        let bytes = serde_json::to_vec(self).expect("graph serialization cannot fail");
        content_hash64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn fnv_reference_vectors() {
        // Known FNV-1a/64 test vectors.
        assert_eq!(content_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn composed_hash_differs_from_concatenation_order() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn graph_hash_is_stable_and_content_sensitive() {
        let build = |name: &str| {
            let mut g = Graph::new();
            let l = g.label("Method");
            let k = g.prop_key("NAME");
            let n = g.add_node(l);
            g.set_node_prop(n, k, Value::from(name));
            g
        };
        assert_eq!(build("a").content_hash(), build("a").content_hash());
        assert_ne!(build("a").content_hash(), build("b").content_hash());
    }
}
