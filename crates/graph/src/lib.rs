//! # tabby-graph — an embedded property graph with Neo4j-style traversal
//!
//! This crate is the graph-database substrate of the Tabby reproduction
//! (DSN 2023). The paper stores its code property graph in Neo4j and searches
//! it with a traversal plugin (*tabby-path-finder*) built from an Expander
//! and an Evaluator (Algorithms 2–3). Here the same roles are provided by an
//! embedded store:
//!
//! - [`Graph`]: labeled nodes and typed, directed edges, both carrying
//!   property maps ([`Value`]); label+property indexes; serde persistence
//!   (the "store it in the database" step).
//! - [`Traversal`]: the Expander/Evaluator framework, generic over a
//!   caller-defined state (Tabby threads the Trigger_Condition set).
//! - [`CsrSnapshot`]: a frozen per-edge-type CSR adjacency view derived
//!   from a [`Graph`] right before search, for allocation-free hot loops.
//! - [`algo`]: reachability, shortest paths, SCCs, degree statistics.
//!
//! # Examples
//!
//! ```
//! use tabby_graph::{Graph, Value};
//!
//! let mut g = Graph::new();
//! let method = g.label("Method");
//! let call = g.edge_type("CALL");
//! let name = g.prop_key("NAME");
//! let a = g.add_node(method);
//! let b = g.add_node(method);
//! g.set_node_prop(a, name, Value::from("readObject"));
//! let e = g.add_edge(call, a, b);
//! let pp = g.prop_key("POLLUTED_POSITION");
//! g.set_edge_prop(e, pp, Value::IntList(vec![0, 1]));
//! assert_eq!(g.edge_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod csr;
pub mod flat;
pub mod hash;
pub mod query;
pub mod store;
pub mod traversal;
pub mod value;

pub use csr::{CsrSnapshot, GraphError};
pub use flat::{encode_flat_cpg, FlatCpg, FlatError, MappedBuf, FLAT_FORMAT_VERSION};
pub use hash::{content_hash64, Fnv64};
pub use query::{ExecBudget, Match, NodePattern, Query, QueryStats, QueryStream};
pub use store::{Direction, EdgeId, EdgeType, Graph, Label, NodeId, PropKey};
pub use traversal::{
    follow, Evaluation, Evaluator, Expander, Expansion, Order, Path, Traversal, TraversalStats,
    Uniqueness,
};
pub use value::Value;
