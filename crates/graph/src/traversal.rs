//! A Neo4j-style traversal framework with stateful expansion.
//!
//! The paper implements gadget-chain search as a Neo4j traversal plugin
//! (*tabby-path-finder*) built from an **Expander** (which relationships to
//! follow from the end of a path, and with what updated state) and an
//! **Evaluator** (whether the current path is a result and whether to keep
//! going) — Algorithms 2 and 3. This module provides the same two
//! extension points over the embedded [`Graph`], generic over a
//! caller-defined state type `S` (the Trigger_Condition set, for Tabby).

use crate::store::{Direction, EdgeId, Graph, NodeId};

/// A path through the graph: `nodes.len() == edges.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// A single-node path.
    pub fn start(node: NodeId) -> Self {
        Self {
            nodes: vec![node],
            edges: Vec::new(),
        }
    }

    /// The node the path currently ends at.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("paths are never empty")
    }

    /// The node the path started from.
    pub fn first(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of edges in the path (the traversal depth).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is a single node.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Nodes along the path, in order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges along the path, in order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Whether `node` already occurs on the path.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Returns a new path extended by `edge` to `node`.
    #[must_use]
    pub fn extend(&self, edge: EdgeId, node: NodeId) -> Self {
        let mut p = self.clone();
        p.edges.push(edge);
        p.nodes.push(node);
        p
    }
}

/// One expansion step produced by an [`Expander`]: follow `edge` to `node`,
/// continuing with `state`.
#[derive(Debug, Clone)]
pub struct Expansion<S> {
    /// The edge to traverse.
    pub edge: EdgeId,
    /// The node at its far end.
    pub node: NodeId,
    /// The traversal state after crossing the edge.
    pub state: S,
}

/// Chooses which edges to follow from the end of a path, threading a state
/// value (Algorithm 2's role).
pub trait Expander<S> {
    /// Expansions from the end of `path` given the current `state`.
    fn expand(&self, graph: &Graph, path: &Path, state: &S) -> Vec<Expansion<S>>;
}

impl<S, F> Expander<S> for F
where
    F: Fn(&Graph, &Path, &S) -> Vec<Expansion<S>>,
{
    fn expand(&self, graph: &Graph, path: &Path, state: &S) -> Vec<Expansion<S>> {
        self(graph, path, state)
    }
}

/// The verdict an [`Evaluator`] renders for a path (Neo4j's four-valued
/// `Evaluation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evaluation {
    /// Emit the path as a result and keep expanding it.
    IncludeAndContinue,
    /// Emit the path and stop expanding it.
    IncludeAndPrune,
    /// Do not emit, but keep expanding.
    ExcludeAndContinue,
    /// Do not emit and stop expanding.
    ExcludeAndPrune,
}

impl Evaluation {
    /// Whether the path should be emitted.
    pub fn includes(self) -> bool {
        matches!(
            self,
            Evaluation::IncludeAndContinue | Evaluation::IncludeAndPrune
        )
    }

    /// Whether expansion continues past this path.
    pub fn continues(self) -> bool {
        matches!(
            self,
            Evaluation::IncludeAndContinue | Evaluation::ExcludeAndContinue
        )
    }
}

/// Decides whether a path is a result and whether to continue (Algorithm 3's
/// role).
pub trait Evaluator<S> {
    /// Evaluates the path that traversal just produced.
    fn evaluate(&self, graph: &Graph, path: &Path, state: &S) -> Evaluation;
}

impl<S, F> Evaluator<S> for F
where
    F: Fn(&Graph, &Path, &S) -> Evaluation,
{
    fn evaluate(&self, graph: &Graph, path: &Path, state: &S) -> Evaluation {
        self(graph, path, state)
    }
}

/// Node-revisiting policy, mirroring Neo4j's `Uniqueness`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uniqueness {
    /// A node may appear any number of times (cycles bounded only by depth).
    None,
    /// A node may appear at most once per path (Neo4j `NODE_PATH`); the
    /// default for gadget-chain search.
    NodePath,
    /// A node may be visited at most once in the whole traversal (Neo4j
    /// `NODE_GLOBAL`) — the shortcut GadgetInspector takes, which the paper
    /// criticizes for losing chains (§IV-F).
    NodeGlobal,
}

/// Traversal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Depth-first (the paper's §III-A "Depth-First algorithm").
    DepthFirst,
    /// Breadth-first.
    BreadthFirst,
}

/// A configured traversal, built with [`Traversal::new`] and executed with
/// [`Traversal::run`].
///
/// # Examples
///
/// ```
/// use tabby_graph::{Graph, Direction, Expansion, Evaluation, Traversal, Uniqueness};
///
/// let mut g = Graph::new();
/// let l = g.label("N");
/// let t = g.edge_type("E");
/// let a = g.add_node(l);
/// let b = g.add_node(l);
/// g.add_edge(t, a, b);
///
/// let paths = Traversal::new(
///     |g: &Graph, path: &tabby_graph::Path, _state: &()| {
///         g.edges_of(path.end(), Direction::Outgoing, None)
///             .into_iter()
///             .map(|e| Expansion { edge: e, node: g.other_node(e, path.end()), state: () })
///             .collect()
///     },
///     |_: &Graph, path: &tabby_graph::Path, _: &()| {
///         if path.len() == 1 { Evaluation::IncludeAndPrune } else { Evaluation::ExcludeAndContinue }
///     },
/// )
/// .run(&g, a, ());
/// assert_eq!(paths.len(), 1);
/// assert_eq!(paths[0].0.end(), b);
/// ```
pub struct Traversal<S, X, E> {
    expander: X,
    evaluator: E,
    uniqueness: Uniqueness,
    order: Order,
    max_results: usize,
    max_expansions: usize,
    deadline: Option<std::time::Instant>,
    _marker: std::marker::PhantomData<S>,
}

/// What a traversal run did, beyond the result paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Expansion steps performed.
    pub expansions: usize,
    /// The run stopped on its expansion budget or deadline with frontier
    /// still unexplored (reaching `max_results` is a satisfied query, not a
    /// truncation).
    pub truncated: bool,
}

impl<S: Clone, X: Expander<S>, E: Evaluator<S>> Traversal<S, X, E> {
    /// Creates a traversal with the default policy (depth-first,
    /// per-path node uniqueness, unbounded results).
    pub fn new(expander: X, evaluator: E) -> Self {
        Self {
            expander,
            evaluator,
            uniqueness: Uniqueness::NodePath,
            order: Order::DepthFirst,
            max_results: usize::MAX,
            max_expansions: usize::MAX,
            deadline: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the node-uniqueness policy.
    #[must_use]
    pub fn uniqueness(mut self, u: Uniqueness) -> Self {
        self.uniqueness = u;
        self
    }

    /// Sets the traversal order.
    #[must_use]
    pub fn order(mut self, o: Order) -> Self {
        self.order = o;
        self
    }

    /// Stops after emitting `n` result paths.
    #[must_use]
    pub fn max_results(mut self, n: usize) -> Self {
        self.max_results = n;
        self
    }

    /// Aborts after `n` expansion steps — the work-limit knob used to model
    /// baseline timeouts and protect against path explosion.
    #[must_use]
    pub fn max_expansions(mut self, n: usize) -> Self {
        self.max_expansions = n;
        self
    }

    /// Aborts (with `truncated` set in the stats) once the wall clock
    /// passes `deadline`; checked every 1024 expansions.
    #[must_use]
    pub fn deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Runs the traversal from `start` with initial state `state`,
    /// returning all included paths with their final states.
    pub fn run(&self, graph: &Graph, start: NodeId, state: S) -> Vec<(Path, S)> {
        self.run_many(graph, vec![(start, state)])
    }

    /// Runs the traversal from several start nodes in one pass (sharing
    /// global uniqueness and work limits).
    pub fn run_many(&self, graph: &Graph, starts: Vec<(NodeId, S)>) -> Vec<(Path, S)> {
        self.run_many_with_stats(graph, starts).0
    }

    /// Like [`Traversal::run_many`], also reporting whether the run was cut
    /// short by its expansion budget or deadline.
    pub fn run_many_with_stats(
        &self,
        graph: &Graph,
        starts: Vec<(NodeId, S)>,
    ) -> (Vec<(Path, S)>, TraversalStats) {
        let mut results = Vec::new();
        let mut stats = TraversalStats::default();
        let mut frontier: std::collections::VecDeque<(Path, S)> = starts
            .into_iter()
            .map(|(n, s)| (Path::start(n), s))
            .collect();
        let mut visited_global: std::collections::HashSet<NodeId> =
            frontier.iter().map(|(p, _)| p.first()).collect();
        while let Some((path, state)) = match self.order {
            Order::DepthFirst => frontier.pop_back(),
            Order::BreadthFirst => frontier.pop_front(),
        } {
            let eval = self.evaluator.evaluate(graph, &path, &state);
            if eval.includes() {
                results.push((path.clone(), state.clone()));
                if results.len() >= self.max_results {
                    break;
                }
            }
            if !eval.continues() {
                continue;
            }
            for exp in self.expander.expand(graph, &path, &state) {
                stats.expansions += 1;
                if stats.expansions > self.max_expansions {
                    stats.truncated = true;
                    return (results, stats);
                }
                if stats.expansions % 1024 == 0 {
                    if let Some(deadline) = self.deadline {
                        if std::time::Instant::now() >= deadline {
                            stats.truncated = true;
                            return (results, stats);
                        }
                    }
                }
                let admissible = match self.uniqueness {
                    Uniqueness::None => true,
                    Uniqueness::NodePath => !path.contains(exp.node),
                    Uniqueness::NodeGlobal => visited_global.insert(exp.node),
                };
                if admissible {
                    frontier.push_back((path.extend(exp.edge, exp.node), exp.state));
                }
            }
        }
        (results, stats)
    }
}

/// A ready-made expander that follows every edge of the given types in the
/// given direction, passing state through unchanged.
pub fn follow(types: Vec<(crate::store::EdgeType, Direction)>) -> impl Expander<()> {
    move |g: &Graph, path: &Path, _state: &()| {
        let mut out = Vec::new();
        for &(ty, dir) in &types {
            for e in g.edges_of(path.end(), dir, Some(ty)) {
                out.push(Expansion {
                    edge: e,
                    node: g.other_node(e, path.end()),
                    state: (),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EdgeType;

    /// a -> b -> c, a -> c, c -> a (cycle)
    fn diamondish() -> (Graph, Vec<NodeId>, EdgeType) {
        let mut g = Graph::new();
        let l = g.label("N");
        let t = g.edge_type("E");
        let a = g.add_node(l);
        let b = g.add_node(l);
        let c = g.add_node(l);
        g.add_edge(t, a, b);
        g.add_edge(t, b, c);
        g.add_edge(t, a, c);
        g.add_edge(t, c, a);
        (g, vec![a, b, c], t)
    }

    fn all_paths_to(
        g: &Graph,
        from: NodeId,
        to: NodeId,
        uniqueness: Uniqueness,
        depth: usize,
    ) -> Vec<Path> {
        let t = g.get_edge_type("E").unwrap();
        Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            move |_: &Graph, path: &Path, _: &()| {
                if path.end() == to && path.len() > 0 {
                    Evaluation::IncludeAndPrune
                } else if path.len() < depth {
                    Evaluation::ExcludeAndContinue
                } else {
                    Evaluation::ExcludeAndPrune
                }
            },
        )
        .uniqueness(uniqueness)
        .run(g, from, ())
        .into_iter()
        .map(|(p, _)| p)
        .collect()
    }

    #[test]
    fn node_path_uniqueness_finds_both_routes() {
        let (g, nodes, _) = diamondish();
        let paths = all_paths_to(&g, nodes[0], nodes[2], Uniqueness::NodePath, 5);
        assert_eq!(paths.len(), 2); // a->c and a->b->c
    }

    #[test]
    fn node_global_uniqueness_loses_a_route() {
        let (g, nodes, _) = diamondish();
        let paths = all_paths_to(&g, nodes[0], nodes[2], Uniqueness::NodeGlobal, 5);
        assert_eq!(paths.len(), 1); // the GadgetInspector shortcut
    }

    #[test]
    fn depth_limit_prunes() {
        let (g, nodes, _) = diamondish();
        let paths = all_paths_to(&g, nodes[0], nodes[2], Uniqueness::NodePath, 1);
        assert_eq!(paths.len(), 1); // only the direct a->c edge fits
    }

    #[test]
    fn cycle_is_cut_by_node_path_uniqueness() {
        let (g, nodes, _) = diamondish();
        // Search for paths back to `a`: the cycle c->a would revisit a.
        let paths = all_paths_to(&g, nodes[0], nodes[0], Uniqueness::NodePath, 10);
        assert!(paths.is_empty());
    }

    #[test]
    fn max_results_short_circuits() {
        let (g, nodes, t) = diamondish();
        let paths = Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            |_: &Graph, path: &Path, _: &()| {
                if path.len() > 0 {
                    Evaluation::IncludeAndContinue
                } else {
                    Evaluation::ExcludeAndContinue
                }
            },
        )
        .max_results(1)
        .run(&g, nodes[0], ());
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn max_expansions_aborts() {
        let (g, nodes, t) = diamondish();
        let paths = Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            |_: &Graph, _: &Path, _: &()| Evaluation::ExcludeAndContinue,
        )
        .uniqueness(Uniqueness::None)
        .max_expansions(3)
        .run(&g, nodes[0], ());
        assert!(paths.is_empty());
    }

    #[test]
    fn expansion_budget_abort_is_flagged_truncated() {
        let (g, nodes, t) = diamondish();
        let (paths, stats) = Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            |_: &Graph, _: &Path, _: &()| Evaluation::ExcludeAndContinue,
        )
        .uniqueness(Uniqueness::None)
        .max_expansions(3)
        .run_many_with_stats(&g, vec![(nodes[0], ())]);
        assert!(paths.is_empty());
        assert!(stats.truncated);
        assert_eq!(stats.expansions, 4); // aborted on the step past the budget
    }

    #[test]
    fn exhaustive_run_is_not_truncated() {
        let (g, nodes, t) = diamondish();
        let (_, stats) = Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            |_: &Graph, _: &Path, _: &()| Evaluation::ExcludeAndContinue,
        )
        .run_many_with_stats(&g, vec![(nodes[0], ())]);
        assert!(!stats.truncated);
        assert!(stats.expansions > 0);
    }

    #[test]
    fn max_results_stop_is_not_truncated() {
        let (g, nodes, t) = diamondish();
        let (paths, stats) = Traversal::new(
            follow(vec![(t, Direction::Outgoing)]),
            |_: &Graph, path: &Path, _: &()| {
                if path.len() > 0 {
                    Evaluation::IncludeAndContinue
                } else {
                    Evaluation::ExcludeAndContinue
                }
            },
        )
        .max_results(1)
        .run_many_with_stats(&g, vec![(nodes[0], ())]);
        assert_eq!(paths.len(), 1);
        assert!(!stats.truncated);
    }

    #[test]
    fn incoming_direction_reverses() {
        let (g, nodes, _) = diamondish();
        let t = g.get_edge_type("E").unwrap();
        let paths = Traversal::new(
            follow(vec![(t, Direction::Incoming)]),
            |_: &Graph, path: &Path, _: &()| {
                if path.len() == 1 {
                    Evaluation::IncludeAndPrune
                } else {
                    Evaluation::ExcludeAndContinue
                }
            },
        )
        .run(&g, nodes[2], ());
        // c has incoming edges from b and a.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn stateful_expansion_threads_state() {
        let (g, nodes, t) = diamondish();
        // Count hops in the state.
        let paths = Traversal::new(
            move |g: &Graph, path: &Path, state: &usize| {
                g.edges_of(path.end(), Direction::Outgoing, Some(t))
                    .into_iter()
                    .map(|e| Expansion {
                        edge: e,
                        node: g.other_node(e, path.end()),
                        state: state + 1,
                    })
                    .collect()
            },
            |_: &Graph, path: &Path, state: &usize| {
                assert_eq!(path.len(), *state);
                if path.len() == 2 {
                    Evaluation::IncludeAndPrune
                } else {
                    Evaluation::ExcludeAndContinue
                }
            },
        )
        .run(&g, nodes[0], 0usize);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].1, 2);
    }

    #[test]
    fn path_extend_is_persistent() {
        let p = Path::start(NodeId(0));
        let q = p.extend(EdgeId(0), NodeId(1));
        assert_eq!(p.len(), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.end(), NodeId(1));
        assert_eq!(q.first(), NodeId(0));
        assert!(q.contains(NodeId(0)));
    }
}
