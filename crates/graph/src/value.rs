//! Property values stored on graph nodes and edges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A property value, mirroring the value types Neo4j properties support
/// (scalars and homogeneous lists) plus a string-keyed map used for the
/// paper's `Action` property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// List of integers — e.g. the paper's `Polluted_Position`, where
    /// `-1` encodes ∞ at the storage boundary.
    IntList(Vec<i64>),
    /// List of strings.
    StrList(Vec<String>),
    /// String-keyed map — e.g. the paper's `Action` property.
    Map(Vec<(String, String)>),
}

impl Value {
    /// The integer value, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer list, if this is an [`Value::IntList`].
    pub fn as_int_list(&self) -> Option<&[i64]> {
        match self {
            Value::IntList(v) => Some(v),
            _ => None,
        }
    }

    /// The string list, if this is a [`Value::StrList`].
    pub fn as_str_list(&self) -> Option<&[String]> {
        match self {
            Value::StrList(v) => Some(v),
            _ => None,
        }
    }

    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, String)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::IntList(v) => write!(f, "{v:?}"),
            Value::StrList(v) => write!(f, "{v:?}"),
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::IntList(v)
    }
}

/// Hash-compatible key for indexing: only value variants with total equality
/// participate in indexes (floats are rejected).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum IndexKey {
    Int(i64),
    Bool(bool),
    Str(String),
}

impl IndexKey {
    pub(crate) fn from_value(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Int(i) => Some(IndexKey::Int(*i)),
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            Value::Str(s) => Some(IndexKey::Str(s.clone())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::IntList(vec![1, 2]).as_int_list(), Some(&[1, 2][..]));
        assert_eq!(Value::Int(3).as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(
            Value::Map(vec![("k".into(), "v".into())]).to_string(),
            "{k: v}"
        );
    }

    #[test]
    fn index_keys_reject_floats() {
        assert!(IndexKey::from_value(&Value::Float(1.0)).is_none());
        assert!(IndexKey::from_value(&Value::Int(1)).is_some());
    }
}
