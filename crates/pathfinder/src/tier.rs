//! Exploitability tiers assigned by the post-search witness stage.
//!
//! The static search reports every chain whose accumulated
//! Trigger_Condition is satisfiable symbolically; the witness stage
//! (`tabby-witness`) re-ranks that output by how far a concrete execution
//! attempt got. The tier lives here, next to [`crate::GadgetChain`], so the
//! chain type can carry it without `tabby-pathfinder` depending on the
//! interpreter.

use serde::{Deserialize, Serialize};

/// How far the witness stage got with a chain, from strongest to weakest
/// evidence. The derived `Ord` follows declaration order, so
/// `Witnessed > PlanFound > StaticOnly` — a *promotion* is an increase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WitnessTier {
    /// No witness plan could be synthesized (unresolvable signatures, sink
    /// absent from the catalog, or the interpreter panicked) — the chain
    /// rests on static evidence alone.
    StaticOnly,
    /// A concrete plan (alias choices + field assignments) was synthesized,
    /// but executing it did not confirm the sink call with the polluted
    /// positions live (dead guard, step budget, lost taint).
    PlanFound,
    /// The interpreter executed the plan and reached the sink statement
    /// with every Trigger_Condition position carrying attacker-controlled
    /// data.
    Witnessed,
}

impl WitnessTier {
    /// The tier's report label (matches the serde encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            WitnessTier::Witnessed => "witnessed",
            WitnessTier::PlanFound => "plan-found",
            WitnessTier::StaticOnly => "static-only",
        }
    }
}

impl std::fmt::Display for WitnessTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_order() {
        assert!(WitnessTier::Witnessed > WitnessTier::PlanFound);
        assert!(WitnessTier::PlanFound > WitnessTier::StaticOnly);
    }

    #[test]
    fn serde_uses_kebab_labels() {
        for tier in [
            WitnessTier::Witnessed,
            WitnessTier::PlanFound,
            WitnessTier::StaticOnly,
        ] {
            let json = serde_json::to_string(&tier).unwrap();
            assert_eq!(json, format!("\"{}\"", tier.as_str()));
            let back: WitnessTier = serde_json::from_str(&json).unwrap();
            assert_eq!(back, tier);
        }
    }
}
