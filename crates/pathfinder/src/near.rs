//! Near-chain detection: sink-backward paths one blocked edge away from a
//! source.
//!
//! A gadget chain dies when some CALL edge's Polluted_Position maps a
//! required Trigger_Condition position to ∞ (Formula 4 returns nothing —
//! the Expander's rejection branch). A *near-chain* is a backward path
//! that reaches a source anyway after forgiving **exactly one** such
//! rejection, remembering which edge was forgiven and which TC position
//! blocked it. These are the dormant chains of the *Sleeping Giants*
//! threat model: one upstream code change — a helper that starts
//! forwarding its argument, an added override — completes them, so a
//! version-to-version diff wants them named, not silently dropped.
//!
//! The relaxation runs as a bounded sequential pass over the same frozen
//! [`CsrSnapshot`](tabby_graph::CsrSnapshot) the chain search uses
//! (depth, expansion, and result budgets), and its output is canonically
//! ordered — byte-identical across runs regardless of how the chain sets
//! feeding a diff were computed.

use crate::search::{freeze_cpg, traverse_tc, TriggerCondition, ALIAS_LAYER, CALL_LAYER};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tabby_core::CpgSchema;
use tabby_graph::{Direction, Graph, NodeId};

/// Budgets for the near-chain relaxation pass.
#[derive(Debug, Clone)]
pub struct NearChainConfig {
    /// Maximum path length in edges (as [`crate::SearchConfig::max_depth`]).
    pub max_depth: usize,
    /// Stop after this many near-chains.
    pub max_results: usize,
    /// Abort after this many edge expansions — the relaxed walk explores
    /// unconstrained callers past the forgiven edge, so the budget is what
    /// keeps the pass "bounded".
    pub max_expansions: usize,
    /// Follow ALIAS edges (TC passes through unchanged, never blocked).
    pub use_alias_edges: bool,
}

impl Default for NearChainConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            max_results: 1_000,
            max_expansions: 2_000_000,
            use_alias_edges: true,
        }
    }
}

/// The one forgiven CALL edge of a near-chain, and why it blocks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockedEdge {
    /// The caller side of the blocked CALL edge (`Class.method`).
    pub caller: String,
    /// The callee side (`Class.method`).
    pub callee: String,
    /// The smallest Trigger_Condition position the edge's
    /// Polluted_Position maps to ∞ (0 = receiver, i = parameter *i*).
    pub position: u16,
}

/// A would-be gadget chain blocked by exactly one uncontrollable edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NearChain {
    /// Method signatures from would-be source to sink.
    pub signatures: Vec<String>,
    /// The sink's exploit-effect category.
    pub sink_category: String,
    /// The forgiven edge and its blocking TC position.
    pub blocked: BlockedEdge,
}

impl std::fmt::Display for NearChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "(near-chain, {})", self.sink_category)?;
        for sig in &self.signatures {
            writeln!(f, "  {sig}()")?;
        }
        write!(
            f,
            "  blocked at {} -> {} (TC position {} maps to \u{221e})",
            self.blocked.caller, self.blocked.callee, self.blocked.position
        )
    }
}

/// The result of a near-chain pass, including whether it ran to completion.
#[derive(Debug, Clone)]
pub struct NearChainOutcome {
    /// Near-chains in canonical order (signatures, category, blocked edge).
    pub near_chains: Vec<NearChain>,
    /// True when the expansion budget cut the walk short.
    pub truncated: bool,
    /// Edge expansions performed.
    pub expansions: usize,
}

/// Formula 4 with one forgiveness: positions that map stay in the TC;
/// blocked positions are dropped and the smallest is reported.
fn traverse_tc_relaxed(tc: &TriggerCondition, pp: &[i64]) -> (TriggerCondition, Option<u16>) {
    let mut next = TriggerCondition::new();
    let mut blocked: Option<u16> = None;
    for &pos in tc {
        let w = pp.get(pos as usize).copied().unwrap_or(-1);
        if w < 0 {
            if blocked.is_none() {
                blocked = Some(pos);
            }
        } else {
            next.insert(w as u16);
        }
    }
    (next, blocked)
}

struct State {
    node: NodeId,
    tc: TriggerCondition,
    /// The forgiven edge, once spent: `(caller, callee, position)`.
    blocked: Option<(NodeId, NodeId, u16)>,
    /// Sink-first path.
    path: Vec<NodeId>,
}

/// Finds near-chains: backward walks from each sink that reach a source
/// after forgiving exactly one Formula-4 rejection. Complete (zero
/// rejection) chains are *not* reported — they belong to the ordinary
/// chain search.
pub fn find_near_chains(
    graph: &Graph,
    schema: &CpgSchema,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &NearChainConfig,
) -> NearChainOutcome {
    let Ok(csr) = freeze_cpg(graph, schema) else {
        // A graph too large for the u32 CSR index space: report an empty,
        // truncated pass instead of panicking.
        return NearChainOutcome {
            near_chains: Vec::new(),
            truncated: true,
            expansions: 0,
        };
    };
    let mut expansions = 0usize;
    let mut truncated = false;
    // Sink-first raw hits with their forgiven edge.
    let mut raw: Vec<(Vec<NodeId>, (NodeId, NodeId, u16))> = Vec::new();

    'sinks: for (sink, tc0) in &sinks {
        let mut stack = vec![State {
            node: *sink,
            tc: tc0.clone(),
            blocked: None,
            path: vec![*sink],
        }];
        while let Some(st) = stack.pop() {
            if st.path.len() > 1 && sources.contains(&st.node) {
                // Algorithm 3's IncludeAndPrune, filtered to one-violation
                // paths: zero violations is a real chain, not a near-chain.
                if let Some(b) = st.blocked {
                    raw.push((st.path, b));
                }
                continue;
            }
            if st.path.len() - 1 >= config.max_depth {
                continue;
            }
            for (_e, caller, pp) in csr.neighbors(CALL_LAYER, st.node, Direction::Incoming) {
                expansions += 1;
                if expansions > config.max_expansions {
                    truncated = true;
                    break 'sinks;
                }
                if st.path.contains(&caller) {
                    continue;
                }
                let mut path = st.path.clone();
                path.push(caller);
                match traverse_tc(&st.tc, pp) {
                    Some(next) => stack.push(State {
                        node: caller,
                        tc: next,
                        blocked: st.blocked,
                        path,
                    }),
                    None => {
                        if st.blocked.is_none() {
                            let (next, pos) = traverse_tc_relaxed(&st.tc, pp);
                            if let Some(pos) = pos {
                                stack.push(State {
                                    node: caller,
                                    tc: next,
                                    blocked: Some((caller, st.node, pos)),
                                    path,
                                });
                            }
                        }
                    }
                }
            }
            if config.use_alias_edges {
                for (_e, other, _) in csr.neighbors(ALIAS_LAYER, st.node, Direction::Both) {
                    expansions += 1;
                    if expansions > config.max_expansions {
                        truncated = true;
                        break 'sinks;
                    }
                    if st.path.contains(&other) {
                        continue;
                    }
                    let mut path = st.path.clone();
                    path.push(other);
                    stack.push(State {
                        node: other,
                        tc: st.tc.clone(),
                        blocked: st.blocked,
                        path,
                    });
                }
            }
        }
    }

    let describe = |n: NodeId| {
        let class = graph
            .node_prop(n, schema.class_name)
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        let name = graph
            .node_prop(n, schema.name)
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        format!("{class}.{name}")
    };
    let category_of = |sink: NodeId| {
        sink_categories
            .iter()
            .find(|(n, _)| *n == sink)
            .map(|(_, c)| c.clone())
            .unwrap_or_default()
    };

    let mut near_chains: Vec<NearChain> = raw
        .into_iter()
        .map(|(path, (caller, callee, position))| {
            let sink = path.first().copied().unwrap_or(NodeId(0));
            let mut nodes = path;
            nodes.reverse();
            NearChain {
                signatures: nodes.iter().map(|&n| describe(n)).collect(),
                sink_category: category_of(sink),
                blocked: BlockedEdge {
                    caller: describe(caller),
                    callee: describe(callee),
                    position,
                },
            }
        })
        .collect();
    near_chains.sort_by(|a, b| {
        a.signatures
            .cmp(&b.signatures)
            .then_with(|| a.sink_category.cmp(&b.sink_category))
            .then_with(|| a.blocked.cmp(&b.blocked))
    });
    near_chains.dedup();
    near_chains.truncate(config.max_results);
    NearChainOutcome {
        near_chains,
        truncated,
        expansions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_graph::Value;

    /// `H -CALL-> C -CALL-> A` where the C→A edge maps the required
    /// position to ∞, plus `S -CALL-> C` giving a second (complete) route
    /// from source S2... kept minimal: one dormant route, one live route.
    fn dormant_graph() -> (Graph, CpgSchema, Vec<NodeId>) {
        let mut g = Graph::new();
        let schema = CpgSchema::install(&mut g);
        let names = ["A", "C", "H", "L"];
        let nodes: Vec<NodeId> = names
            .iter()
            .map(|n| {
                let node = g.add_node(schema.method_label);
                g.set_node_prop(node, schema.name, Value::from(*n));
                g.set_node_prop(node, schema.class_name, Value::from("near"));
                node
            })
            .collect();
        let idx = |n: &str| nodes[names.iter().position(|x| *x == n).unwrap()];
        let mut call = |from: &str, to: &str, pp: Vec<i64>| {
            let e = g.add_edge(schema.call, idx(from), idx(to));
            g.set_edge_prop(e, schema.polluted_position, Value::IntList(pp));
        };
        // The dormant route: C sanitizes the value before calling A.
        call("C", "A", vec![-1, -1]);
        // H (a source) calls C, taint flows.
        call("H", "C", vec![0, 1]);
        // The live route: L (a source) calls A with taint intact.
        call("L", "A", vec![-1, 1]);
        (g, schema, nodes)
    }

    fn run(config: &NearChainConfig) -> NearChainOutcome {
        let (g, schema, nodes) = dormant_graph();
        let sink = nodes[0]; // A
        let sources = HashSet::from([nodes[2], nodes[3]]); // H, L
        find_near_chains(
            &g,
            &schema,
            vec![(sink, TriggerCondition::from([1u16]))],
            vec![(sink, "EXEC".to_owned())],
            &sources,
            config,
        )
    }

    #[test]
    fn dormant_route_is_a_near_chain_with_named_position() {
        let outcome = run(&NearChainConfig::default());
        assert!(!outcome.truncated);
        assert_eq!(outcome.near_chains.len(), 1);
        let nc = &outcome.near_chains[0];
        assert_eq!(nc.signatures, vec!["near.H", "near.C", "near.A"]);
        assert_eq!(nc.sink_category, "EXEC");
        assert_eq!(nc.blocked.caller, "near.C");
        assert_eq!(nc.blocked.callee, "near.A");
        assert_eq!(nc.blocked.position, 1);
    }

    #[test]
    fn complete_chains_are_not_reported_as_near_chains() {
        let outcome = run(&NearChainConfig::default());
        // L -> A is a real chain (zero violations): absent here.
        assert!(outcome
            .near_chains
            .iter()
            .all(|nc| nc.signatures != vec!["near.L", "near.A"]));
    }

    #[test]
    fn expansion_budget_truncates() {
        let outcome = run(&NearChainConfig {
            max_expansions: 1,
            ..NearChainConfig::default()
        });
        assert!(outcome.truncated);
    }

    #[test]
    fn depth_bound_cuts_the_walk() {
        let outcome = run(&NearChainConfig {
            max_depth: 1,
            ..NearChainConfig::default()
        });
        assert!(outcome.near_chains.is_empty());
    }

    #[test]
    fn violation_at_the_upstream_hop_is_forgiven() {
        let (g, schema, idx) = ladder(&[vec![-1, 1], vec![-1, -1]]);
        let outcome = find_near_chains(
            &g,
            &schema,
            vec![(idx[0], TriggerCondition::from([1u16]))],
            vec![(idx[0], "EXEC".to_owned())],
            &HashSet::from([idx[2]]),
            &NearChainConfig::default(),
        );
        // The first hop survives intact and the second blocks: exactly one
        // violation, so the route is a near chain blocked at its top edge.
        assert_eq!(outcome.near_chains.len(), 1);
        assert_eq!(outcome.near_chains[0].blocked.caller, "lad.M2");
        assert_eq!(outcome.near_chains[0].blocked.callee, "lad.M1");
    }

    #[test]
    fn two_violations_are_not_forgiven() {
        // Sink TC {0,1}. Hop one kills position 1 (forgiven, TC becomes
        // {0}); hop two kills the surviving position 0 — a second
        // violation, so the route is rejected outright.
        let (g, schema, idx) = ladder(&[vec![0, -1], vec![-1]]);
        let outcome = find_near_chains(
            &g,
            &schema,
            vec![(idx[0], TriggerCondition::from([0u16, 1]))],
            vec![(idx[0], "EXEC".to_owned())],
            &HashSet::from([idx[2]]),
            &NearChainConfig::default(),
        );
        assert!(outcome.near_chains.is_empty());
    }

    /// `M2 -CALL-> M1 -CALL-> M0` with the given PPs (`pps[0]` on the
    /// M1→M0 edge); returns the node ids `[M0, M1, M2]`.
    fn ladder(pps: &[Vec<i64>]) -> (Graph, CpgSchema, Vec<NodeId>) {
        let mut g = Graph::new();
        let schema = CpgSchema::install(&mut g);
        let nodes: Vec<NodeId> = (0..=pps.len())
            .map(|i| {
                let node = g.add_node(schema.method_label);
                g.set_node_prop(node, schema.name, Value::from(format!("M{i}").as_str()));
                g.set_node_prop(node, schema.class_name, Value::from("lad"));
                node
            })
            .collect();
        for (i, pp) in pps.iter().enumerate() {
            let e = g.add_edge(schema.call, nodes[i + 1], nodes[i]);
            g.set_edge_prop(e, schema.polluted_position, Value::IntList(pp.clone()));
        }
        (g, schema, nodes)
    }

    #[test]
    fn display_names_the_blocking_position() {
        let outcome = run(&NearChainConfig::default());
        let text = outcome.near_chains[0].to_string();
        assert!(text.contains("near.H()"));
        assert!(text.contains("TC position 1"));
    }
}
