//! Reporting found chains (the output side of RQ3/RQ4).

use crate::search::GadgetChain;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The result of auditing one component or scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReport {
    /// The analyzed component/scene name.
    pub target: String,
    /// All chains reported by the detector, source-first.
    pub chains: Vec<GadgetChain>,
    /// CPG size at search time (nodes, edges).
    pub graph_size: (usize, usize),
    /// Search wall-clock time in seconds.
    pub search_seconds: f64,
}

impl AuditReport {
    /// Number of reported chains.
    pub fn result_count(&self) -> usize {
        self.chains.len()
    }

    /// Chains grouped by sink category.
    pub fn by_category(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        for c in &self.chains {
            *map.entry(c.sink_category.clone()).or_insert(0) += 1;
        }
        map
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== {} — {} chain(s), graph {}n/{}e, search {:.1}s ===",
            self.target,
            self.chains.len(),
            self.graph_size.0,
            self.graph_size.1,
            self.search_seconds
        )?;
        for (i, chain) in self.chains.iter().enumerate() {
            writeln!(f, "--- chain #{} [{}] ---", i + 1, chain.sink_category)?;
            writeln!(f, "{chain}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        AuditReport {
            target: "demo".into(),
            chains: vec![GadgetChain {
                signatures: vec!["a.A.readObject".into(), "b.B.exec".into()],
                sink_category: "EXEC".into(),
                tier: None,
                nodes: vec![],
            }],
            graph_size: (10, 20),
            search_seconds: 0.5,
        }
    }

    #[test]
    fn report_counts_and_groups() {
        let r = sample();
        assert_eq!(r.result_count(), 1);
        assert_eq!(r.by_category().get("EXEC"), Some(&1));
    }

    #[test]
    fn report_displays_chains() {
        let text = sample().to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("(source)a.A.readObject()"));
        assert!(text.contains("(sink)b.B.exec()"));
    }

    #[test]
    fn report_serializes() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.chains.len(), 1);
        assert_eq!(back.chains[0].signatures, r.chains[0].signatures);
    }
}
