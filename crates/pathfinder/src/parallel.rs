//! Parallel sink-backward search with TC-dominance memoization.
//!
//! This is the work-sharded twin of the sequential Expander/Evaluator
//! traversal in [`crate::search`]: the same Algorithm 2/3 semantics (reversed
//! CALL edges translated through Polluted_Position, ALIAS edges crossed with
//! the Trigger_Condition unchanged, per-path node uniqueness, no visited
//! set), executed as one depth-first walk per *work unit* — a `(sink,
//! first reversed-CALL hop)` pair — across a worker pool. The walk runs on a
//! [`CsrSnapshot`] frozen from the CPG once per search, so the hot loop
//! never allocates edge lists or decodes edge properties.
//!
//! # Why a memo table is sound here (and a visited set is not)
//!
//! The paper rejects GadgetInspector's global visited-node shortcut (§IV-F):
//! whether a backward walk from a method finds a source depends on the
//! Trigger_Condition it arrives with and on the depth budget it has left, so
//! "I have seen this node" is not a reusable fact. What *is* reusable is the
//! negative fact
//!
//! > starting at `node` with Trigger_Condition `TC` and `rem` edges of
//! > remaining depth, no path reaches a source,
//!
//! provided it was established *prefix-independently* — i.e. the subtree
//! exploration was complete, and every path-uniqueness cutoff it hit
//! involved only nodes at or below the subtree root, never the prefix above
//! it. Such a fact dominates any later state `(node, TC', rem')` with
//! `TC ⊆ TC'` and `rem' ≤ rem`:
//!
//! * [`crate::search::traverse_tc`] is monotone — a smaller TC survives every
//!   CALL edge a larger one survives (it checks fewer positions) and maps to
//!   a smaller TC on the other side — so the recorded exploration covered a
//!   *superset* of the edges the dominated state could take;
//! * a smaller remaining depth explores a subset of the recorded paths;
//! * result inclusion (Algorithm 3) looks only at the end node, never the TC.
//!
//! The property tests in `tests/tc_properties.rs` pin the monotonicity
//! argument down.
//!
//! All budgets are global across workers: one shared expansion counter
//! (compared against `max_expansions` exactly like the sequential
//! traversal), one shared result counter for `max_results`, and the
//! wall-clock deadline checked every 1024 expansions per worker.

use crate::search::{
    freeze_cpg, traverse_tc, SearchConfig, TriggerCondition, ALIAS_LAYER, CALL_LAYER,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use tabby_core::CpgSchema;
use tabby_graph::{CsrSnapshot, Direction, Graph, NodeId};

/// What the parallel engine hands back to [`crate::search`] for chain
/// assembly: raw node paths (sink-first, as walked) plus the global
/// counters.
pub(crate) struct EngineOutcome {
    /// Found paths, sink-first (the walk order), possibly from many workers
    /// in nondeterministic order — the caller canonicalizes.
    pub hits: Vec<Vec<NodeId>>,
    /// Edge expansions performed across all workers.
    pub expansions: usize,
    /// States pruned by the dominance memo.
    pub memo_hits: usize,
    /// The search hit its expansion budget or deadline.
    pub truncated: bool,
}

/// Locks a mutex, recovering the guard if a worker panicked while holding
/// it (the data is a monotone cache of facts, never left half-updated in a
/// way that affects soundness: a torn entry list at worst loses pruning).
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

const MEMO_SHARDS: usize = 64;

/// The sharded `(method, TriggerCondition)` dominance memo.
///
/// An entry `(tc, rem)` under `node` records the prefix-independent
/// negative fact described in the module docs. `covered` asks whether a
/// dominating entry exists; `record` inserts one, compressing away entries
/// the new fact dominates.
struct Memo {
    shards: Vec<Mutex<HashMap<NodeId, Vec<(TriggerCondition, usize)>>>>,
}

impl Memo {
    fn new() -> Self {
        Self {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, node: NodeId) -> &Mutex<HashMap<NodeId, Vec<(TriggerCondition, usize)>>> {
        &self.shards[node.0 as usize % MEMO_SHARDS]
    }

    /// Is `(node, tc, rem)` dominated by a recorded fact?
    fn covered(&self, node: NodeId, tc: &TriggerCondition, rem: usize) -> bool {
        let shard = lock_or_recover(self.shard(node));
        shard
            .get(&node)
            .is_some_and(|entries| entries.iter().any(|(t, r)| *r >= rem && t.is_subset(tc)))
    }

    /// Records the fact `(node, tc, rem)`, dropping entries it dominates.
    fn record(&self, node: NodeId, tc: &TriggerCondition, rem: usize) {
        let mut shard = lock_or_recover(self.shard(node));
        let entries = shard.entry(node).or_default();
        if entries.iter().any(|(t, r)| *r >= rem && t.is_subset(tc)) {
            return; // already dominated
        }
        entries.retain(|(t, r)| !(*r <= rem && tc.is_subset(t)));
        entries.push((tc.clone(), rem));
    }
}

/// One shard of work: continue the walk `sink → first` with the TC already
/// translated across the first reversed edge.
struct Unit {
    sink: NodeId,
    first: NodeId,
    tc: TriggerCondition,
}

/// What a finished subtree reports upward, for memo-recording decisions.
struct Sub {
    /// A source was reached somewhere below.
    found: bool,
    /// The subtree was fully explored (no budget/deadline/result-limit cut,
    /// directly or in any child).
    complete: bool,
    /// The smallest path index of any node that a path-uniqueness check
    /// blocked an expansion into, `usize::MAX` if none. Blocks at indices
    /// at/after a subtree's root are internal to the subtree (the same
    /// suffix re-blocks them under any prefix); blocks before it make the
    /// subtree's outcome prefix-dependent and unrecordable.
    min_block: usize,
}

impl Sub {
    /// A leaf verdict that constrains nothing above it.
    fn leaf(found: bool) -> Self {
        Sub {
            found,
            complete: true,
            min_block: usize::MAX,
        }
    }
}

/// The shared engine: the frozen CSR view of the CPG, limits, and
/// cross-worker state.
struct Engine<'g> {
    csr: &'g CsrSnapshot,
    sources: &'g HashSet<NodeId>,
    use_alias: bool,
    max_depth: usize,
    max_results: usize,
    max_expansions: usize,
    deadline: Option<std::time::Instant>,
    memo: Option<Memo>,
    expansions: AtomicUsize,
    memo_hits: AtomicUsize,
    found: AtomicUsize,
    truncated: AtomicBool,
    stop: AtomicBool,
}

impl<'g> Engine<'g> {
    fn new(csr: &'g CsrSnapshot, sources: &'g HashSet<NodeId>, config: &SearchConfig) -> Self {
        Engine {
            csr,
            sources,
            use_alias: config.use_alias_edges,
            max_depth: config.max_depth,
            max_results: config.max_results,
            max_expansions: config.max_expansions,
            deadline: config.deadline,
            memo: config.tc_memo.then(Memo::new),
            expansions: AtomicUsize::new(0),
            memo_hits: AtomicUsize::new(0),
            found: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        }
    }

    /// Algorithm 2: reversed CALL edges filtered through Formula 4, then
    /// ALIAS edges (both directions) with the TC unchanged — the same
    /// expansion set, in the same order, as the sequential expander. The CSR
    /// snapshot makes each step a pair of slice scans: no per-step `Vec` of
    /// edge ids, no `BTreeMap` property lookup, no Polluted_Position decode
    /// (the payloads were decoded once at freeze time).
    fn expand(&self, end: NodeId, tc: &TriggerCondition) -> Vec<(NodeId, TriggerCondition)> {
        let mut out = Vec::new();
        for (_, caller, pp) in self.csr.neighbors(CALL_LAYER, end, Direction::Incoming) {
            if let Some(next) = traverse_tc(tc, pp) {
                out.push((caller, next));
            }
        }
        if self.use_alias {
            for (_, other, _) in self.csr.neighbors(ALIAS_LAYER, end, Direction::Both) {
                out.push((other, tc.clone()));
            }
        }
        out
    }

    /// Counts one expansion against the global budget and the deadline.
    /// Returns `false` when the search must stop (the caller abandons its
    /// subtree as incomplete).
    fn charge(&self, local: &mut usize) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return false;
        }
        let n = self.expansions.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.max_expansions {
            self.truncated.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
            return false;
        }
        *local += 1;
        if *local % 1024 == 0 {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    self.truncated.store(true, Ordering::Relaxed);
                    self.stop.store(true, Ordering::Relaxed);
                    return false;
                }
            }
        }
        !self.stop.load(Ordering::Relaxed)
    }

    /// One level of seeding: expand every sink once and turn each admissible
    /// first hop into a work unit. A sink is never a result by itself
    /// (Algorithm 3 requires at least one edge), so nothing is lost by
    /// starting workers one edge in.
    fn seed(&self, sinks: &[(NodeId, TriggerCondition)], local: &mut usize) -> Vec<Unit> {
        let mut units = Vec::new();
        if self.max_depth == 0 {
            return units; // the evaluator prunes every zero-length path
        }
        'sinks: for (sink, tc) in sinks {
            for (first, next_tc) in self.expand(*sink, tc) {
                if !self.charge(local) {
                    break 'sinks;
                }
                if first == *sink {
                    continue; // NodePath uniqueness on the self-loop
                }
                units.push(Unit {
                    sink: *sink,
                    first,
                    tc: next_tc,
                });
            }
        }
        units
    }

    /// The depth-first walk below one path end. `path` runs sink-first;
    /// found source paths are pushed into `out` (still sink-first).
    fn dfs(
        &self,
        path: &mut Vec<NodeId>,
        tc: &TriggerCondition,
        out: &mut Vec<Vec<NodeId>>,
        local: &mut usize,
    ) -> Sub {
        let Some(&end) = path.last() else {
            return Sub::leaf(false);
        };
        let edges = path.len() - 1;
        // Algorithm 3: a non-trivial path ending at a source is a chain —
        // include and prune.
        if edges > 0 && self.sources.contains(&end) {
            out.push(path.clone());
            let n = self.found.fetch_add(1, Ordering::Relaxed) + 1;
            if n >= self.max_results {
                self.stop.store(true, Ordering::Relaxed);
            }
            return Sub::leaf(true);
        }
        if edges >= self.max_depth {
            return Sub::leaf(false);
        }
        let rem = self.max_depth - edges;
        if let Some(memo) = &self.memo {
            if memo.covered(end, tc, rem) {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Sub::leaf(false);
            }
        }
        let my_index = path.len() - 1;
        let mut found = false;
        let mut complete = true;
        let mut min_block = usize::MAX;
        for (target, next_tc) in self.expand(end, tc) {
            if !self.charge(local) {
                return Sub {
                    found,
                    complete: false,
                    min_block,
                };
            }
            // NodePath uniqueness, with the block's path index tracked for
            // the prefix-independence test.
            if let Some(j) = path.iter().position(|&n| n == target) {
                min_block = min_block.min(j);
                continue;
            }
            path.push(target);
            let sub = self.dfs(path, &next_tc, out, local);
            path.pop();
            found |= sub.found;
            complete &= sub.complete;
            min_block = min_block.min(sub.min_block);
        }
        if !found && complete && min_block >= my_index {
            if let Some(memo) = &self.memo {
                memo.record(end, tc, rem);
            }
        }
        Sub {
            found,
            complete,
            min_block,
        }
    }

    fn run_unit(&self, unit: &Unit, out: &mut Vec<Vec<NodeId>>, local: &mut usize) {
        let mut path = vec![unit.sink, unit.first];
        self.dfs(&mut path, &unit.tc, out, local);
    }

    fn outcome(&self, hits: Vec<Vec<NodeId>>) -> EngineOutcome {
        EngineOutcome {
            hits,
            expansions: self.expansions.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
        }
    }
}

/// Resolves the configured thread count: `0` means one worker per available
/// core.
pub(crate) fn effective_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Runs the parallel engine. The returned hit list is unordered across
/// workers; [`crate::search`] canonicalizes it, which makes the chain set
/// byte-identical to the sequential reference for any thread count and
/// either memo setting (the determinism battery in `tests/determinism.rs`
/// asserts exactly this over every workloads scene).
pub(crate) fn search(
    graph: &Graph,
    schema: &CpgSchema,
    sinks: &[(NodeId, TriggerCondition)],
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> EngineOutcome {
    // Freeze the CSR snapshot once per search; it is derived from the
    // mutable graph, shared read-only by every worker, and dropped when the
    // search returns (never cached across searches). A graph too large for
    // the u32 CSR index space degrades to an empty truncated outcome.
    let Ok(csr) = freeze_cpg(graph, schema) else {
        return EngineOutcome {
            hits: Vec::new(),
            expansions: 0,
            memo_hits: 0,
            truncated: true,
        };
    };
    search_snapshot(&csr, sinks, sources, config)
}

/// Runs the parallel engine over a caller-provided snapshot (e.g. one
/// borrowed zero-copy from a mapped flat CPG). Identical semantics to
/// [`search`] from the freeze onward — same work units, same memo, same
/// canonical chain set.
pub(crate) fn search_snapshot(
    csr: &CsrSnapshot,
    sinks: &[(NodeId, TriggerCondition)],
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> EngineOutcome {
    let threads = effective_threads(config.search_threads);
    run_with_threads(csr, sinks, sources, config, threads)
}

fn run_with_threads(
    csr: &CsrSnapshot,
    sinks: &[(NodeId, TriggerCondition)],
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
    threads: usize,
) -> EngineOutcome {
    let engine = Engine::new(csr, sources, config);
    let mut local = 0usize;
    let units = engine.seed(sinks, &mut local);
    let threads = threads.min(units.len()).max(1);

    if threads <= 1 {
        let mut out = Vec::new();
        for unit in &units {
            if engine.stop.load(Ordering::Relaxed) {
                break;
            }
            engine.run_unit(unit, &mut out, &mut local);
        }
        return engine.outcome(out);
    }

    let engine_ref = &engine;
    let joined = crossbeam::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<Unit>();
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<Vec<Vec<NodeId>>>();
        for unit in units {
            let _ = tx.send(unit);
        }
        drop(tx);
        for _ in 0..threads {
            let rx = rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move |_| {
                let mut out = Vec::new();
                let mut local = 0usize;
                while let Ok(unit) = rx.try_recv() {
                    if engine_ref.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    engine_ref.run_unit(&unit, &mut out, &mut local);
                }
                let _ = result_tx.send(out);
            });
        }
        drop(result_tx);
        result_rx.iter().flatten().collect::<Vec<_>>()
    });
    match joined {
        Ok(hits) => engine.outcome(hits),
        // A worker panicked (a bug, not an input condition): rerun
        // sequentially on a fresh engine so the caller still gets a
        // complete, correct answer.
        Err(_) => run_with_threads(csr, sinks, sources, config, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc(positions: &[u16]) -> TriggerCondition {
        positions.iter().copied().collect()
    }

    #[test]
    fn memo_covered_requires_subset_and_enough_depth() {
        let memo = Memo::new();
        let node = NodeId(7);
        memo.record(node, &tc(&[1]), 5);
        // Dominated: larger TC, less remaining depth.
        assert!(memo.covered(node, &tc(&[1]), 5));
        assert!(memo.covered(node, &tc(&[0, 1]), 4));
        // Not dominated: disjoint TC, or more remaining depth than explored.
        assert!(!memo.covered(node, &tc(&[0]), 5));
        assert!(!memo.covered(node, &tc(&[1]), 6));
        assert!(!memo.covered(NodeId(8), &tc(&[1]), 5));
    }

    #[test]
    fn memo_record_compresses_dominated_entries() {
        let memo = Memo::new();
        let node = NodeId(3);
        memo.record(node, &tc(&[0, 1]), 3);
        // A stronger fact (smaller TC, deeper) replaces the weaker one.
        memo.record(node, &tc(&[1]), 5);
        let shard = lock_or_recover(memo.shard(node));
        let entries = shard.get(&node).map(Vec::len);
        assert_eq!(entries, Some(1));
        drop(shard);
        // Re-recording a dominated fact is a no-op.
        memo.record(node, &tc(&[0, 1]), 3);
        let shard = lock_or_recover(memo.shard(node));
        assert_eq!(shard.get(&node).map(Vec::len), Some(1));
    }

    #[test]
    fn effective_threads_zero_uses_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
