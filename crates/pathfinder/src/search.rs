//! Gadget-chain search (§III-D, Algorithms 2–3).
//!
//! The search starts at each sink method node with the sink's
//! Trigger_Condition (TC) and walks *backwards*: CALL edges are crossed from
//! callee to caller, translating the TC through the edge's Polluted_Position
//! (Formula 4) and rejecting the edge if any required position maps to ∞;
//! ALIAS edges are crossed from an overriding method to the declaration its
//! callers actually invoke, passing the TC through unchanged. A path that
//! reaches a source method is a gadget chain.

use crate::sinks::{SinkCatalog, SinkSpec};
use crate::sources::SourceCatalog;
use crate::tier::WitnessTier;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use tabby_core::{Cpg, CpgSchema};
use tabby_graph::{
    CsrSnapshot, Direction, Evaluation, Expansion, Graph, GraphError, NodeId, Path, Traversal,
    Uniqueness,
};

/// A Trigger_Condition: the set of call positions (0 = receiver,
/// i = parameter *i*) that must be attacker-controllable.
pub type TriggerCondition = BTreeSet<u16>;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum chain length in edges (the `depth` of Algorithm 3).
    pub max_depth: usize,
    /// Stop after this many chains.
    pub max_results: usize,
    /// Abort after this many edge expansions (path-explosion guard).
    pub max_expansions: usize,
    /// Follow ALIAS edges (ablation: without them polymorphic chains like
    /// URLDNS disappear).
    pub use_alias_edges: bool,
    /// Node-uniqueness policy. `NodeGlobal` reproduces GadgetInspector's
    /// visited-node shortcut, which the paper criticizes (§IV-F).
    pub uniqueness: Uniqueness,
    /// Wall-clock deadline for the whole search. When it passes, the chains
    /// found so far are returned with [`SearchOutcome::truncated`] set
    /// instead of letting one pathological scan hang the phase.
    pub deadline: Option<std::time::Instant>,
    /// Worker threads for the backward search (`0` = one per available
    /// core). Work is sharded per `(sink, first reversed-CALL hop)`; the
    /// canonical chain set is byte-identical for every thread count.
    pub search_threads: usize,
    /// Prune states dominated by an already-explored
    /// `(method, TriggerCondition)` at equal-or-smaller remaining depth.
    /// Sound (unlike a visited set, §IV-F — see `parallel.rs` for the
    /// argument); never changes the chain set, only the work done.
    pub tc_memo: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            max_results: 10_000,
            max_expansions: 2_000_000,
            use_alias_edges: true,
            uniqueness: Uniqueness::NodePath,
            deadline: None,
            search_threads: 1,
            tc_memo: true,
        }
    }
}

/// The result of a chain search, including whether it ran to completion.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The chains found (all of them, or a prefix if truncated), in
    /// canonical order (sorted by signatures, then sink category, then
    /// node ids).
    pub chains: Vec<GadgetChain>,
    /// True when the search was cut short by its expansion budget or
    /// deadline — the chain list is a valid but possibly incomplete answer.
    pub truncated: bool,
    /// Edge expansions performed (Algorithm 2 steps). Deterministic for
    /// sequential runs; with multiple worker threads the exact value varies
    /// run to run (memo races), though the chain set does not.
    pub expansions: usize,
    /// States pruned by the TC-dominance memo (0 when disabled or when the
    /// sequential reference engine ran).
    pub memo_hits: usize,
}

/// A found gadget chain, reported source-first (as in Tables I and XI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GadgetChain {
    /// Method signatures from source to sink.
    pub signatures: Vec<String>,
    /// The sink's exploit-effect category.
    pub sink_category: String,
    /// Exploitability tier assigned by the post-search witness stage, when
    /// it ran (`None` on plain static scans — omitted from JSON so output
    /// stays byte-identical with witnessing off).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tier: Option<WitnessTier>,
    /// Graph nodes from source to sink.
    #[serde(skip)]
    pub nodes: Vec<NodeId>,
}

impl GadgetChain {
    /// The source method's signature.
    pub fn source(&self) -> &str {
        self.signatures.first().map(String::as_str).unwrap_or("?")
    }

    /// The sink method's signature.
    pub fn sink(&self) -> &str {
        self.signatures.last().map(String::as_str).unwrap_or("?")
    }

    /// Chain length in calls.
    pub fn len(&self) -> usize {
        self.signatures.len().saturating_sub(1)
    }

    /// Whether the chain is trivial (source == sink).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for GadgetChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, sig) in self.signatures.iter().enumerate() {
            if i == 0 {
                writeln!(f, "(source){sig}()")?;
            } else if i + 1 == self.signatures.len() {
                write!(f, "(sink){sig}()")?;
            } else {
                writeln!(f, "{sig}()")?;
            }
        }
        Ok(())
    }
}

/// Formula 4 — `f_Traverse(TC, PP) = {PP[x] | x ∈ TC}`: translate a TC
/// through a CALL edge's Polluted_Position into the caller's frame.
/// Returns `None` when any required position is ∞ (the Expander's rejection
/// branch in Algorithm 2).
pub fn traverse_tc(tc: &TriggerCondition, pp: &[i64]) -> Option<TriggerCondition> {
    let mut next = TriggerCondition::new();
    for &pos in tc {
        let w = pp.get(pos as usize).copied().unwrap_or(-1);
        if w < 0 {
            return None; // ∞: uncontrollable during the passing process
        }
        next.insert(w as u16);
    }
    Some(next)
}

/// Layer index of the CALL edge type in a search snapshot — callers of
/// [`find_chains_snapshot_detailed`] must freeze CALL as layer 0.
pub const CALL_LAYER: usize = 0;
/// Layer index of the ALIAS edge type in a search snapshot — layer 1.
pub const ALIAS_LAYER: usize = 1;

/// Freezes the CSR view of a CPG graph that the search hot loops run on:
/// CALL and ALIAS adjacency with the Polluted_Position payload pre-decoded
/// into a flat arena. Derived once per search and dropped with it (the
/// service layer may instead hand the engines a pre-built mapped snapshot
/// via [`find_chains_snapshot_detailed`]) — the mutable [`Graph`] stays the
/// construction and serialization format.
///
/// Fails only when an adjacency layer overflows the u32 CSR index space
/// (> 4 billion directed entries); callers degrade to an empty truncated
/// outcome rather than panicking.
pub(crate) fn freeze_cpg(graph: &Graph, schema: &CpgSchema) -> Result<CsrSnapshot, GraphError> {
    CsrSnapshot::freeze(
        graph,
        &[schema.call, schema.alias],
        Some(schema.polluted_position),
    )
}

/// An empty outcome marked truncated — what every engine returns when the
/// graph is too large to freeze (a valid "found nothing, gave up" answer).
fn overflow_outcome() -> SearchOutcome {
    SearchOutcome {
        chains: Vec::new(),
        truncated: true,
        expansions: 0,
        memo_hits: 0,
    }
}

/// The gadget-chain finder over a CPG (the *tabby-path-finder* role).
///
/// # Examples
///
/// See `examples/quickstart.rs` for an end-to-end run over the Fig. 1
/// program.
pub struct ChainFinder<'c> {
    cpg: &'c Cpg,
    config: SearchConfig,
}

impl<'c> ChainFinder<'c> {
    /// Creates a finder over a built CPG.
    pub fn new(cpg: &'c Cpg) -> Self {
        Self {
            cpg,
            config: SearchConfig::default(),
        }
    }

    /// Replaces the search configuration.
    #[must_use]
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Searches from the given sinks toward the given sources.
    pub fn search(
        &self,
        sinks: &[(NodeId, SinkSpec)],
        sources: &HashSet<NodeId>,
    ) -> Vec<GadgetChain> {
        find_chains_raw(
            &self.cpg.graph,
            &self.cpg.schema,
            sinks
                .iter()
                .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
                .collect(),
            sinks
                .iter()
                .map(|(n, s)| (*n, s.category.as_str().to_owned()))
                .collect(),
            sources,
            &self.config,
        )
    }
}

/// One-call convenience: annotate catalogs and search.
///
/// This is the function the benchmark harness and examples use: build the
/// CPG, then `find_gadget_chains(&mut cpg, &sinks, &sources, &config)`.
pub fn find_gadget_chains(
    cpg: &mut Cpg,
    sinks: &SinkCatalog,
    sources: &SourceCatalog,
    config: &SearchConfig,
) -> Vec<GadgetChain> {
    find_gadget_chains_detailed(cpg, sinks, sources, config).chains
}

/// Like [`find_gadget_chains`], also reporting truncation and work done.
pub fn find_gadget_chains_detailed(
    cpg: &mut Cpg,
    sinks: &SinkCatalog,
    sources: &SourceCatalog,
    config: &SearchConfig,
) -> SearchOutcome {
    let sink_nodes = sinks.annotate(cpg);
    let source_nodes = sources.annotate(cpg);
    let categories = sink_nodes
        .iter()
        .map(|(n, s)| (*n, s.category.as_str().to_owned()))
        .collect();
    find_chains_raw_detailed(
        &cpg.graph,
        &cpg.schema,
        sink_nodes
            .iter()
            .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
            .collect(),
        categories,
        &source_nodes,
        config,
    )
}

/// Like [`find_gadget_chains_detailed`], but forcing the sequential
/// reference engine regardless of [`SearchConfig::search_threads`] /
/// [`SearchConfig::tc_memo`] — the baseline that `bench search` and the
/// determinism battery compare the parallel engine against.
pub fn find_gadget_chains_reference_detailed(
    cpg: &mut Cpg,
    sinks: &SinkCatalog,
    sources: &SourceCatalog,
    config: &SearchConfig,
) -> SearchOutcome {
    let sink_nodes = sinks.annotate(cpg);
    let source_nodes = sources.annotate(cpg);
    let categories = sink_nodes
        .iter()
        .map(|(n, s)| (*n, s.category.as_str().to_owned()))
        .collect();
    find_chains_reference_detailed(
        &cpg.graph,
        &cpg.schema,
        sink_nodes
            .iter()
            .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
            .collect(),
        categories,
        &source_nodes,
        config,
    )
}

/// The raw search over any graph carrying the CPG schema (usable for
/// hand-built graphs such as the Fig. 6 example).
pub fn find_chains_raw(
    graph: &Graph,
    schema: &CpgSchema,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> Vec<GadgetChain> {
    find_chains_raw_detailed(graph, schema, sinks, sink_categories, sources, config).chains
}

/// Like [`find_chains_raw`], also reporting truncation and work done.
///
/// Dispatch: with the default `NodePath` uniqueness this runs the
/// work-sharded engine in [`crate::parallel`] (even at one thread — the
/// chain set is byte-identical to [`find_chains_reference_detailed`]
/// either way, which `tests/determinism.rs` asserts over every workloads
/// scene). `NodeGlobal` and `None` uniqueness keep a sequential traversal
/// (a global visited set is inherently order-dependent and has no sound
/// parallel decomposition) but still run it over the frozen CSR snapshot.
pub fn find_chains_raw_detailed(
    graph: &Graph,
    schema: &CpgSchema,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> SearchOutcome {
    if config.uniqueness != Uniqueness::NodePath {
        return find_chains_traversal_csr(graph, schema, sinks, sink_categories, sources, config);
    }
    let outcome = crate::parallel::search(graph, schema, &sinks, sources, config);
    let chains = assemble_chains(
        graph,
        schema,
        &sink_categories,
        outcome.hits,
        config.max_results,
    );
    SearchOutcome {
        chains,
        truncated: outcome.truncated,
        expansions: outcome.expansions,
        memo_hits: outcome.memo_hits,
    }
}

/// Searches a pre-built CSR snapshot directly — the zero-copy entry the
/// service layer uses when a corpus's CPG is already on disk in the flat
/// mmap format: no [`Graph`] is reconstructed, adjacency and the pre-decoded
/// Polluted_Position arena are read straight off the mapping.
///
/// `csr` must follow the search layer convention ([`CALL_LAYER`] = CALL,
/// [`ALIAS_LAYER`] = ALIAS, payload = Polluted_Position) — exactly what
/// [`freeze_cpg`] builds and what `FlatCpg::snapshot(&[call, alias])`
/// reorders a stored flat graph into. `describe` renders a node's
/// `Class.method` signature (from the flat node columns, or any other
/// source); it is only called on nodes of found chains, never in the hot
/// loop.
///
/// Dispatch mirrors [`find_chains_raw_detailed`] — the work-sharded engine
/// for `NodePath` uniqueness, the sequential CSR traversal otherwise — so
/// the outcome is byte-identical to a search over the graph the snapshot
/// was frozen from, which the determinism battery and the flat round-trip
/// tests assert.
pub fn find_chains_snapshot_detailed(
    csr: &CsrSnapshot,
    describe: &dyn Fn(NodeId) -> String,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> SearchOutcome {
    if config.uniqueness != Uniqueness::NodePath {
        return find_chains_traversal_snapshot(
            csr,
            describe,
            sinks,
            sink_categories,
            sources,
            config,
        );
    }
    let outcome = crate::parallel::search_snapshot(csr, &sinks, sources, config);
    let chains = assemble_chains_with(describe, &sink_categories, outcome.hits, config.max_results);
    SearchOutcome {
        chains,
        truncated: outcome.truncated,
        expansions: outcome.expansions,
        memo_hits: outcome.memo_hits,
    }
}

/// The sequential reference engine: the Expander/Evaluator traversal of
/// Algorithms 2–3, verbatim, with no memoization and no work sharding.
/// The determinism battery and `bench search` compare the parallel engine
/// against this.
pub fn find_chains_reference_detailed(
    graph: &Graph,
    schema: &CpgSchema,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> SearchOutcome {
    let call = schema.call;
    let alias = schema.alias;
    let pp_key = schema.polluted_position;
    let use_alias = config.use_alias_edges;
    let max_depth = config.max_depth;
    let sources_for_eval = sources.clone();

    // Algorithm 2: expand backwards over CALL (incoming) and ALIAS
    // (outgoing), translating the TC through PP on CALL edges.
    let expander = move |g: &Graph, path: &Path, tc: &TriggerCondition| {
        let end = path.end();
        let mut out = Vec::new();
        for e in g.edges_of(end, Direction::Incoming, Some(call)) {
            let caller = g.other_node(e, end);
            let pp = g
                .edge_prop(e, pp_key)
                .and_then(|v| v.as_int_list())
                .unwrap_or(&[]);
            if let Some(next) = traverse_tc(tc, pp) {
                out.push(Expansion {
                    edge: e,
                    node: caller,
                    state: next,
                });
            }
        }
        if use_alias {
            // ALIAS edges are crossed in both directions, passing the TC
            // through unchanged: override→declared reaches the node callers
            // actually invoke (the URLDNS hop, Fig. 4), and declared→override
            // reaches the bodies dispatch may select (the C→C1 hop of the
            // paper's Fig. 6 walk-through).
            for e in g.edges_of(end, Direction::Both, Some(alias)) {
                out.push(Expansion {
                    edge: e,
                    node: g.other_node(e, end),
                    state: tc.clone(),
                });
            }
        }
        out
    };

    // Algorithm 3: a path ending at a source is a gadget chain; otherwise
    // continue while depth allows.
    let evaluator = move |_: &Graph, path: &Path, _tc: &TriggerCondition| {
        if path.len() > 0 && sources_for_eval.contains(&path.end()) {
            Evaluation::IncludeAndPrune
        } else if path.len() < max_depth {
            Evaluation::ExcludeAndContinue
        } else {
            Evaluation::ExcludeAndPrune
        }
    };

    let traversal = Traversal::new(expander, evaluator)
        .uniqueness(config.uniqueness)
        .max_results(config.max_results)
        .max_expansions(config.max_expansions)
        .deadline(config.deadline);
    let (results, stats) = traversal.run_many_with_stats(graph, sinks);

    let raw: Vec<Vec<NodeId>> = results
        .into_iter()
        .map(|(path, _tc)| path.nodes().to_vec())
        .collect();
    let chains = assemble_chains(graph, schema, &sink_categories, raw, config.max_results);
    SearchOutcome {
        chains,
        truncated: stats.truncated,
        expansions: stats.expansions,
        memo_hits: 0,
    }
}

/// The sequential Expander/Evaluator traversal over the frozen CSR
/// snapshot — the engine behind the `NodeGlobal` and `None` uniqueness
/// modes, which have no sound parallel decomposition but still benefit from
/// the allocation-free adjacency. The snapshot preserves `edges_of` order,
/// so expansion order — and therefore every result, including the
/// order-dependent visited-set cutoffs of `NodeGlobal` — matches
/// [`find_chains_reference_detailed`] exactly.
fn find_chains_traversal_csr(
    graph: &Graph,
    schema: &CpgSchema,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> SearchOutcome {
    let Ok(csr) = freeze_cpg(graph, schema) else {
        return overflow_outcome();
    };
    let describe = graph_describe(graph, schema);
    find_chains_traversal_snapshot(&csr, &describe, sinks, sink_categories, sources, config)
}

/// The same sequential traversal over a caller-provided snapshot. The
/// `&Graph` handed to [`Traversal`] is a throwaway empty graph: the
/// expander and evaluator only consult the captured CSR, so the traversal
/// never touches it.
fn find_chains_traversal_snapshot(
    csr: &CsrSnapshot,
    describe: &dyn Fn(NodeId) -> String,
    sinks: Vec<(NodeId, TriggerCondition)>,
    sink_categories: Vec<(NodeId, String)>,
    sources: &HashSet<NodeId>,
    config: &SearchConfig,
) -> SearchOutcome {
    let csr_ref = csr;
    let use_alias = config.use_alias_edges;
    let max_depth = config.max_depth;
    let sources_for_eval = sources.clone();

    // Algorithm 2 on the snapshot: the `&Graph` the traversal hands the
    // expander is ignored — adjacency and pre-decoded Polluted_Position come
    // from the captured CSR.
    let expander = move |_: &Graph, path: &Path, tc: &TriggerCondition| {
        let end = path.end();
        let mut out = Vec::new();
        for (e, caller, pp) in csr_ref.neighbors(CALL_LAYER, end, Direction::Incoming) {
            if let Some(next) = traverse_tc(tc, pp) {
                out.push(Expansion {
                    edge: e,
                    node: caller,
                    state: next,
                });
            }
        }
        if use_alias {
            for (e, other, _) in csr_ref.neighbors(ALIAS_LAYER, end, Direction::Both) {
                out.push(Expansion {
                    edge: e,
                    node: other,
                    state: tc.clone(),
                });
            }
        }
        out
    };

    let evaluator = move |_: &Graph, path: &Path, _tc: &TriggerCondition| {
        if path.len() > 0 && sources_for_eval.contains(&path.end()) {
            Evaluation::IncludeAndPrune
        } else if path.len() < max_depth {
            Evaluation::ExcludeAndContinue
        } else {
            Evaluation::ExcludeAndPrune
        }
    };

    let traversal = Traversal::new(expander, evaluator)
        .uniqueness(config.uniqueness)
        .max_results(config.max_results)
        .max_expansions(config.max_expansions)
        .deadline(config.deadline);
    let dummy = Graph::new();
    let (results, stats) = traversal.run_many_with_stats(&dummy, sinks);

    let raw: Vec<Vec<NodeId>> = results
        .into_iter()
        .map(|(path, _tc)| path.nodes().to_vec())
        .collect();
    let chains = assemble_chains_with(describe, &sink_categories, raw, config.max_results);
    SearchOutcome {
        chains,
        truncated: stats.truncated,
        expansions: stats.expansions,
        memo_hits: 0,
    }
}

/// Sorts chains into the canonical report order — by signatures, then sink
/// category, then node ids — and drops duplicates. Both engines, the
/// [`crate::report::AuditReport`] serializer, and the service cache all emit
/// this order, so any two complete runs over the same graph compare
/// byte-identical as JSON regardless of thread count, memo setting, or
/// traversal order.
pub fn canonical_chain_order(chains: &mut Vec<GadgetChain>) {
    chains.sort_by(|a, b| {
        a.signatures
            .cmp(&b.signatures)
            .then_with(|| a.sink_category.cmp(&b.sink_category))
            .then_with(|| a.nodes.cmp(&b.nodes))
    });
    chains.dedup_by(|a, b| {
        if a.nodes.is_empty() && b.nodes.is_empty() {
            // Deserialized chains carry no node ids (`nodes` is #[serde(skip)]).
            a.signatures == b.signatures && a.sink_category == b.sink_category
        } else {
            a.nodes == b.nodes
        }
    });
}

/// The `Class.method` description of a node, read from the graph's
/// property maps — the describe closure of the graph-backed engines.
fn graph_describe<'g>(graph: &'g Graph, schema: &'g CpgSchema) -> impl Fn(NodeId) -> String + 'g {
    move |n: NodeId| {
        let class = graph
            .node_prop(n, schema.class_name)
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        let name = graph
            .node_prop(n, schema.name)
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        format!("{class}.{name}")
    }
}

/// Turns raw sink-first node paths into source-first [`GadgetChain`]s in
/// canonical order — the single assembly point shared by both engines.
fn assemble_chains(
    graph: &Graph,
    schema: &CpgSchema,
    sink_categories: &[(NodeId, String)],
    raw: Vec<Vec<NodeId>>,
    max_results: usize,
) -> Vec<GadgetChain> {
    assemble_chains_with(
        &graph_describe(graph, schema),
        sink_categories,
        raw,
        max_results,
    )
}

/// [`assemble_chains`] with the node-description source abstracted, so the
/// snapshot-based entry can render signatures from flat node columns
/// without a [`Graph`] in hand.
fn assemble_chains_with(
    describe: &dyn Fn(NodeId) -> String,
    sink_categories: &[(NodeId, String)],
    raw: Vec<Vec<NodeId>>,
    max_results: usize,
) -> Vec<GadgetChain> {
    let category_of = |sink: NodeId| {
        sink_categories
            .iter()
            .find(|(n, _)| *n == sink)
            .map(|(_, c)| c.clone())
            .unwrap_or_default()
    };

    let mut chains = Vec::new();
    for path in raw {
        let sink = match path.first() {
            Some(&n) => n,
            None => continue,
        };
        // Paths run sink → source; report source → sink.
        let mut nodes = path;
        nodes.reverse();
        let signatures: Vec<String> = nodes.iter().map(|&n| describe(n)).collect();
        chains.push(GadgetChain {
            signatures,
            sink_category: category_of(sink),
            tier: None,
            nodes,
        });
    }
    canonical_chain_order(&mut chains);
    chains.truncate(max_results);
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_graph::Value;

    /// Builds the Fig. 6 graph: method nodes A…J with CALL/ALIAS edges.
    ///
    /// Sink A (TC [1]); source H. Expected: chains through C/C1 and G's
    /// branch is cut by depth, E and I are cut by the Expander (∞ in PP).
    fn fig6() -> (Graph, CpgSchema, Vec<NodeId>) {
        let mut g = Graph::new();
        let schema = CpgSchema::install(&mut g);
        let names = ["A", "C", "C1", "C2", "E", "G", "H", "I", "E1", "J"];
        let nodes: Vec<NodeId> = names
            .iter()
            .map(|n| {
                let node = g.add_node(schema.method_label);
                g.set_node_prop(node, schema.name, Value::from(*n));
                g.set_node_prop(node, schema.class_name, Value::from("fig6"));
                node
            })
            .collect();
        let idx = |n: &str| nodes[names.iter().position(|x| *x == n).unwrap()];
        let mut call = |from: &str, to: &str, pp: Vec<i64>| {
            let e = g.add_edge(schema.call, idx(from), idx(to));
            g.set_edge_prop(e, schema.polluted_position, Value::IntList(pp));
        };
        // C calls A with the TC-relevant parameter flowing from C's param 1.
        call("C", "A", vec![-1, 1]);
        // E calls A but the relevant position is ∞ — Expander cuts it.
        call("E", "A", vec![-1, -1]);
        // G calls C2; C2 aliases C. G is only reachable through a long tail
        // that exceeds the depth bound — Evaluator cuts it.
        call("G", "C2", vec![-1, 1]);
        // H (the source) calls C1.
        call("H", "C1", vec![0, 0]);
        // I calls C1 but with ∞ at the required position.
        call("I", "C1", vec![-1, -1]);
        // J calls E1.
        call("J", "E1", vec![0, 1]);
        let mut alias = |from: &str, to: &str| {
            g.add_edge(schema.alias, idx(from), idx(to));
        };
        // C1 and C2 are overrides whose declared target is C.
        alias("C1", "C");
        alias("C2", "C");
        // E1 aliases E.
        alias("E1", "E");
        (g, schema, nodes)
    }

    fn chains_from_fig6(max_depth: usize) -> Vec<GadgetChain> {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0]; // A
        let source = nodes[6]; // H
        let config = SearchConfig {
            max_depth,
            ..SearchConfig::default()
        };
        find_chains_raw(
            &g,
            &schema,
            vec![(sink, TriggerCondition::from([1u16]))],
            vec![(sink, "EXEC".to_owned())],
            &HashSet::from([source]),
            &config,
        )
    }

    #[test]
    fn fig6_finds_the_h_chain() {
        let chains = chains_from_fig6(8);
        // H -CALL-> C1 -ALIAS-> C -CALL-> A.
        assert_eq!(chains.len(), 1);
        assert_eq!(
            chains[0].signatures,
            vec!["fig6.H", "fig6.C1", "fig6.C", "fig6.A"]
        );
        assert_eq!(chains[0].sink_category, "EXEC");
        assert_eq!(chains[0].len(), 3);
    }

    #[test]
    fn fig6_expander_excludes_uncontrollable_branches() {
        // Even with generous depth, E and I never appear: the TC becomes ∞
        // crossing their CALL edges (the I-CALL->C1 example of §III-D).
        let chains = chains_from_fig6(20);
        for chain in &chains {
            assert!(!chain.signatures.contains(&"fig6.E".to_owned()));
            assert!(!chain.signatures.contains(&"fig6.I".to_owned()));
        }
    }

    #[test]
    fn fig6_evaluator_cuts_by_depth() {
        // Depth 2 cannot reach H (3 edges needed).
        let chains = chains_from_fig6(2);
        assert!(chains.is_empty());
    }

    #[test]
    fn expansion_budget_truncates_search_with_partial_chains() {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0];
        let source = nodes[6];
        let config = SearchConfig {
            max_expansions: 1,
            ..SearchConfig::default()
        };
        let outcome = find_chains_raw_detailed(
            &g,
            &schema,
            vec![(sink, TriggerCondition::from([1u16]))],
            vec![(sink, "EXEC".to_owned())],
            &HashSet::from([source]),
            &config,
        );
        assert!(outcome.truncated);
        assert!(outcome.expansions > config.max_expansions);
        // The chain needs 3 hops; one expansion cannot reach the source.
        assert!(outcome.chains.is_empty());
    }

    #[test]
    fn complete_search_is_not_truncated() {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0];
        let source = nodes[6];
        let outcome = find_chains_raw_detailed(
            &g,
            &schema,
            vec![(sink, TriggerCondition::from([1u16]))],
            vec![(sink, "EXEC".to_owned())],
            &HashSet::from([source]),
            &SearchConfig::default(),
        );
        assert!(!outcome.truncated);
        assert_eq!(outcome.chains.len(), 1);
        assert!(outcome.expansions > 0);
    }

    #[test]
    fn traverse_tc_formula4() {
        // TC {1} through PP [∞, 2]: position 1 holds caller-param-2.
        let tc = TriggerCondition::from([1u16]);
        let next = traverse_tc(&tc, &[-1, 2]).unwrap();
        assert_eq!(next, TriggerCondition::from([2u16]));
        // TC {0,1} through PP [0, -1]: position 1 is ∞ — rejected.
        let tc = TriggerCondition::from([0u16, 1]);
        assert!(traverse_tc(&tc, &[0, -1]).is_none());
        // Out-of-range positions are treated as ∞.
        let tc = TriggerCondition::from([3u16]);
        assert!(traverse_tc(&tc, &[0, 1]).is_none());
    }

    #[test]
    fn tc_zero_maps_to_receiver() {
        // TC {1} through PP [.., 0]: the callee's param-1 comes from the
        // caller's receiver — the new TC is {0}.
        let tc = TriggerCondition::from([1u16]);
        let next = traverse_tc(&tc, &[-1, 0]).unwrap();
        assert_eq!(next, TriggerCondition::from([0u16]));
    }

    #[test]
    fn alias_disabled_loses_polymorphic_chain() {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0];
        let source = nodes[6];
        let config = SearchConfig {
            use_alias_edges: false,
            ..SearchConfig::default()
        };
        let chains = find_chains_raw(
            &g,
            &schema,
            vec![(sink, TriggerCondition::from([1u16]))],
            vec![(sink, "EXEC".to_owned())],
            &HashSet::from([source]),
            &config,
        );
        assert!(chains.is_empty());
    }

    #[test]
    fn parallel_engine_matches_reference_on_fig6() {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0];
        let source = nodes[6];
        let sinks = vec![(sink, TriggerCondition::from([1u16]))];
        let cats = vec![(sink, "EXEC".to_owned())];
        let sources = HashSet::from([source]);
        let reference = find_chains_reference_detailed(
            &g,
            &schema,
            sinks.clone(),
            cats.clone(),
            &sources,
            &SearchConfig::default(),
        );
        let want = serde_json::to_string(&reference.chains).unwrap();
        for threads in [1usize, 2, 8] {
            for memo in [true, false] {
                let config = SearchConfig {
                    search_threads: threads,
                    tc_memo: memo,
                    ..SearchConfig::default()
                };
                let outcome = find_chains_raw_detailed(
                    &g,
                    &schema,
                    sinks.clone(),
                    cats.clone(),
                    &sources,
                    &config,
                );
                assert!(!outcome.truncated);
                let got = serde_json::to_string(&outcome.chains).unwrap();
                assert_eq!(got, want, "threads={threads} memo={memo}");
            }
        }
    }

    #[test]
    fn csr_traversal_matches_reference_on_every_uniqueness_mode() {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0];
        let source = nodes[6];
        let sinks = vec![(sink, TriggerCondition::from([1u16]))];
        let cats = vec![(sink, "EXEC".to_owned())];
        let sources = HashSet::from([source]);
        for uniqueness in [
            Uniqueness::None,
            Uniqueness::NodePath,
            Uniqueness::NodeGlobal,
        ] {
            let config = SearchConfig {
                uniqueness,
                ..SearchConfig::default()
            };
            let reference = find_chains_reference_detailed(
                &g,
                &schema,
                sinks.clone(),
                cats.clone(),
                &sources,
                &config,
            );
            let csr = find_chains_traversal_csr(
                &g,
                &schema,
                sinks.clone(),
                cats.clone(),
                &sources,
                &config,
            );
            let want = serde_json::to_string(&reference.chains).unwrap();
            let got = serde_json::to_string(&csr.chains).unwrap();
            assert_eq!(got, want, "uniqueness={uniqueness:?}");
            assert_eq!(
                csr.expansions, reference.expansions,
                "uniqueness={uniqueness:?}"
            );
        }
    }

    /// Two callers of the same sink converge on a shared caller ladder:
    /// the second walk over the ladder is pruned by the dominance memo
    /// (same method, same TC, same remaining depth) without changing the
    /// (empty) chain set.
    #[test]
    fn memo_prunes_shared_substructure() {
        let mut g = Graph::new();
        let schema = CpgSchema::install(&mut g);
        let names = ["A", "M1", "M2", "X", "Y"];
        let nodes: Vec<NodeId> = names
            .iter()
            .map(|n| {
                let node = g.add_node(schema.method_label);
                g.set_node_prop(node, schema.name, tabby_graph::Value::from(*n));
                g.set_node_prop(node, schema.class_name, tabby_graph::Value::from("memo"));
                node
            })
            .collect();
        let idx = |n: &str| nodes[names.iter().position(|x| *x == n).unwrap()];
        let mut call = |from: &str, to: &str| {
            let e = g.add_edge(schema.call, idx(from), idx(to));
            g.set_edge_prop(
                e,
                schema.polluted_position,
                tabby_graph::Value::IntList(vec![-1, 1]),
            );
        };
        call("M1", "A");
        call("M2", "A");
        call("X", "M1");
        call("X", "M2");
        call("Y", "X");
        let sinks = vec![(idx("A"), TriggerCondition::from([1u16]))];
        let cats = vec![(idx("A"), "EXEC".to_owned())];
        let sources = HashSet::new(); // nothing to find: pure search work
        let run = |memo: bool| {
            find_chains_raw_detailed(
                &g,
                &schema,
                sinks.clone(),
                cats.clone(),
                &sources,
                &SearchConfig {
                    tc_memo: memo,
                    ..SearchConfig::default()
                },
            )
        };
        let with_memo = run(true);
        let without = run(false);
        assert!(with_memo.chains.is_empty() && without.chains.is_empty());
        assert!(with_memo.memo_hits > 0);
        assert_eq!(without.memo_hits, 0);
        assert!(with_memo.expansions < without.expansions);
    }

    #[test]
    fn snapshot_entry_matches_graph_entry_on_fig6() {
        let (g, schema, nodes) = fig6();
        let sink = nodes[0];
        let source = nodes[6];
        let sinks = vec![(sink, TriggerCondition::from([1u16]))];
        let cats = vec![(sink, "EXEC".to_owned())];
        let sources = HashSet::from([source]);
        let csr = freeze_cpg(&g, &schema).unwrap();
        let describe = graph_describe(&g, &schema);
        for uniqueness in [
            Uniqueness::None,
            Uniqueness::NodePath,
            Uniqueness::NodeGlobal,
        ] {
            let config = SearchConfig {
                uniqueness,
                ..SearchConfig::default()
            };
            let want = find_chains_raw_detailed(
                &g,
                &schema,
                sinks.clone(),
                cats.clone(),
                &sources,
                &config,
            );
            let got = find_chains_snapshot_detailed(
                &csr,
                &describe,
                sinks.clone(),
                cats.clone(),
                &sources,
                &config,
            );
            assert_eq!(
                serde_json::to_string(&got.chains).unwrap(),
                serde_json::to_string(&want.chains).unwrap(),
                "uniqueness={uniqueness:?}"
            );
            assert_eq!(got.truncated, want.truncated);
        }
    }

    #[test]
    fn canonical_order_sorts_and_dedups() {
        let chain = |sig: &[&str], node_ids: &[u32]| GadgetChain {
            signatures: sig.iter().map(|s| (*s).to_owned()).collect(),
            sink_category: "EXEC".to_owned(),
            tier: None,
            nodes: node_ids.iter().map(|&i| NodeId(i)).collect(),
        };
        let mut chains = vec![
            chain(&["b.B.f", "z.Z.sink"], &[2, 9]),
            chain(&["a.A.f", "z.Z.sink"], &[1, 9]),
            chain(&["b.B.f", "z.Z.sink"], &[2, 9]),
        ];
        canonical_chain_order(&mut chains);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].signatures[0], "a.A.f");
        assert_eq!(chains[1].signatures[0], "b.B.f");
    }

    #[test]
    fn display_renders_source_and_sink_markers() {
        let chain = GadgetChain {
            signatures: vec![
                "a.Src.readObject".to_owned(),
                "b.Mid.call".to_owned(),
                "c.Sink.exec".to_owned(),
            ],
            sink_category: "EXEC".to_owned(),
            tier: None,
            nodes: vec![],
        };
        let text = chain.to_string();
        assert!(text.starts_with("(source)a.Src.readObject()"));
        assert!(text.ends_with("(sink)c.Sink.exec()"));
    }
}
