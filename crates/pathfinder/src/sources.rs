//! The source-method catalog: deserialization entry points.
//!
//! Sources are "various methods that have a deserialization effect" (§II-A):
//! methods the deserialization machinery invokes automatically on
//! attacker-supplied objects. The default set is the Java-native
//! serialization callbacks of serializable classes; XStream-style scenarios
//! add the implicit entry points (`hashCode`, `equals`, `compareTo`,
//! `toString`) that collection reconstruction triggers.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tabby_core::Cpg;
use tabby_graph::{NodeId, Value};

/// One source pattern: a method name + arity that the deserializer calls.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Method name.
    pub method: String,
    /// Required parameter count.
    pub param_count: usize,
    /// Whether the declaring class must be serializable.
    pub requires_serializable: bool,
}

impl SourceSpec {
    fn new(method: &str, param_count: usize, requires_serializable: bool) -> Self {
        Self {
            method: method.to_owned(),
            param_count,
            requires_serializable,
        }
    }
}

/// The catalog of source methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceCatalog {
    entries: Vec<SourceSpec>,
}

impl Default for SourceCatalog {
    fn default() -> Self {
        Self::native_serialization()
    }
}

impl SourceCatalog {
    /// The Java-native serialization callbacks: `readObject`,
    /// `readExternal`, `readResolve`, `readObjectNoData`, `validateObject`,
    /// and `finalize` of serializable classes.
    pub fn native_serialization() -> Self {
        Self {
            entries: vec![
                SourceSpec::new("readObject", 1, true),
                SourceSpec::new("readExternal", 1, true),
                SourceSpec::new("readResolve", 0, true),
                SourceSpec::new("readObjectNoData", 0, true),
                SourceSpec::new("validateObject", 0, true),
                SourceSpec::new("finalize", 0, true),
            ],
        }
    }

    /// The extended set used for XStream-style scenarios, where collection
    /// reconstruction also triggers `hashCode`/`equals`/`compareTo`/
    /// `toString` on arbitrary (not necessarily `Serializable`) classes.
    pub fn extended() -> Self {
        let mut c = Self::native_serialization();
        c.entries.push(SourceSpec::new("hashCode", 0, true));
        c.entries.push(SourceSpec::new("equals", 1, true));
        c.entries.push(SourceSpec::new("compareTo", 1, true));
        c.entries.push(SourceSpec::new("toString", 0, true));
        c
    }

    /// Adds a custom source pattern.
    pub fn push(&mut self, spec: SourceSpec) {
        self.entries.push(spec);
    }

    /// The entries.
    pub fn entries(&self) -> &[SourceSpec] {
        &self.entries
    }

    /// All matching method nodes in the CPG. Also annotates them with
    /// `IS_SOURCE`.
    pub fn annotate(&self, cpg: &mut Cpg) -> HashSet<NodeId> {
        let is_source = cpg.graph.prop_key("IS_SOURCE");
        let mut found = HashSet::new();
        for spec in &self.entries {
            for node in cpg.methods_named(&spec.method) {
                let param_ok = cpg
                    .graph
                    .node_prop(node, cpg.schema.param_count)
                    .and_then(|v| v.as_int())
                    == Some(spec.param_count as i64);
                if !param_ok {
                    continue;
                }
                if spec.requires_serializable {
                    let serializable = cpg
                        .graph
                        .node_prop(node, cpg.schema.is_serializable)
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false);
                    if !serializable {
                        continue;
                    }
                }
                // Phantom methods cannot start a chain: there is no body to
                // deserialize into.
                let phantom = cpg
                    .graph
                    .node_prop(node, cpg.schema.is_phantom)
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                if phantom {
                    continue;
                }
                found.insert(node);
            }
        }
        for &node in &found {
            cpg.graph.set_node_prop(node, is_source, Value::from(true));
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_core::AnalysisConfig;
    use tabby_ir::{JType, ProgramBuilder};

    fn program_with_sources() -> tabby_ir::Program {
        let mut pb = ProgramBuilder::new();
        // Serializable class with readObject: a source.
        let mut cb = pb.class("p.Ser").serializable();
        let ois = cb.object_type("java.io.ObjectInputStream");
        let mut mb = cb.method("readObject", vec![ois.clone()], JType::Void);
        mb.nop();
        mb.finish();
        cb.finish();
        // Non-serializable class with readObject: not a source.
        let mut cb = pb.class("p.Plain");
        let ois = cb.object_type("java.io.ObjectInputStream");
        let mut mb = cb.method("readObject", vec![ois], JType::Void);
        mb.nop();
        mb.finish();
        cb.finish();
        // Serializable with readResolve (0 params): a source.
        let mut cb = pb.class("p.Res").serializable();
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("readResolve", vec![], obj.clone());
        mb.ret(mb.c_null());
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn native_sources_respect_serializability_and_arity() {
        let p = program_with_sources();
        let mut cpg = Cpg::build(&p, AnalysisConfig::default());
        let sources = SourceCatalog::native_serialization().annotate(&mut cpg);
        assert_eq!(sources.len(), 2);
        let names: HashSet<String> = sources.iter().map(|n| cpg.describe(*n)).collect();
        assert!(names.contains("p.Ser.readObject"));
        assert!(names.contains("p.Res.readResolve"));
        assert!(!names.contains("p.Plain.readObject"));
    }

    #[test]
    fn extended_catalog_adds_collection_entry_points() {
        let ext = SourceCatalog::extended();
        assert!(ext.entries().iter().any(|s| s.method == "hashCode"));
        assert!(ext.entries().len() > SourceCatalog::native_serialization().entries().len());
    }
}
