//! # tabby-pathfinder — gadget-chain search over the code property graph
//!
//! The *tabby-path-finder* role of the paper (§III-D): given a built
//! [`tabby_core::Cpg`], annotate **sink** methods (Table VII, with
//! Trigger_Conditions) and **source** methods (deserialization entry
//! points), then search backwards from every sink with the
//! Expander/Evaluator pair of Algorithms 2–3, translating the
//! Trigger_Condition through each CALL edge's Polluted_Position (Formula 4).
//!
//! # Examples
//!
//! ```
//! use tabby_core::{AnalysisConfig, Cpg};
//! use tabby_ir::{JType, ProgramBuilder};
//! use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};
//!
//! // A one-hop chain: Evil.readObject -> Runtime.exec(cmd from a field).
//! let mut pb = ProgramBuilder::new();
//! let mut cb = pb.class("demo.Evil").serializable();
//! let string = cb.object_type("java.lang.String");
//! let ois = cb.object_type("java.io.ObjectInputStream");
//! cb.field("cmd", string.clone());
//! let mut mb = cb.method("readObject", vec![ois], JType::Void);
//! let this = mb.this();
//! let cmd = mb.fresh();
//! mb.get_field(cmd, this, "demo.Evil", "cmd", string.clone());
//! let rt = mb.fresh();
//! let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], string.clone());
//! mb.call_static(Some(rt), get_rt, &[]);
//! let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], JType::Void);
//! mb.call_virtual(None, rt, exec, &[cmd.into()]);
//! mb.finish();
//! cb.finish();
//! let program = pb.build();
//!
//! let mut cpg = Cpg::build(&program, AnalysisConfig::default());
//! let chains = find_gadget_chains(
//!     &mut cpg,
//!     &SinkCatalog::paper(),
//!     &SourceCatalog::native_serialization(),
//!     &SearchConfig::default(),
//! );
//! assert_eq!(chains.len(), 1);
//! assert_eq!(chains[0].source(), "demo.Evil.readObject");
//! assert_eq!(chains[0].sink(), "java.lang.Runtime.exec");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod near;
mod parallel;
pub mod report;
pub mod search;
pub mod sinks;
pub mod sources;
pub mod tier;

pub use near::{find_near_chains, BlockedEdge, NearChain, NearChainConfig, NearChainOutcome};
pub use report::AuditReport;
pub use search::{
    canonical_chain_order, find_chains_raw, find_chains_raw_detailed,
    find_chains_reference_detailed, find_chains_snapshot_detailed, find_gadget_chains,
    find_gadget_chains_detailed, find_gadget_chains_reference_detailed, traverse_tc, ChainFinder,
    GadgetChain, SearchConfig, SearchOutcome, TriggerCondition, ALIAS_LAYER, CALL_LAYER,
};
pub use sinks::{SinkCatalog, SinkCategory, SinkSpec};
pub use sources::{SourceCatalog, SourceSpec};
pub use tier::WitnessTier;
