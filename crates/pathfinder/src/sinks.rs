//! The sink-method catalog (Table VII) with Trigger_Conditions.
//!
//! The paper summarizes 38 sink methods across eight exploit-effect
//! categories and tags each with a **Trigger_Condition** — which call
//! positions (0 = receiver, i = parameter *i*) must be attacker-controllable
//! for the call to have its effect (Table VI). The thirteen rows printed in
//! Table VII appear here verbatim; the remainder fill out the categories the
//! paper names, following the released tool's sink set.

use serde::{Deserialize, Serialize};
use tabby_core::Cpg;
use tabby_graph::{NodeId, Value};

/// Exploit-effect category of a sink (the `Type` column of Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SinkCategory {
    File,
    Code,
    Jndi,
    Exec,
    Xxe,
    Ssrf,
    Jdv,
    Jdbc,
}

impl SinkCategory {
    /// The paper's label for the category.
    pub fn as_str(self) -> &'static str {
        match self {
            SinkCategory::File => "FILE",
            SinkCategory::Code => "CODE",
            SinkCategory::Jndi => "JNDI",
            SinkCategory::Exec => "EXEC",
            SinkCategory::Xxe => "XXE",
            SinkCategory::Ssrf => "SSRF",
            SinkCategory::Jdv => "JDV",
            SinkCategory::Jdbc => "JDBC",
        }
    }
}

/// One sink-method entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SinkSpec {
    /// Declaring class (dotted binary name).
    pub class: String,
    /// Method name.
    pub method: String,
    /// Exploit-effect category.
    pub category: SinkCategory,
    /// Trigger_Condition: positions that must be controllable
    /// (0 = receiver, i = parameter *i*).
    pub trigger_condition: Vec<u16>,
}

impl SinkSpec {
    fn new(class: &str, method: &str, category: SinkCategory, tc: &[u16]) -> Self {
        Self {
            class: class.to_owned(),
            method: method.to_owned(),
            category,
            trigger_condition: tc.to_vec(),
        }
    }
}

/// The catalog of sink methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SinkCatalog {
    entries: Vec<SinkSpec>,
}

impl Default for SinkCatalog {
    fn default() -> Self {
        Self::paper()
    }
}

impl SinkCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The 38-entry catalog of the paper (§III-D). The 13 sinks printed in
    /// Table VII are verbatim, including the paper's `java.net.ClassLoader`
    /// spelling.
    pub fn paper() -> Self {
        use SinkCategory::*;
        let entries = vec![
            // --- the 13 rows of Table VII, verbatim -------------------------
            SinkSpec::new("java.nio.file.Files", "newOutputStream", File, &[1]),
            SinkSpec::new("java.io.File", "delete", File, &[0]),
            SinkSpec::new("java.lang.reflect.Method", "invoke", Code, &[0, 1]),
            SinkSpec::new("java.net.ClassLoader", "loadClass", Code, &[0, 1]),
            SinkSpec::new("javax.naming.Context", "lookup", Jndi, &[1]),
            SinkSpec::new("java.rmi.registry.Registry", "lookup", Jndi, &[1]),
            SinkSpec::new("java.lang.Runtime", "exec", Exec, &[1]),
            SinkSpec::new("java.lang.ProcessImpl", "start", Exec, &[1]),
            SinkSpec::new("javax.xml.parsers.DocumentBuilder", "parse", Xxe, &[1]),
            SinkSpec::new("javax.xml.transform.Transformer", "transform", Xxe, &[1]),
            SinkSpec::new("java.net.InetAddress", "getByName", Ssrf, &[1]),
            SinkSpec::new("java.net.URL", "openConnection", Ssrf, &[0]),
            SinkSpec::new("java.lang.Object", "readObject", Jdv, &[0]),
            // --- the rest of the 38 -----------------------------------------
            SinkSpec::new("java.io.FileOutputStream", "<init>", File, &[1]),
            SinkSpec::new("java.io.FileInputStream", "<init>", File, &[1]),
            SinkSpec::new("java.nio.file.Files", "delete", File, &[1]),
            SinkSpec::new("java.nio.file.Files", "write", File, &[1]),
            SinkSpec::new("java.io.File", "renameTo", File, &[0]),
            SinkSpec::new("java.lang.ClassLoader", "defineClass", Code, &[1]),
            SinkSpec::new("java.lang.Class", "forName", Code, &[1]),
            SinkSpec::new("javax.script.ScriptEngine", "eval", Code, &[1]),
            SinkSpec::new("java.beans.Expression", "<init>", Code, &[1]),
            SinkSpec::new("bsh.Interpreter", "eval", Code, &[1]),
            SinkSpec::new("groovy.lang.GroovyShell", "evaluate", Code, &[1]),
            SinkSpec::new(
                "org.mozilla.javascript.Context",
                "evaluateString",
                Code,
                &[2],
            ),
            SinkSpec::new(
                "com.sun.org.apache.xalan.internal.xsltc.trax.TemplatesImpl",
                "newTransformer",
                Code,
                &[0],
            ),
            SinkSpec::new("java.lang.System", "loadLibrary", Code, &[1]),
            SinkSpec::new("javax.naming.InitialContext", "doLookup", Jndi, &[1]),
            SinkSpec::new(
                "javax.management.remote.JMXConnectorFactory",
                "connect",
                Jndi,
                &[1],
            ),
            SinkSpec::new("java.lang.ProcessBuilder", "start", Exec, &[0]),
            SinkSpec::new("org.xml.sax.XMLReader", "parse", Xxe, &[1]),
            SinkSpec::new(
                "javax.xml.stream.XMLInputFactory",
                "createXMLStreamReader",
                Xxe,
                &[1],
            ),
            SinkSpec::new("java.net.URL", "openStream", Ssrf, &[0]),
            SinkSpec::new("java.net.Socket", "<init>", Ssrf, &[1]),
            SinkSpec::new("java.net.URLConnection", "getInputStream", Ssrf, &[0]),
            SinkSpec::new("java.io.ObjectInputStream", "readObject", Jdv, &[0]),
            SinkSpec::new("java.sql.DriverManager", "getConnection", Jdbc, &[1]),
            SinkSpec::new("javax.sql.DataSource", "getConnection", Jdbc, &[0]),
        ];
        debug_assert_eq!(entries.len(), 38);
        Self { entries }
    }

    /// Adds a custom sink.
    pub fn push(&mut self, spec: SinkSpec) {
        self.entries.push(spec);
    }

    /// The entries.
    pub fn entries(&self) -> &[SinkSpec] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds the catalog entry matching a method node's class and name.
    pub fn match_node(&self, cpg: &Cpg, node: NodeId) -> Option<&SinkSpec> {
        let class = cpg
            .graph
            .node_prop(node, cpg.schema.class_name)?
            .as_str()?
            .to_owned();
        let name = cpg.graph.node_prop(node, cpg.schema.name)?.as_str()?;
        self.entries
            .iter()
            .find(|s| s.class == class && s.method == name)
    }

    /// All method nodes in the CPG matching a catalog entry, with their
    /// Trigger_Conditions. Also annotates the nodes with `IS_SINK`,
    /// `SINK_CATEGORY`, and `TRIGGER_CONDITION` properties (the tagging step
    /// of §III-D).
    pub fn annotate(&self, cpg: &mut Cpg) -> Vec<(NodeId, SinkSpec)> {
        let is_sink = cpg.graph.prop_key("IS_SINK");
        let category = cpg.graph.prop_key("SINK_CATEGORY");
        let tc_key = cpg.graph.prop_key("TRIGGER_CONDITION");
        let mut found = Vec::new();
        for spec in &self.entries {
            for node in cpg.methods_named(&spec.method) {
                let class_matches = cpg
                    .graph
                    .node_prop(node, cpg.schema.class_name)
                    .and_then(|v| v.as_str())
                    == Some(spec.class.as_str());
                if class_matches {
                    found.push((node, spec.clone()));
                }
            }
        }
        for (node, spec) in &found {
            cpg.graph.set_node_prop(*node, is_sink, Value::from(true));
            cpg.graph
                .set_node_prop(*node, category, Value::from(spec.category.as_str()));
            cpg.graph.set_node_prop(
                *node,
                tc_key,
                Value::IntList(
                    spec.trigger_condition
                        .iter()
                        .map(|&p| i64::from(p))
                        .collect(),
                ),
            );
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_38_sinks() {
        assert_eq!(SinkCatalog::paper().len(), 38);
    }

    #[test]
    fn table7_rows_are_verbatim() {
        let c = SinkCatalog::paper();
        let find = |class: &str, method: &str| {
            c.entries()
                .iter()
                .find(|s| s.class == class && s.method == method)
                .unwrap_or_else(|| panic!("missing sink {class}.{method}"))
        };
        assert_eq!(
            find("java.lang.reflect.Method", "invoke").trigger_condition,
            vec![0, 1]
        );
        assert_eq!(find("java.lang.Runtime", "exec").trigger_condition, vec![1]);
        assert_eq!(find("java.io.File", "delete").trigger_condition, vec![0]);
        assert_eq!(
            find("java.net.URL", "openConnection").trigger_condition,
            vec![0]
        );
        assert_eq!(
            find("java.net.InetAddress", "getByName").category,
            SinkCategory::Ssrf
        );
        assert_eq!(
            find("javax.naming.Context", "lookup").category,
            SinkCategory::Jndi
        );
    }

    #[test]
    fn categories_cover_the_paper_set() {
        let c = SinkCatalog::paper();
        for cat in [
            SinkCategory::File,
            SinkCategory::Code,
            SinkCategory::Jndi,
            SinkCategory::Exec,
            SinkCategory::Xxe,
            SinkCategory::Ssrf,
            SinkCategory::Jdv,
        ] {
            assert!(
                c.entries().iter().any(|s| s.category == cat),
                "no sink in category {}",
                cat.as_str()
            );
        }
    }
}
