//! Property tests for Formula 4 (`traverse_tc`) — the algebra that makes
//! TC-dominance memoization sound.
//!
//! The memo in the parallel engine prunes a state `(method, TC, rem)` when
//! some explored `(method, TC*, rem*)` dominates it: `TC* ⊆ TC` and
//! `rem* ≥ rem`. That is only sound because:
//!
//! 1. subset-dominance is a partial order on Trigger_Conditions,
//! 2. propagation through a Polluted_Position array is monotone w.r.t.
//!    that order (a dominating TC survives every edge the dominated one
//!    survives, and maps to a dominating TC on the other side), and
//! 3. any required position mapped to ∞ kills the path outright — there is
//!    no way for a *larger* TC to resurrect an edge a smaller one lost.
//!
//! These are exactly the three properties exercised here, over arbitrary
//! TCs and PP arrays.

use proptest::prelude::*;
use tabby_pathfinder::{traverse_tc, TriggerCondition};

fn arb_tc() -> impl Strategy<Value = TriggerCondition> {
    proptest::collection::btree_set(0u16..8, 0..6)
}

fn arb_pp() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-2i64..8, 0..10)
}

proptest! {
    /// Subset dominance is a partial order: reflexive, antisymmetric,
    /// transitive.
    #[test]
    fn dominance_is_a_partial_order(a in arb_tc(), b in arb_tc(), c in arb_tc()) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
    }

    /// Monotonicity: if `small ⊆ large` and the large TC survives a PP
    /// array, the small one survives it too and its image is dominated by
    /// the large one's image. (This is why a memo entry recorded for a
    /// small TC covers every larger TC.)
    #[test]
    fn propagation_is_monotone(small in arb_tc(), extra in arb_tc(), pp in arb_pp()) {
        let large: TriggerCondition = small.union(&extra).copied().collect();
        match traverse_tc(&large, &pp) {
            Some(large_image) => {
                let small_image = traverse_tc(&small, &pp);
                prop_assert!(small_image.is_some());
                if let Some(small_image) = small_image {
                    prop_assert!(small_image.is_subset(&large_image));
                }
            }
            None => {
                // The large TC died; the small one may live or die, but if
                // it lives its image must still be a valid translation of
                // only its own positions.
                if let Some(image) = traverse_tc(&small, &pp) {
                    prop_assert!(image.len() <= small.len());
                }
            }
        }
    }

    /// Any position mapped to ∞ (negative, or out of range) kills the
    /// whole path: `traverse_tc` returns `None`, never a partial set.
    #[test]
    fn infinity_kills_the_path(tc in arb_tc(), pp in arb_pp()) {
        let dead = tc.iter().any(|&pos| {
            pp.get(pos as usize).copied().unwrap_or(-1) < 0
        });
        let image = traverse_tc(&tc, &pp);
        if dead {
            prop_assert!(image.is_none());
        } else {
            // Fully alive: the image is exactly {PP[x] | x ∈ TC}.
            let want: TriggerCondition = tc
                .iter()
                .map(|&pos| pp[pos as usize] as u16)
                .collect();
            prop_assert_eq!(image, Some(want));
        }
    }

    /// The empty TC survives every edge and stays empty — the bottom
    /// element of the dominance order.
    #[test]
    fn empty_tc_is_bottom(pp in arb_pp()) {
        prop_assert_eq!(traverse_tc(&TriggerCondition::new(), &pp), Some(TriggerCondition::new()));
    }
}
