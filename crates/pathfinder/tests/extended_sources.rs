//! The extended source catalog (XStream-style entry points): collection
//! reconstruction triggers `toString`/`hashCode`/`equals`/`compareTo`
//! directly, so those methods of serializable classes become chain heads —
//! this is how the paper's JDK8 experiment finds the XStream blacklist
//! bypasses (§IV-D2).

use tabby_core::{AnalysisConfig, Cpg};
use tabby_ir::{JType, Program, ProgramBuilder};
use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};

/// A serializable class whose `toString` execs a field — with no
/// `BadAttributeValueExpException`-style bridge in the program.
fn tostring_only_program() -> Program {
    let mut pb = ProgramBuilder::new();
    pb.class("java.io.Serializable").interface().finish();
    let mut cb = pb.class("x.Renderer").serializable();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let process = cb.object_type("java.lang.Process");
    cb.field("template", object.clone());
    let mut mb = cb.method("toString", vec![], string.clone());
    let this = mb.this();
    let t = mb.fresh();
    mb.get_field(t, this, "x.Renderer", "template", object.clone());
    let cmd = mb.fresh();
    mb.cast(cmd, string.clone(), t);
    let rt = mb.fresh();
    mb.copy(rt, mb.c_null());
    let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], process);
    mb.call_virtual(None, rt, exec, &[cmd.into()]);
    let s = mb.fresh();
    mb.cast(s, string.clone(), t);
    mb.ret(s);
    mb.finish();
    cb.finish();
    pb.build()
}

#[test]
fn native_catalog_misses_tostring_heads() {
    let p = tostring_only_program();
    let mut cpg = Cpg::build(&p, AnalysisConfig::default());
    let chains = find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    );
    assert!(
        chains.is_empty(),
        "native sources should not fire: {chains:?}"
    );
}

#[test]
fn extended_catalog_finds_tostring_heads() {
    let p = tostring_only_program();
    let mut cpg = Cpg::build(&p, AnalysisConfig::default());
    let chains = find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::extended(),
        &SearchConfig::default(),
    );
    assert_eq!(chains.len(), 1);
    assert_eq!(chains[0].source(), "x.Renderer.toString");
    assert_eq!(chains[0].sink(), "java.lang.Runtime.exec");
}

#[test]
fn custom_sink_catalog_extension() {
    // Downstream users can extend the sink catalog (the paper's
    // customization workflow); a bespoke sink becomes searchable.
    let mut pb = ProgramBuilder::new();
    pb.class("java.io.Serializable").interface().finish();
    let mut cb = pb.class("x.Logger").serializable();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    cb.field("dest", object.clone());
    let mut mb = cb.method("readObject", vec![object.clone()], JType::Void);
    let this = mb.this();
    let d = mb.fresh();
    mb.get_field(d, this, "x.Logger", "dest", object.clone());
    let s = mb.fresh();
    mb.cast(s, string.clone(), d);
    let callee = mb.sig("com.vendor.Audit", "record", &[string.clone()], JType::Void);
    mb.call_static(None, callee, &[s.into()]);
    mb.finish();
    cb.finish();
    let p = pb.build();
    let mut cpg = Cpg::build(&p, AnalysisConfig::default());
    let mut sinks = SinkCatalog::new();
    sinks.push(tabby_pathfinder::SinkSpec {
        class: "com.vendor.Audit".to_owned(),
        method: "record".to_owned(),
        category: tabby_pathfinder::SinkCategory::File,
        trigger_condition: vec![1],
    });
    let chains = find_gadget_chains(
        &mut cpg,
        &sinks,
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    );
    assert_eq!(chains.len(), 1);
    assert_eq!(chains[0].sink(), "com.vendor.Audit.record");
}
