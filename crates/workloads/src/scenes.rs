//! The Table X development-environment scenes: Spring, JDK8, Tomcat,
//! Jetty, and Apache Dubbo.
//!
//! Each scene is a larger composite "deployment": the JDK model, the
//! scene's own gadget-bearing classes (including, for Spring, the exact
//! Table XI chain skeletons through `SimpleJndiBeanFactory` /
//! `JndiLocatorSupport`), guard-dead fakes that account for the paper's
//! per-scene FPR, and random-library filler scaled to the scene's code
//! size. Scenes are scored with the effectiveness oracle rather than a
//! pair manifest, because several effective routes share a (source, sink)
//! pair (e.g. the three JNDI target-source chains of Table XI).

use crate::component::Component;
use crate::gadget_kit::{add_gadget, Sink, Trigger, Twist};
use crate::jdk::add_jdk_model;
use crate::random_lib::{generate_into, RandomLibConfig};
use crate::recursion::{add_recursion_web, RecursionWebConfig};
use crate::search_web::{add_search_web, SearchWebConfig};
use crate::truth::GroundTruth;
use tabby_ir::{JType, ProgramBuilder};

/// The paper's Table X row for one scene.
#[derive(Debug, Clone)]
pub struct SceneRow {
    /// Version column.
    pub version: &'static str,
    /// "Jar file count".
    pub jar_count: u32,
    /// "Code size (MB)".
    pub code_mb: f64,
    /// "Result count".
    pub result: usize,
    /// "effective gadget chains".
    pub effective: usize,
    /// "FPR" (percent).
    pub fpr_pct: f64,
    /// "searching time (s)".
    pub search_s: f64,
}

/// A development scene: the component plus its Table X row.
#[derive(Debug)]
pub struct Scene {
    /// The analyzable composite.
    pub component: Component,
    /// The paper's row.
    pub paper: SceneRow,
}

fn filler_for(pb: &mut ProgramBuilder, pkg: &str, code_mb: f64, seed: u64) {
    // ~12 filler classes per MB keeps scene CPGs proportional to the
    // paper's code sizes at laptop scale.
    let classes = (code_mb * 12.0) as usize;
    generate_into(
        pb,
        pkg,
        &RandomLibConfig {
            seed,
            classes,
            ..RandomLibConfig::default()
        },
    );
}

/// Scene-proportional search-web shape: bigger scenes get deeper, wider
/// caller lattices (the JDK8 scene's web is the `bench search` headline
/// workload — tens of millions of backward paths for the memo-less
/// sequential engine). Smoke scenes share one tiny lattice so debug-mode
/// test batteries can run every engine configuration on every scene.
fn web_for(code_mb: f64, smoke: bool) -> SearchWebConfig {
    if smoke {
        return SearchWebConfig::smoke();
    }
    let width = ((code_mb / 4.0) as usize).clamp(8, 24);
    if code_mb > 50.0 {
        SearchWebConfig {
            levels: 11,
            width,
            fanin: 4,
        }
    } else {
        SearchWebConfig {
            levels: 8,
            width,
            fanin: 3,
        }
    }
}

/// Filler plus search web plus recursion web, scaled down ~12× for smoke
/// scenes. None of the three adds chains, so the smoke variant of a scene
/// reports the same chain set as the full one — only build and search cost
/// shrink.
fn scene_bulk(pb: &mut ProgramBuilder, pkg: &str, code_mb: f64, seed: u64, smoke: bool) {
    let filler_mb = if smoke {
        (code_mb * 0.08).max(0.5)
    } else {
        code_mb
    };
    filler_for(pb, pkg, filler_mb, seed);
    add_search_web(pb, pkg, &web_for(code_mb, smoke));
    // Multi-method recursion SCCs for the summarizer's wave scheduler —
    // every scene (smoke included) exercises non-trivial condensation.
    let recursion = if smoke {
        RecursionWebConfig::smoke()
    } else {
        RecursionWebConfig {
            cliques: 6,
            clique_size: 8,
        }
    };
    add_recursion_web(pb, pkg, &recursion);
}

/// The Spring framework scene (Table X row 1; chains of Table XI).
pub fn spring() -> Scene {
    spring_opts(false)
}

fn spring_opts(smoke: bool) -> Scene {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);

    // --- the Table XI JNDI machinery --------------------------------------
    // JndiLocatorSupport.lookup(name) -> Context.lookup(name).
    let mut cb = pb.class("org.springframework.jndi.JndiLocatorSupport");
    let string = cb.object_type("java.lang.String");
    let object = cb.object_type("java.lang.Object");
    let ctx_ty = cb.object_type("javax.naming.Context");
    cb.field("ctx", ctx_ty.clone());
    let mut mb = cb.method("lookup", vec![string.clone()], object.clone());
    let this = mb.this();
    let name = mb.param(0);
    let ctx = mb.fresh();
    mb.get_field(
        ctx,
        this,
        "org.springframework.jndi.JndiLocatorSupport",
        "ctx",
        ctx_ty.clone(),
    );
    let lookup = mb.sig(
        "javax.naming.Context",
        "lookup",
        &[string.clone()],
        object.clone(),
    );
    let r = mb.fresh();
    mb.call_interface(Some(r), ctx, lookup, &[name.into()]);
    mb.ret(r);
    mb.finish();
    cb.finish();

    // SimpleJndiBeanFactory.getBean(name) -> JndiLocatorSupport.lookup.
    let mut cb = pb
        .class("org.springframework.jndi.support.SimpleJndiBeanFactory")
        .extends("org.springframework.jndi.JndiLocatorSupport")
        .serializable();
    let string = cb.object_type("java.lang.String");
    let object = cb.object_type("java.lang.Object");
    let mut mb = cb.method("getBean", vec![string.clone()], object.clone());
    let this = mb.this();
    let name = mb.param(0);
    let lookup = mb.sig(
        "org.springframework.jndi.JndiLocatorSupport",
        "lookup",
        &[string.clone()],
        object.clone(),
    );
    let r = mb.fresh();
    mb.call_virtual(Some(r), this, lookup, &[name.into()]);
    mb.ret(r);
    mb.finish();
    cb.finish();

    // TargetSource interface + the three target sources of Table XI.
    let mut cb = pb.class("org.springframework.aop.TargetSource").interface();
    let object = cb.object_type("java.lang.Object");
    cb.method("getTarget", vec![], object).abstract_().finish();
    cb.finish();
    for ts in ["LazyInitTargetSource", "PrototypeTargetSource"] {
        let fqcn = format!("org.springframework.aop.target.{ts}");
        let mut cb = pb
            .class(&fqcn)
            .serializable()
            .implements(&["org.springframework.aop.TargetSource"]);
        let string = cb.object_type("java.lang.String");
        let object = cb.object_type("java.lang.Object");
        let bf_ty = cb.object_type("org.springframework.jndi.support.SimpleJndiBeanFactory");
        cb.field("beanFactory", bf_ty.clone());
        cb.field("targetBeanName", string.clone());
        let mut mb = cb.method("getTarget", vec![], object.clone());
        let this = mb.this();
        let bf = mb.fresh();
        mb.get_field(bf, this, &fqcn, "beanFactory", bf_ty.clone());
        let name = mb.fresh();
        mb.get_field(name, this, &fqcn, "targetBeanName", string.clone());
        let get_bean = mb.sig(
            "org.springframework.jndi.support.SimpleJndiBeanFactory",
            "getBean",
            &[string.clone()],
            object.clone(),
        );
        let r = mb.fresh();
        mb.call_virtual(Some(r), bf, get_bean, &[name.into()]);
        mb.ret(r);
        mb.finish();
        cb.finish();
    }
    // JndiObjectTargetSource (CVE-2020-11619 shape): getTarget JNDI-derefs
    // directly.
    let fqcn = "org.springframework.aop.target.JndiObjectTargetSource";
    let mut cb = pb
        .class(fqcn)
        .serializable()
        .extends("org.springframework.jndi.JndiLocatorSupport")
        .implements(&["org.springframework.aop.TargetSource"]);
    let string = cb.object_type("java.lang.String");
    let object = cb.object_type("java.lang.Object");
    cb.field("jndiName", string.clone());
    let mut mb = cb.method("getTarget", vec![], object.clone());
    let this = mb.this();
    let name = mb.fresh();
    mb.get_field(name, this, fqcn, "jndiName", string.clone());
    let lookup = mb.sig(
        "org.springframework.jndi.JndiLocatorSupport",
        "lookup",
        &[string.clone()],
        object.clone(),
    );
    let r = mb.fresh();
    mb.call_virtual(Some(r), this, lookup, &[name.into()]);
    mb.ret(r);
    mb.finish();
    cb.finish();

    // The deserialization entry: AdvisedSupport restores its target source.
    let fqcn = "org.springframework.aop.framework.AdvisedSupport";
    let mut cb = pb.class(fqcn).serializable();
    let ois = cb.object_type("java.io.ObjectInputStream");
    let ts_ty = cb.object_type("org.springframework.aop.TargetSource");
    let object = cb.object_type("java.lang.Object");
    cb.field("targetSource", ts_ty.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let ts = mb.fresh();
    mb.get_field(ts, this, fqcn, "targetSource", ts_ty.clone());
    let get_target = mb.sig(
        "org.springframework.aop.TargetSource",
        "getTarget",
        &[],
        object,
    );
    let t = mb.fresh();
    mb.call_interface(Some(t), ts, get_target, &[]);
    mb.finish();
    cb.finish();

    // --- further effective chains (spring-tx / logback-core flavored) -----
    add_gadget(
        &mut pb,
        "org.springframework.transaction.jta.JtaTransactionManager",
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.springframework.core.SerializableTypeWrapper",
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "ch.qos.logback.core.db.DriverManagerConnectionSource",
        Trigger::ReadObject,
        &Sink::GetConnection,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.springframework.beans.factory.support.AutowireUtils",
        Trigger::ReadObject,
        &Sink::ForName,
        Twist::Plain,
    );
    // --- guard-dead fakes (the paper's 30 % scene FPR) ---------------------
    for (i, sink) in [Sink::Exec, Sink::Invoke, Sink::ForName].iter().enumerate() {
        add_gadget(
            &mut pb,
            &format!("org.springframework.web.support.Callback{i}"),
            Trigger::ReadObject,
            sink,
            Twist::Guarded,
        );
    }
    scene_bulk(&mut pb, "org.springframework.gen", 25.5, 101, smoke);

    Scene {
        component: Component::new(
            "Spring",
            pb.build(),
            GroundTruth::default(),
            &["org.springframework", "ch.qos.logback"],
        )
        .with_notes("Table XI chains: TargetSource.getTarget → SimpleJndiBeanFactory.getBean → JndiLocatorSupport.lookup → Context.lookup"),
        paper: SceneRow {
            version: "2.4.3",
            jar_count: 66,
            code_mb: 25.5,
            result: 10,
            effective: 7,
            fpr_pct: 30.0,
            search_s: 8.2,
        },
    }
}

/// The JDK8 scene (Table X row 2): URLDNS plus XStream-bypass style chains.
pub fn jdk8() -> Scene {
    jdk8_opts(false)
}

fn jdk8_opts(smoke: bool) -> Scene {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    // URLDNS comes from the JDK model itself and fires from all three
    // map-rehash sources (HashMap / Hashtable / HashSet); plant the other
    // seven effective chains (five of which model the XStream blacklist
    // bypasses reported as CVEs).
    add_gadget(
        &mut pb,
        "com.sun.rowset.JdbcRowSetImpl",
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "com.sun.jndi.ldap.LdapAttribute",
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "javax.swing.UIDefaults$ProxyLazyValue",
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "com.sun.org.apache.xpath.internal.objects.XString",
        Trigger::Equals,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "javax.activation.DataHandler",
        Trigger::ReadObject,
        &Sink::SecondaryDeserialization,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "javax.management.openmbean.TabularDataSupport",
        Trigger::ToString,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "sun.swing.SwingLazyValue",
        Trigger::Compare,
        &Sink::Invoke,
        Twist::Plain,
    );
    // Three guard-dead fakes (paper FPR 23.1 %).
    for (i, sink) in [Sink::Exec, Sink::ForName, Sink::Invoke].iter().enumerate() {
        add_gadget(
            &mut pb,
            &format!("com.sun.internal.Callback{i}"),
            Trigger::ReadObject,
            sink,
            Twist::Guarded,
        );
    }
    scene_bulk(&mut pb, "sun.gen", 102.2, 102, smoke);

    Scene {
        component: Component::new(
            "JDK8",
            pb.build(),
            GroundTruth::default(),
            &["java.", "javax.", "com.sun.", "sun."],
        )
        .with_notes("URLDNS from the runtime model plus nine planted chains; five model XStream blacklist bypasses"),
        paper: SceneRow {
            version: "8u242",
            jar_count: 19,
            code_mb: 102.2,
            result: 13,
            effective: 10,
            fpr_pct: 23.1,
            search_s: 10.2,
        },
    }
}

/// The Tomcat scene (Table X row 3).
pub fn tomcat() -> Scene {
    tomcat_opts(false)
}

fn tomcat_opts(smoke: bool) -> Scene {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    add_gadget(
        &mut pb,
        "org.apache.catalina.ha.session.DeltaRequest",
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.apache.catalina.users.MemoryUserDatabase",
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.apache.catalina.core.ApplicationDispatcher",
        Trigger::ReadObject,
        &Sink::ForName,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.apache.catalina.session.StandardSession",
        Trigger::ReadObject,
        &Sink::Exec,
        Twist::Guarded,
    );
    scene_bulk(&mut pb, "org.apache.catalina.gen", 7.9, 103, smoke);
    Scene {
        component: Component::new(
            "Tomcat",
            pb.build(),
            GroundTruth::default(),
            &["org.apache.catalina"],
        ),
        paper: SceneRow {
            version: "8.5.47",
            jar_count: 25,
            code_mb: 7.9,
            result: 4,
            effective: 3,
            fpr_pct: 25.0,
            search_s: 3.6,
        },
    }
}

/// The Jetty scene (Table X row 4).
pub fn jetty() -> Scene {
    jetty_opts(false)
}

fn jetty_opts(smoke: bool) -> Scene {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    add_gadget(
        &mut pb,
        "org.eclipse.jetty.util.Scanner",
        Trigger::ReadObject,
        &Sink::Delete,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.eclipse.jetty.plus.jndi.NamingEntry",
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.eclipse.jetty.util.component.AttributeContainerMap",
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.eclipse.jetty.http.pathmap.PathSpecSet",
        Trigger::ToString,
        &Sink::Invoke,
        Twist::Plain,
    );
    for (i, sink) in [Sink::Exec, Sink::ForName].iter().enumerate() {
        add_gadget(
            &mut pb,
            &format!("org.eclipse.jetty.server.handler.Callback{i}"),
            Trigger::ReadObject,
            sink,
            Twist::Guarded,
        );
    }
    scene_bulk(&mut pb, "org.eclipse.jetty.gen", 10.3, 104, smoke);
    Scene {
        component: Component::new(
            "Jetty",
            pb.build(),
            GroundTruth::default(),
            &["org.eclipse.jetty"],
        ),
        paper: SceneRow {
            version: "9.4.36",
            jar_count: 67,
            code_mb: 10.3,
            result: 6,
            effective: 4,
            fpr_pct: 33.3,
            search_s: 4.1,
        },
    }
}

/// The Apache Dubbo scene (Table X row 5).
pub fn dubbo() -> Scene {
    dubbo_opts(false)
}

fn dubbo_opts(smoke: bool) -> Scene {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    add_gadget(
        &mut pb,
        "org.apache.dubbo.common.bytecode.Proxy",
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.apache.dubbo.registry.support.SkipFailbackWrapperException",
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    add_gadget(
        &mut pb,
        "org.apache.dubbo.rpc.cluster.directory.StaticDirectory",
        Trigger::ReadObject,
        &Sink::SecondaryDeserialization,
        Twist::Plain,
    );
    for (i, sink) in [Sink::Exec, Sink::ForName].iter().enumerate() {
        add_gadget(
            &mut pb,
            &format!("org.apache.dubbo.remoting.transport.Callback{i}"),
            Trigger::ReadObject,
            sink,
            Twist::Guarded,
        );
    }
    scene_bulk(&mut pb, "org.apache.dubbo.gen", 13.6, 105, smoke);
    Scene {
        component: Component::new(
            "Apache Dubbo",
            pb.build(),
            GroundTruth::default(),
            &["org.apache.dubbo"],
        )
        .with_notes(
            "the reported Dubbo chains led to CVE-2021-43297, CVE-2022-39198, CVE-2023-23638",
        ),
        paper: SceneRow {
            version: "3.0.2",
            jar_count: 15,
            code_mb: 13.6,
            result: 5,
            effective: 3,
            fpr_pct: 40.0,
            search_s: 5.5,
        },
    }
}

/// All Table X scenes, in row order.
pub fn all() -> Vec<Scene> {
    vec![spring(), jdk8(), tomcat(), jetty(), dubbo()]
}

/// Smoke variants of every scene: the same gadget machinery, fakes, and
/// paper rows, with filler scaled down ~12× and a tiny search web — sized
/// so a debug-mode test can scan all five under every engine configuration.
/// Chain sets are identical to the full scenes (bulk never adds chains).
pub fn smoke() -> Vec<Scene> {
    vec![
        spring_opts(true),
        jdk8_opts(true),
        tomcat_opts(true),
        jetty_opts(true),
        dubbo_opts(true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_build() {
        for scene in all() {
            assert!(
                scene.component.program.classes().len() > 50,
                "{}",
                scene.component.name
            );
        }
    }

    #[test]
    fn spring_scene_contains_table11_machinery() {
        let s = spring();
        assert!(s
            .component
            .program
            .class_by_str("org.springframework.jndi.support.SimpleJndiBeanFactory")
            .is_some());
        assert!(s
            .component
            .program
            .class_by_str("org.springframework.aop.target.LazyInitTargetSource")
            .is_some());
    }
}
