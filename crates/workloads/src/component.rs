//! A workload component: a synthetic library plus its ground truth.

use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use tabby_ir::Program;
use tabby_pathfinder::GadgetChain;

/// One detector's row cells in Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowCells {
    /// "Result count".
    pub result: usize,
    /// "Fake".
    pub fake: usize,
    /// "Known".
    pub known: usize,
    /// "Unknown".
    pub unknown: usize,
}

/// The paper's Table IX numbers for one component (for EXPERIMENTS.md
/// comparison; `sl: None` renders the paper's `X` — non-termination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperRow {
    /// "Known in dataset".
    pub known_in_dataset: usize,
    /// GadgetInspector's cells.
    pub gi: RowCells,
    /// Tabby's cells.
    pub tb: RowCells,
    /// Serianalyzer's cells (`None` = did not terminate).
    pub sl: Option<RowCells>,
}

/// One analyzable component (a Table IX row, a Table X scene, or a custom
/// workload).
#[derive(Debug)]
pub struct Component {
    /// Component name as the paper prints it (e.g. `commons-colletions(3.2.1)`,
    /// keeping the paper's spelling).
    pub name: String,
    /// The component's classes plus the JDK model.
    pub program: Program,
    /// Ground-truth chain manifest.
    pub truth: GroundTruth,
    /// Package prefixes owned by the component; chains that never pass
    /// through them are filtered out, exactly as the paper filters
    /// Serianalyzer output ("chains that do not contain the package name of
    /// the component", §IV-C).
    pub packages: Vec<String>,
    /// The paper's Table IX row, when the component reproduces one.
    pub paper: Option<PaperRow>,
    /// Free-form notes on what the synthetic structure mirrors.
    pub notes: String,
}

impl Component {
    /// Creates a component.
    pub fn new(name: &str, program: Program, truth: GroundTruth, packages: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            program,
            truth,
            packages: packages.iter().map(|p| (*p).to_owned()).collect(),
            paper: None,
            notes: String::new(),
        }
    }

    /// Attaches the paper's Table IX row.
    #[must_use]
    pub fn with_paper_row(mut self, paper: PaperRow) -> Self {
        self.paper = Some(paper);
        self
    }

    /// Attaches notes.
    #[must_use]
    pub fn with_notes(mut self, notes: &str) -> Self {
        self.notes = notes.to_owned();
        self
    }

    /// The paper's output filter: does the chain pass through a class of
    /// this component?
    pub fn chain_in_component(&self, chain: &GadgetChain) -> bool {
        chain.signatures.iter().any(|sig| {
            self.packages
                .iter()
                .any(|pkg| sig.starts_with(pkg.as_str()))
        })
    }

    /// Applies the component filter to a detector's raw output.
    pub fn filter_chains(&self, chains: Vec<GadgetChain>) -> Vec<GadgetChain> {
        chains
            .into_iter()
            .filter(|c| self.chain_in_component(c))
            .collect()
    }
}
