//! A search-stress "web": a layered caller lattice above a real sink.
//!
//! The Table X scenes carry plenty of *build*-side work (random-library
//! filler scaled to the paper's code sizes) but, until this module, almost
//! no *search*-side work: filler classes never call sinks, so the backward
//! walk from each sink fans out over a handful of gadget classes and stops.
//! The web fixes that: `levels` layers of `width` classes each, where every
//! class of layer *k* calls `fanin` classes of layer *k − 1* and layer 0
//! calls `Runtime.exec` with its own parameter. Backwards from the sink
//! that is a DAG with `width · fanin^(levels−1)`-ish distinct paths — real,
//! paper-shaped search pressure (shared substructure, one TC per method,
//! uniform depth) for the parallel engine and its dominance memo.
//!
//! The web contributes **zero chains**: no web class is serializable, none
//! has a source method, and nothing outside the web calls into it. Scene
//! result counts, oracle verdicts, and FPRs are unchanged; only the search
//! has more honest work to do.

use tabby_ir::{JType, ProgramBuilder};

/// Shape of the caller lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchWebConfig {
    /// Layers above the sink (also the backward depth of the web; keep at
    /// most `max_depth − 1` so the whole lattice is explorable).
    pub levels: usize,
    /// Classes per layer.
    pub width: usize,
    /// Calls each class makes into the layer below.
    pub fanin: usize,
}

impl SearchWebConfig {
    /// A tiny web for smoke tests: fully explored in well under a
    /// millisecond even by the sequential reference engine.
    pub fn smoke() -> Self {
        Self {
            levels: 4,
            width: 4,
            fanin: 2,
        }
    }

    /// Approximate number of backward paths through the web (the work the
    /// memo-less sequential engine performs), for sizing budgets.
    pub fn approx_paths(&self) -> u128 {
        let mut per_entry: u128 = 1;
        let mut total: u128 = 0;
        for _ in 0..self.levels {
            total += self.width as u128 * per_entry;
            per_entry = per_entry.saturating_mul(self.fanin as u128);
        }
        total
    }
}

/// Adds the web under `{pkg}.web`. Layer-0 classes call
/// `java.lang.Runtime.exec` with their own `step` parameter (so the sink's
/// Trigger_Condition translates to `{1}` and keeps propagating upward —
/// every lattice edge has `Polluted_Position[1] = 1`); layer-*k* classes
/// call `step` on `fanin` layer-(k−1) classes held in fields.
pub fn add_search_web(pb: &mut ProgramBuilder, pkg: &str, config: &SearchWebConfig) {
    let class_name = |level: usize, i: usize| format!("{pkg}.web.L{level}C{i}");
    for level in 0..config.levels {
        for i in 0..config.width {
            let fqcn = class_name(level, i);
            let mut cb = pb.class(&fqcn);
            let object = cb.object_type("java.lang.Object");
            if level == 0 {
                let string = cb.object_type("java.lang.String");
                let runtime = cb.object_type("java.lang.Runtime");
                let process = cb.object_type("java.lang.Process");
                let mut mb = cb.method("step", vec![object.clone()], JType::Void);
                let p = mb.param(0);
                let cmd = mb.fresh();
                mb.cast(cmd, string.clone(), p);
                let rt = mb.fresh();
                let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
                mb.call_static(Some(rt), get_rt, &[]);
                let exec = mb.sig("java.lang.Runtime", "exec", &[string], process);
                mb.call_virtual(None, rt, exec, &[cmd.into()]);
                mb.finish();
            } else {
                let callees: Vec<String> = (0..config.fanin)
                    .map(|t| class_name(level - 1, (i * config.fanin + t) % config.width))
                    .collect();
                for (t, callee) in callees.iter().enumerate() {
                    let callee_ty = cb.object_type(callee);
                    cb.field(&format!("f{t}"), callee_ty);
                }
                let mut mb = cb.method("step", vec![object.clone()], JType::Void);
                let this = mb.this();
                let p = mb.param(0);
                for (t, callee) in callees.iter().enumerate() {
                    let callee_ty = mb.object_type(callee);
                    let recv = mb.fresh();
                    mb.get_field(recv, this, &fqcn, &format!("f{t}"), callee_ty);
                    let step = mb.sig(
                        callee,
                        "step",
                        &[mb.object_type("java.lang.Object")],
                        JType::Void,
                    );
                    mb.call_virtual(None, recv, step, &[p.into()]);
                }
                mb.finish();
            }
            cb.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jdk::add_jdk_model;
    use tabby_core::{AnalysisConfig, Cpg};
    use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};

    #[test]
    fn web_adds_search_work_but_no_chains() {
        let build = |with_web: bool| {
            let mut pb = ProgramBuilder::new();
            add_jdk_model(&mut pb);
            if with_web {
                add_search_web(&mut pb, "stress", &SearchWebConfig::smoke());
            }
            let program = pb.build();
            let mut cpg = Cpg::build(&program, AnalysisConfig::default());
            find_gadget_chains(
                &mut cpg,
                &SinkCatalog::paper(),
                &SourceCatalog::native_serialization(),
                &SearchConfig::default(),
            )
        };
        let bare = build(false);
        let webbed = build(true);
        // Identical chain sets: the web is pure search pressure.
        let key = |chains: &[tabby_pathfinder::GadgetChain]| {
            chains
                .iter()
                .map(|c| c.signatures.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&bare), key(&webbed));
        assert!(!webbed
            .iter()
            .any(|c| c.signatures.iter().any(|s| s.starts_with("stress.web."))));
    }

    #[test]
    fn approx_paths_counts_the_lattice() {
        let smoke = SearchWebConfig::smoke();
        // width * (1 + fanin + fanin^2 + fanin^3) = 4 * 15.
        assert_eq!(smoke.approx_paths(), 60);
    }
}
