//! Ground-truth manifests and the accuracy metrics of §IV-C.
//!
//! Each synthetic component declares which (source, sink) chains are *known*
//! (present in the ysoserial/marshalsec dataset the paper evaluates against)
//! and which are *unknown-but-effective* (planted chains a PoC would
//! confirm). Any other chain a detector reports is *fake*. The metrics are
//! Formulas 5 and 6.

use serde::{Deserialize, Serialize};
use tabby_pathfinder::GadgetChain;

/// How a reported chain classifies against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainClass {
    /// Matches a dataset chain.
    Known,
    /// Effective, but absent from the dataset.
    Unknown,
    /// Not effective (a false positive).
    Fake,
}

/// An expected chain, identified by its source and sink signatures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthChain {
    /// Source method signature (`Class.method`).
    pub source: String,
    /// Sink method signature (`Class.method`).
    pub sink: String,
    /// Whether the dataset records it or it is a planted unknown.
    pub class: ChainClass,
}

impl TruthChain {
    /// A dataset-known chain.
    pub fn known(source: &str, sink: &str) -> Self {
        Self {
            source: source.to_owned(),
            sink: sink.to_owned(),
            class: ChainClass::Known,
        }
    }

    /// A planted effective chain outside the dataset.
    pub fn unknown(source: &str, sink: &str) -> Self {
        Self {
            source: source.to_owned(),
            sink: sink.to_owned(),
            class: ChainClass::Unknown,
        }
    }

    fn matches(&self, chain: &GadgetChain) -> bool {
        chain.source() == self.source && chain.sink() == self.sink
    }
}

/// The ground truth of one component.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Effective chains (known + planted unknown).
    pub chains: Vec<TruthChain>,
}

impl GroundTruth {
    /// Creates a manifest from a chain list.
    pub fn new(chains: Vec<TruthChain>) -> Self {
        Self { chains }
    }

    /// Number of dataset-known chains ("Known in dataset" column).
    pub fn known_in_dataset(&self) -> usize {
        self.chains
            .iter()
            .filter(|c| c.class == ChainClass::Known)
            .count()
    }

    /// Classifies one reported chain.
    pub fn classify(&self, chain: &GadgetChain) -> ChainClass {
        self.chains
            .iter()
            .find(|t| t.matches(chain))
            .map(|t| t.class)
            .unwrap_or(ChainClass::Fake)
    }

    /// Evaluates a detector's full output against this truth.
    pub fn evaluate(&self, found: &[GadgetChain]) -> EvalCounts {
        let mut counts = EvalCounts {
            result: found.len(),
            ..EvalCounts::default()
        };
        // Distinct truth entries matched (finding the same chain twice does
        // not double-count a Known).
        let mut matched = vec![false; self.chains.len()];
        for chain in found {
            match self.chains.iter().position(|t| t.matches(chain)) {
                Some(i) => {
                    if matched[i] {
                        // Duplicate route to an already-credited chain: the
                        // paper counts every output row, so duplicates count
                        // toward `result` but are neither known nor unknown
                        // again; treat extra copies as fake output.
                        counts.fake += 1;
                    } else {
                        matched[i] = true;
                        match self.chains[i].class {
                            ChainClass::Known => counts.known += 1,
                            ChainClass::Unknown => counts.unknown += 1,
                            ChainClass::Fake => counts.fake += 1,
                        }
                    }
                }
                None => counts.fake += 1,
            }
        }
        counts.known_in_dataset = self.known_in_dataset();
        counts
    }
}

/// The per-component counters of Table IX.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalCounts {
    /// Total chains reported ("Result count").
    pub result: usize,
    /// Reported chains that are not effective ("Fake").
    pub fake: usize,
    /// Reported chains present in the dataset ("Known").
    pub known: usize,
    /// Reported effective chains absent from the dataset ("Unknown").
    pub unknown: usize,
    /// Dataset size for this component ("Known in dataset").
    pub known_in_dataset: usize,
}

impl EvalCounts {
    /// Formula 5: `FPR = fake / result × 100`. `None` when nothing was
    /// reported (the paper prints 0 or 100 depending on FNs; we keep the
    /// distinction explicit).
    pub fn fpr(&self) -> Option<f64> {
        if self.result == 0 {
            None
        } else {
            Some(self.fake as f64 / self.result as f64 * 100.0)
        }
    }

    /// Formula 6: `FNR = (known_in_dataset − known) / known_in_dataset × 100`.
    pub fn fnr(&self) -> Option<f64> {
        if self.known_in_dataset == 0 {
            None
        } else {
            Some((self.known_in_dataset - self.known) as f64 / self.known_in_dataset as f64 * 100.0)
        }
    }

    /// Sums counters across components (for the Total row).
    pub fn add(&mut self, other: &EvalCounts) {
        self.result += other.result;
        self.fake += other.fake;
        self.known += other.known;
        self.unknown += other.unknown;
        self.known_in_dataset += other.known_in_dataset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(source: &str, sink: &str) -> GadgetChain {
        GadgetChain {
            signatures: vec![source.to_owned(), "mid.M.m".to_owned(), sink.to_owned()],
            sink_category: "EXEC".to_owned(),
            tier: None,
            nodes: vec![],
        }
    }

    fn truth() -> GroundTruth {
        GroundTruth::new(vec![
            TruthChain::known("a.A.readObject", "java.lang.Runtime.exec"),
            TruthChain::known("b.B.readObject", "java.lang.Runtime.exec"),
            TruthChain::unknown("c.C.readObject", "javax.naming.Context.lookup"),
        ])
    }

    #[test]
    fn classify_known_unknown_fake() {
        let t = truth();
        assert_eq!(
            t.classify(&chain("a.A.readObject", "java.lang.Runtime.exec")),
            ChainClass::Known
        );
        assert_eq!(
            t.classify(&chain("c.C.readObject", "javax.naming.Context.lookup")),
            ChainClass::Unknown
        );
        assert_eq!(
            t.classify(&chain("z.Z.readObject", "java.lang.Runtime.exec")),
            ChainClass::Fake
        );
    }

    #[test]
    fn evaluate_computes_table9_counters() {
        let t = truth();
        let found = vec![
            chain("a.A.readObject", "java.lang.Runtime.exec"),
            chain("c.C.readObject", "javax.naming.Context.lookup"),
            chain("z.Z.readObject", "java.lang.Runtime.exec"),
        ];
        let counts = t.evaluate(&found);
        assert_eq!(counts.result, 3);
        assert_eq!(counts.known, 1);
        assert_eq!(counts.unknown, 1);
        assert_eq!(counts.fake, 1);
        assert_eq!(counts.known_in_dataset, 2);
        assert!((counts.fpr().unwrap() - 33.333).abs() < 0.01);
        assert!((counts.fnr().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_count_as_fake_output() {
        let t = truth();
        let found = vec![
            chain("a.A.readObject", "java.lang.Runtime.exec"),
            chain("a.A.readObject", "java.lang.Runtime.exec"),
        ];
        let counts = t.evaluate(&found);
        assert_eq!(counts.result, 2);
        assert_eq!(counts.known, 1);
        assert_eq!(counts.fake, 1);
    }

    #[test]
    fn empty_result_has_no_fpr() {
        let t = truth();
        let counts = t.evaluate(&[]);
        assert_eq!(counts.fpr(), None);
        assert_eq!(counts.fnr(), Some(100.0));
    }

    #[test]
    fn totals_accumulate() {
        let t = truth();
        let mut total = EvalCounts::default();
        total.add(&t.evaluate(&[chain("a.A.readObject", "java.lang.Runtime.exec")]));
        total.add(&t.evaluate(&[chain("z.Z.x", "y.Y.z")]));
        assert_eq!(total.result, 2);
        assert_eq!(total.known, 1);
        assert_eq!(total.fake, 1);
        assert_eq!(total.known_in_dataset, 4);
    }
}
