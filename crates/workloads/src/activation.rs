//! Activation scenes: two versions of one synthetic library, where the
//! version bump completes a dormant gadget chain.
//!
//! *Sleeping Giants* (see PAPERS.md) shows that a gadget chain can be
//! introduced by a small, innocuous-looking change — a helper that stops
//! sanitizing, a delegate that starts forwarding — rather than by any new
//! obviously dangerous code. These scenes reproduce that shape for the
//! differential scanner: **v1** carries the whole chain skeleton but the
//! pivot routes its payload through a sanitizing callee (Tabby's Action
//! analysis prunes the route, Polluted_Position all-∞), and **v2** changes
//! only that one method so the payload flows through. Both versions also
//! carry a *permanently* dormant twin (sanitized in v1 and v2 alike) — the
//! near-chain the diff should flag as one edge away from activating — plus
//! chain-free search-web and recursion-web bulk so the scan does
//! paper-shaped work.
//!
//! Ground truth: v1 has no effective chains; v2 has exactly the planted
//! one. `tabby diff v1 v2` must therefore report exactly one newly
//! activated chain (zero false activations — the FPR gate) and at least
//! one near-chain rooted at the dormant twin.

use crate::component::Component;
use crate::gadget_kit::{add_gadget, Sink, Trigger, Twist};
use crate::jdk::add_jdk_model;
use crate::recursion::{add_recursion_web, RecursionWebConfig};
use crate::search_web::{add_search_web, SearchWebConfig};
use crate::truth::{GroundTruth, TruthChain};
use tabby_ir::ProgramBuilder;

/// One activation scene: the same library at two versions.
#[derive(Debug)]
pub struct ActivationScene {
    /// Scene name (also the suggested registry corpus name).
    pub name: String,
    /// Package prefix owning the scene's classes.
    pub pkg: String,
    /// The library before the bump: chain skeleton present, pivot
    /// sanitizes, ground truth empty.
    pub v1: Component,
    /// The library after the bump: pivot forwards, ground truth carries
    /// exactly the planted chain.
    pub v2: Component,
    /// The `(source, sink)` pair the bump activates.
    pub activated: (String, String),
    /// Source signature of the permanently dormant twin — the expected
    /// near-chain root in both versions.
    pub dormant_source: String,
}

struct SceneSpec {
    name: &'static str,
    pkg: &'static str,
    trigger: Trigger,
    sink: Sink,
}

fn build_version(spec: &SceneSpec, pivot_twist: Twist, smoke: bool) -> ProgramBuilder {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let pivot = format!("{}.Pivot", spec.pkg);
    let dormant = format!("{}.Dormant", spec.pkg);
    add_gadget(&mut pb, &pivot, spec.trigger, &spec.sink, pivot_twist);
    // The permanently dormant twin: sanitized in every version.
    add_gadget(
        &mut pb,
        &dormant,
        Trigger::ReadObject,
        &spec.sink,
        Twist::Sanitized,
    );
    // Chain-free bulk so snapshot/diff timings measure paper-shaped work.
    let web = if smoke {
        SearchWebConfig::smoke()
    } else {
        SearchWebConfig {
            levels: 6,
            width: 8,
            fanin: 3,
        }
    };
    add_search_web(&mut pb, spec.pkg, &web);
    let rec = if smoke {
        RecursionWebConfig::smoke()
    } else {
        RecursionWebConfig {
            cliques: 6,
            clique_size: 6,
        }
    };
    add_recursion_web(&mut pb, spec.pkg, &rec);
    pb
}

fn build_scene(spec: &SceneSpec, smoke: bool) -> ActivationScene {
    let pivot = format!("{}.Pivot", spec.pkg);
    let sink_sig = spec.sink.signature();
    // The trigger decides the chain's source (e.g. ToString chains start at
    // BadAttributeValueExpException.readObject, not at the pivot class).
    let source = spec
        .trigger
        .sources(&pivot)
        .into_iter()
        .next()
        .unwrap_or_else(|| format!("{pivot}.readObject"));

    let v1_program = build_version(spec, Twist::Sanitized, smoke).build();
    let v2_program = build_version(spec, Twist::Plain, smoke).build();

    let packages: Vec<&str> = vec![spec.pkg];
    let v1 = Component::new(
        &format!("{}(v1)", spec.name),
        v1_program,
        GroundTruth::default(),
        &packages,
    )
    .with_notes("pre-bump: pivot sanitizes its payload; no effective chains");
    let v2 = Component::new(
        &format!("{}(v2)", spec.name),
        v2_program,
        GroundTruth::new(vec![TruthChain::known(&source, &sink_sig)]),
        &packages,
    )
    .with_notes("post-bump: the pivot forwards its payload; the planted chain is live");

    ActivationScene {
        name: spec.name.to_owned(),
        pkg: spec.pkg.to_owned(),
        v1,
        v2,
        activated: (source, sink_sig),
        dormant_source: format!("{}.Dormant.readObject", spec.pkg),
    }
}

fn specs() -> Vec<SceneSpec> {
    vec![
        SceneSpec {
            name: "PivotExec",
            pkg: "act.exec",
            trigger: Trigger::ReadObject,
            sink: Sink::Exec,
        },
        SceneSpec {
            name: "StringerLookup",
            pkg: "act.lookup",
            trigger: Trigger::ToString,
            sink: Sink::Lookup,
        },
        SceneSpec {
            name: "QueueForName",
            pkg: "act.forname",
            trigger: Trigger::Compare,
            sink: Sink::ForName,
        },
    ]
}

/// All activation scenes, at full size.
pub fn activation_scenes() -> Vec<ActivationScene> {
    specs().iter().map(|s| build_scene(s, false)).collect()
}

/// The same scenes with smoke-sized bulk webs, for CI.
pub fn activation_scenes_smoke() -> Vec<ActivationScene> {
    specs().iter().map(|s| build_scene(s, true)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_core::{AnalysisConfig, Cpg};
    use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};

    fn chains_of(component: &Component) -> Vec<tabby_pathfinder::GadgetChain> {
        let mut cpg = Cpg::build(&component.program, AnalysisConfig::default());
        let chains = find_gadget_chains(
            &mut cpg,
            &SinkCatalog::paper(),
            &SourceCatalog::native_serialization(),
            &SearchConfig::default(),
        );
        component.filter_chains(chains)
    }

    #[test]
    fn v1_is_chain_free_and_v2_has_exactly_the_planted_chain() {
        for scene in activation_scenes_smoke() {
            let v1 = chains_of(&scene.v1);
            let counts = scene.v1.truth.evaluate(&v1);
            assert_eq!(
                counts.result, 0,
                "{}: v1 must be dormant, got {v1:?}",
                scene.name
            );

            let v2 = chains_of(&scene.v2);
            let counts = scene.v2.truth.evaluate(&v2);
            assert_eq!(
                counts.known, 1,
                "{}: planted chain missing in v2",
                scene.name
            );
            assert_eq!(
                counts.fake, 0,
                "{}: false activation in v2: {v2:?}",
                scene.name
            );
            assert_eq!(counts.fpr(), Some(0.0), "{}", scene.name);
            assert_eq!(counts.fnr(), Some(0.0), "{}", scene.name);
            let (source, sink) = &scene.activated;
            assert!(
                v2.iter().any(|c| c.source() == source && c.sink() == sink),
                "{}: expected {source} -> {sink} in {v2:?}",
                scene.name
            );
        }
    }

    #[test]
    fn dormant_twin_stays_dormant_in_both_versions() {
        let scene = &activation_scenes_smoke()[0];
        for component in [&scene.v1, &scene.v2] {
            let chains = chains_of(component);
            assert!(
                chains.iter().all(|c| c.source() != scene.dormant_source),
                "dormant twin activated in {}: {chains:?}",
                component.name
            );
        }
    }

    #[test]
    fn versions_differ_only_in_the_owned_package() {
        let scene = &activation_scenes_smoke()[0];
        assert_eq!(scene.pkg, "act.exec");
        assert_eq!(scene.activated.0, "act.exec.Pivot.readObject");
        assert_eq!(scene.activated.1, "java.lang.Runtime.exec");
    }
}
