//! The kit-composed Table IX components (all rows except the two
//! commons-collections variants, which have bespoke machinery in
//! [`super::commons_collections`]).
//!
//! Each component mirrors the gadget-relevant structure of its real
//! counterpart: which deserialization trigger reaches its code, which sink
//! family it ends in, whether the dataset chain rides a dynamic proxy
//! (missed by every static tool, §V-B), and how much bycatch each baseline
//! sees (guarded fakes, sanitize baits, serializable filler for
//! Serianalyzer's loose entry points, and the call-graph blow-up cluster
//! that makes Serianalyzer exceed its work budget on Clojure and Jython).

use crate::component::{Component, PaperRow, RowCells};
use crate::gadget_kit::{add_gadget, Sink, Trigger, Twist};
use crate::jdk::add_jdk_model;
use crate::truth::{GroundTruth, TruthChain};
use tabby_ir::{JType, ProgramBuilder};

/// Declarative description of one kit-composed component.
pub struct Spec<'a> {
    /// Component name (paper spelling).
    pub name: &'a str,
    /// Package prefix owned by the component.
    pub pkg: &'a str,
    /// Class-name pool (taken in order; generated names afterwards).
    pub class_names: &'a [&'a str],
    /// Dataset chains Tabby finds: (trigger, sink). Multi-source triggers
    /// (HashCode) contribute several pairs; `known_of_trigger` says how many
    /// of a trigger's pairs the dataset records (the rest become unknowns).
    pub known_found: Vec<(Trigger, Sink, usize)>,
    /// Dataset chains behind dynamic proxies (missed by all tools): sinks.
    pub known_missed: Vec<Sink>,
    /// Planted effective chains outside the dataset.
    pub unknowns: Vec<(Trigger, Sink)>,
    /// Guard-dead chains (reported by guard-blind detectors; fake).
    pub fakes: Vec<(Trigger, Sink)>,
    /// Sanitize baits (pruned by Tabby's Action; reported by
    /// assume-controllable baselines).
    pub baits: Vec<(Trigger, Sink)>,
    /// Additional sanitize-bait classes (readObject → exec variants), used
    /// to scale per-row GadgetInspector bycatch to the paper's Result
    /// counts.
    pub extra_baits: usize,
    /// Serializable filler classes whose methods reach a sink but are not
    /// deserialization-triggered (Serianalyzer bycatch).
    pub fillers: usize,
    /// Add the pruned-by-Tabby call-graph blow-up cluster (Serianalyzer
    /// work-budget killer).
    pub blowup: bool,
    /// The paper's row.
    pub paper: PaperRow,
    /// What the structure mirrors.
    pub notes: &'a str,
}

/// Assembles a [`Component`] from a [`Spec`].
pub fn compose(spec: Spec<'_>) -> Component {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let mut names = spec.class_names.iter();
    let mut fallback = 0usize;
    let mut next_name = |hint: &str| -> String {
        match names.next() {
            Some(n) => format!("{}.{n}", spec.pkg),
            None => {
                fallback += 1;
                format!("{}.{}{}", spec.pkg, hint, fallback)
            }
        }
    };

    let mut truth_chains = Vec::new();

    for (trigger, sink, dataset_count) in &spec.known_found {
        let fqcn = next_name("Gadget");
        let pairs = add_gadget(&mut pb, &fqcn, *trigger, sink, Twist::Plain).pairs;
        for (i, (source, sink_sig)) in pairs.into_iter().enumerate() {
            if i < *dataset_count {
                truth_chains.push(TruthChain::known(&source, &sink_sig));
            } else {
                truth_chains.push(TruthChain::unknown(&source, &sink_sig));
            }
        }
    }
    for sink in &spec.known_missed {
        let fqcn = next_name("ProxyGadget");
        let pairs = add_gadget(
            &mut pb,
            &fqcn,
            Trigger::ReadObject,
            sink,
            Twist::DynamicProxy,
        )
        .pairs;
        for (source, sink_sig) in pairs {
            truth_chains.push(TruthChain::known(&source, &sink_sig));
        }
    }
    for (trigger, sink) in &spec.unknowns {
        let fqcn = next_name("Extra");
        let pairs = add_gadget(&mut pb, &fqcn, *trigger, sink, Twist::Plain).pairs;
        for (source, sink_sig) in pairs {
            truth_chains.push(TruthChain::unknown(&source, &sink_sig));
        }
    }
    for (trigger, sink) in &spec.fakes {
        // Guard-dead: discoverable but absent from the manifest → Fake.
        let fqcn = next_name("Conditional");
        add_gadget(&mut pb, &fqcn, *trigger, sink, Twist::Guarded);
    }
    for (trigger, sink) in &spec.baits {
        let fqcn = next_name("Sanitizing");
        add_gadget(&mut pb, &fqcn, *trigger, sink, Twist::Sanitized);
    }
    for i in 0..spec.extra_baits {
        let fqcn = format!("{}.internal.Callback{i}", spec.pkg);
        add_gadget(
            &mut pb,
            &fqcn,
            Trigger::ReadObject,
            &Sink::Exec,
            Twist::Sanitized,
        );
    }
    if spec.fillers > 0 {
        add_fillers(&mut pb, spec.pkg, spec.fillers);
    }
    if spec.blowup {
        add_blowup_cluster(&mut pb, spec.pkg, 14);
    }

    Component::new(
        spec.name,
        pb.build(),
        GroundTruth::new(truth_chains),
        &[spec.pkg],
    )
    .with_paper_row(spec.paper)
    .with_notes(spec.notes)
}

/// Serializable classes whose helper methods reach a sink but are never
/// invoked by deserialization machinery — Serianalyzer's loose entry-point
/// definition reports these; Tabby's source catalog does not.
pub fn add_fillers(pb: &mut ProgramBuilder, pkg: &str, n: usize) {
    for i in 0..n {
        let fqcn = format!("{pkg}.support.Helper{i}");
        let mut cb = pb.class(&fqcn).serializable();
        let object = cb.object_type("java.lang.Object");
        let string = cb.object_type("java.lang.String");
        cb.field("resource", object.clone());
        let mut mb = cb.method("refresh", vec![], JType::Void);
        let this = mb.this();
        let r = mb.fresh();
        mb.get_field(r, this, &fqcn, "resource", object.clone());
        let name = mb.fresh();
        mb.cast(name, string.clone(), r);
        let class_ty = mb.object_type("java.lang.Class");
        let for_name = mb.sig("java.lang.Class", "forName", &[string.clone()], class_ty);
        let c = mb.fresh();
        mb.call_static(Some(c), for_name, &[name.into()]);
        mb.finish();
        cb.finish();
    }
}

/// A dense cluster of static calls whose arguments are freshly allocated:
/// every Polluted_Position is all-∞, so Tabby's PCG drops the whole cluster
/// (§III-C's path-explosion remedy); unpruned baselines walk its
/// exponentially many paths toward the sink at the far end.
fn add_blowup_cluster(pb: &mut ProgramBuilder, pkg: &str, k: usize) {
    let fqcn = format!("{pkg}.internal.Dispatch");
    let mut cb = pb.class(&fqcn);
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    for i in 0..k {
        let mut mb = cb
            .method(&format!("stage{i}"), vec![object.clone()], JType::Void)
            .static_();
        let fresh = mb.fresh();
        mb.new_obj(fresh, "java.lang.Object");
        for j in 0..k {
            if i == j {
                continue;
            }
            let callee = mb.sig(&fqcn, &format!("stage{j}"), &[object.clone()], JType::Void);
            mb.call_static(None, callee, &[fresh.into()]);
        }
        if i == 0 {
            // The far-end sink the baselines chase through the cluster.
            let name = mb.fresh();
            mb.cast(name, string.clone(), fresh);
            let class_ty = mb.object_type("java.lang.Class");
            let for_name = mb.sig("java.lang.Class", "forName", &[string.clone()], class_ty);
            let c = mb.fresh();
            mb.call_static(Some(c), for_name, &[name.into()]);
        }
        mb.finish();
    }
    cb.finish();
}

fn cells(result: usize, fake: usize, known: usize, unknown: usize) -> RowCells {
    RowCells {
        result,
        fake,
        known,
        unknown,
    }
}

/// All kit-composed Table IX rows (24 of 26; commons-collections is
/// bespoke).
pub fn kit_components() -> Vec<Component> {
    let eval_sink = |class: &str, method: &str| Sink::Custom {
        class: class.to_owned(),
        method: method.to_owned(),
        arity: 1,
        tainted_pos: 1,
    };
    let files_sink = Sink::Custom {
        class: "java.nio.file.Files".to_owned(),
        method: "newOutputStream".to_owned(),
        arity: 1,
        tainted_pos: 1,
    };
    vec![
        compose(Spec {
            name: "AspectJWeaver",
            pkg: "org.aspectj",
            class_names: &["weaver.tools.cache.SimpleCache"],
            known_found: vec![(Trigger::ReadObject, files_sink.clone(), 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::Delete)],
            extra_baits: 7,
            fillers: 24,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(8, 8, 0, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(27, 27, 0, 0)),
            },
            notes: "SimpleCache StoreableCachingMap writes attacker bytes to disk on readObject",
        }),
        compose(Spec {
            name: "BeanShell1",
            pkg: "bsh",
            class_names: &["XThis", "ScriptedHandler", "CollectionManager"],
            known_found: vec![(Trigger::ReadObject, eval_sink("bsh.Interpreter", "eval"), 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![
                (Trigger::ReadObject, Sink::Exec),
                (Trigger::ReadObject, Sink::ForName),
            ],
            baits: vec![],
            extra_baits: 0,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(3, 2, 1, 0),
                sl: Some(cells(1, 1, 0, 0)),
            },
            notes: "XThis invocation handler evaluates a scripted method on deserialization",
        }),
        compose(Spec {
            name: "C3P0",
            pkg: "com.mchange.v2.c3p0",
            class_names: &[
                "impl.PoolBackedDataSourceBase",
                "JndiRefForwardingDataSource",
                "WrapperConnectionPoolDataSource",
                "ComboPooledDataSource",
            ],
            known_found: vec![(Trigger::ReadObject, Sink::Lookup, 1)],
            known_missed: vec![],
            unknowns: vec![
                (Trigger::ReadObject, Sink::GetConnection),
                (Trigger::ReadObject, Sink::SecondaryDeserialization),
                (Trigger::ToString, Sink::Lookup),
            ],
            fakes: vec![
                (Trigger::ReadObject, Sink::ForName),
                (Trigger::ReadObject, Sink::Exec),
            ],
            baits: vec![],
            extra_baits: 0,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(6, 2, 1, 3),
                sl: Some(cells(1, 0, 0, 1)),
            },
            notes: "JNDI-forwarding data sources dereference attacker names on readObject",
        }),
        compose(Spec {
            name: "Click1",
            pkg: "org.apache.click",
            class_names: &["control.Column"],
            known_found: vec![(Trigger::ReadObject, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 2,
            fillers: 50,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(4, 3, 1, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(56, 56, 0, 0)),
            },
            notes: "Column comparator reflects a property getter during table sort",
        }),
        compose(Spec {
            name: "Clojure",
            pkg: "clojure",
            class_names: &["core.proxy$clojure", "lang.AFn"],
            known_found: vec![(Trigger::ReadObject, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![(Trigger::ReadObject, Sink::ForName)],
            baits: vec![(Trigger::HashCode, Sink::Invoke)],
            extra_baits: 9,
            fillers: 2,
            blowup: true,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(12, 9, 1, 2),
                tb: cells(2, 1, 1, 0),
                sl: None,
            },
            notes: "fn-composition objects invoke arbitrary methods; IFn dispatch web defeats Serianalyzer",
        }),
        compose(Spec {
            name: "CommonsBeanutils1",
            pkg: "org.apache.commons.beanutils",
            class_names: &["BeanComparator"],
            known_found: vec![(Trigger::Compare, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 1,
            fillers: 45,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(50, 50, 0, 0)),
            },
            notes: "BeanComparator.compare reflects the property getter of its operands",
        }),
        compose(Spec {
            name: "FileUpload1",
            pkg: "org.apache.commons.fileupload",
            class_names: &["disk.DiskFileItem", "DeferredFileOutputStream"],
            known_found: vec![
                (Trigger::ReadObject, Sink::Delete, 1),
                (Trigger::ReadObject, files_sink.clone(), 1),
            ],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 1,
            fillers: 2,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(3, 2, 1, 0),
                tb: cells(2, 0, 2, 0),
                sl: Some(cells(6, 4, 2, 0)),
            },
            notes: "DiskFileItem readObject re-creates its temp file: write + delete primitives",
        }),
        compose(Spec {
            name: "Groovy1",
            pkg: "org.codehaus.groovy",
            class_names: &["runtime.MethodClosure", "runtime.ConvertedClosure"],
            known_found: vec![],
            known_missed: vec![eval_sink("groovy.lang.GroovyShell", "evaluate")],
            unknowns: vec![],
            fakes: vec![
                (Trigger::ReadObject, Sink::Exec),
                (Trigger::ReadObject, Sink::Invoke),
            ],
            baits: vec![],
            extra_baits: 2,
            fillers: 128,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(4, 4, 0, 0),
                tb: cells(2, 2, 0, 0),
                sl: Some(cells(137, 137, 0, 0)),
            },
            notes: "the dataset chain rides ConvertedClosure's dynamic proxy — invisible statically",
        }),
        compose(Spec {
            name: "Hibernate",
            pkg: "org.hibernate",
            class_names: &["engine.spi.TypedValue", "tuple.component.AbstractComponentTuplizer"],
            known_found: vec![
                (Trigger::HashCode, Sink::Invoke, 2),
                (Trigger::ToString, Sink::Invoke, 0),
            ],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![],
            extra_baits: 2,
            fillers: 48,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(2, 2, 0, 0),
                tb: cells(4, 0, 2, 2),
                sl: Some(cells(55, 55, 0, 0)),
            },
            notes: "TypedValue.hashCode walks getter tuplizers that reflect component properties",
        }),
        compose(Spec {
            name: "JBossInterceptors1",
            pkg: "org.jboss.interceptor",
            class_names: &["proxy.InterceptorMethodHandler"],
            known_found: vec![(Trigger::ReadObject, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![
                (Trigger::ReadObject, Sink::ForName),
                (Trigger::ReadObject, Sink::Exec),
            ],
            baits: vec![],
            extra_baits: 0,
            fillers: 3,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(3, 2, 1, 0),
                sl: Some(cells(7, 6, 1, 0)),
            },
            notes: "InterceptorMethodHandler replays interceptor bindings reflectively",
        }),
        compose(Spec {
            name: "JSON1",
            pkg: "net.sf.json",
            class_names: &["JSONObject"],
            known_found: vec![],
            known_missed: vec![Sink::Invoke],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![],
            extra_baits: 4,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(4, 4, 0, 0),
                tb: cells(0, 0, 0, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "JSON1 drives property getters through a java.lang.reflect.Proxy — invisible statically",
        }),
        compose(Spec {
            name: "JavaassistWeld1",
            pkg: "org.jboss.weld",
            class_names: &["interceptor.proxy.InterceptorMethodHandler"],
            known_found: vec![(Trigger::ReadObject, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![
                (Trigger::ReadObject, Sink::ForName),
                (Trigger::ReadObject, Sink::Exec),
            ],
            baits: vec![],
            extra_baits: 0,
            fillers: 1,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(3, 2, 1, 0),
                sl: Some(cells(3, 2, 1, 0)),
            },
            notes: "Weld's interceptor handler mirrors the JBossInterceptors gadget",
        }),
        compose(Spec {
            name: "Jython1",
            pkg: "org.python",
            class_names: &["core.PyObject", "core.PyMethod", "core.PyFunction"],
            known_found: vec![],
            known_missed: vec![files_sink.clone()],
            unknowns: vec![],
            fakes: vec![
                (Trigger::ReadObject, Sink::Exec),
                (Trigger::ReadObject, Sink::ForName),
            ],
            baits: vec![],
            extra_baits: 40,
            fillers: 30,
            blowup: true,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(42, 42, 0, 0),
                tb: cells(2, 2, 0, 0),
                sl: None,
            },
            notes: "PyFunction table writing rides dynamic dispatch; Py* web defeats Serianalyzer",
        }),
        compose(Spec {
            name: "MozillaRhino",
            pkg: "org.mozilla.javascript",
            class_names: &["NativeError", "IdScriptableObject"],
            known_found: vec![(Trigger::ToString, Sink::Invoke, 1)],
            known_missed: vec![eval_sink("org.mozilla.javascript.Context", "evaluateString")],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![],
            extra_baits: 3,
            fillers: 88,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(3, 3, 0, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(93, 93, 0, 0)),
            },
            notes: "NativeError.toString re-enters the script runtime; the second dataset chain needs a live Context",
        }),
        compose(Spec {
            name: "Myface",
            pkg: "org.apache.myfaces",
            class_names: &["el.ValueBindingImpl"],
            known_found: vec![(Trigger::ReadObject, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::Invoke)],
            extra_baits: 0,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "ValueBindingImpl evaluates an attacker EL expression on restore",
        }),
        compose(Spec {
            name: "Rome",
            pkg: "com.sun.syndication",
            class_names: &["feed.impl.ToStringBean", "feed.impl.EqualsBean"],
            known_found: vec![(Trigger::ToString, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![(Trigger::Equals, Sink::Invoke)],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 1,
            fillers: 15,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(2, 0, 1, 1),
                sl: Some(cells(19, 18, 1, 0)),
            },
            notes: "ToStringBean reflects all getters; EqualsBean is the equals-triggered twin",
        }),
        compose(Spec {
            name: "Spring",
            pkg: "org.springframework",
            class_names: &[
                "core.SerializableTypeWrapper$MethodInvokeTypeProvider",
                "aop.framework.JdkDynamicAopProxy",
            ],
            known_found: vec![],
            known_missed: vec![Sink::Invoke, Sink::Lookup],
            unknowns: vec![],
            fakes: vec![
                (Trigger::ReadObject, Sink::Invoke),
                (Trigger::ReadObject, Sink::ForName),
            ],
            baits: vec![],
            extra_baits: 0,
            fillers: 2,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(2, 2, 0, 0),
                tb: cells(2, 2, 0, 0),
                sl: Some(cells(4, 4, 0, 0)),
            },
            notes: "both Spring1/Spring2 dataset chains ride JDK dynamic proxies (§V-B)",
        }),
        compose(Spec {
            name: "Vaadin1",
            pkg: "com.vaadin",
            class_names: &["data.util.PropertysetItem"],
            known_found: vec![(Trigger::ToString, Sink::Invoke, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 5,
            fillers: 15,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(6, 5, 1, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(18, 18, 0, 0)),
            },
            notes: "PropertysetItem.toString walks NestedMethodProperty getters reflectively",
        }),
        compose(Spec {
            name: "Wicket1",
            pkg: "org.apache.wicket",
            class_names: &["util.upload.DiskFileItem", "util.io.DeferredFileOutputStream"],
            known_found: vec![
                (Trigger::ReadObject, Sink::Delete, 1),
                (Trigger::ReadObject, files_sink.clone(), 1),
            ],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 1,
            fillers: 2,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(3, 2, 1, 0),
                tb: cells(2, 0, 2, 0),
                sl: Some(cells(5, 3, 2, 0)),
            },
            notes: "wicket-util vendors the FileUpload DiskFileItem primitives",
        }),
        compose(Spec {
            name: "commons-configration",
            pkg: "org.apache.commons.configuration",
            class_names: &["ConfigurationMap"],
            known_found: vec![],
            known_missed: vec![Sink::Invoke],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![],
            extra_baits: 2,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(0, 0, 0, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "the dataset chain needs a runtime-registered event listener proxy",
        }),
        compose(Spec {
            name: "spring-beans",
            pkg: "org.springframework.beans",
            class_names: &["factory.ObjectFactory", "factory.support.DefaultListableBeanFactory"],
            known_found: vec![(Trigger::ReadObject, Sink::Invoke, 1)],
            known_missed: vec![Sink::Lookup],
            unknowns: vec![],
            fakes: vec![(Trigger::ReadObject, Sink::ForName)],
            baits: vec![],
            extra_baits: 0,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(2, 2, 0, 0),
                tb: cells(2, 1, 1, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "ObjectFactory replay reflects bean getters; the second chain rides a proxy",
        }),
        compose(Spec {
            name: "spring-aop",
            pkg: "org.springframework.aop",
            class_names: &["target.JndiObjectTargetSource", "framework.AdvisedSupport"],
            known_found: vec![(Trigger::ReadObject, Sink::Lookup, 1)],
            known_missed: vec![Sink::Invoke],
            unknowns: vec![],
            fakes: vec![(Trigger::ReadObject, Sink::ForName)],
            baits: vec![(Trigger::ReadObject, Sink::Exec)],
            extra_baits: 4,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 2,
                gi: cells(6, 6, 0, 0),
                tb: cells(2, 1, 1, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "JndiObjectTargetSource.getTarget JNDI-dereferences on restore (cf. Table XI / CVE-2020-11619)",
        }),
        compose(Spec {
            name: "XBean",
            pkg: "org.apache.xbean",
            class_names: &["naming.context.ContextUtil$ReadOnlyBinding"],
            known_found: vec![(Trigger::ReadObject, Sink::Lookup, 1)],
            known_missed: vec![],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 1,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(1, 0, 1, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "ReadOnlyBinding resolves its naming reference on deserialization",
        }),
        compose(Spec {
            name: "Resin",
            pkg: "com.caucho",
            class_names: &["naming.QName"],
            known_found: vec![],
            known_missed: vec![Sink::Lookup],
            unknowns: vec![],
            fakes: vec![],
            baits: vec![(Trigger::ReadObject, Sink::ForName)],
            extra_baits: 1,
            fillers: 0,
            blowup: false,
            paper: PaperRow {
                known_in_dataset: 1,
                gi: cells(2, 2, 0, 0),
                tb: cells(0, 0, 0, 0),
                sl: Some(cells(0, 0, 0, 0)),
            },
            notes: "QName's context dereference rides a dynamic naming proxy",
        }),
    ]
}
