//! The 26 evaluated components of Table IX.
//!
//! Each component is a synthetic library mirroring the gadget-relevant
//! structure of the real jar the paper analyzed, plus a ground-truth
//! manifest (see DESIGN.md's substitution record). [`all`] returns them in
//! the paper's row order.

pub mod catalog;
pub mod commons_collections;

use crate::component::Component;

/// All Table IX components, in the paper's row order.
pub fn all() -> Vec<Component> {
    let mut kit = catalog::kit_components();
    // Row order: splice the two commons-collections rows after
    // CommonsBeanutils1 (index 5 of the kit list).
    let mut out = Vec::with_capacity(kit.len() + 2);
    let tail = kit.split_off(6);
    out.extend(kit);
    out.push(commons_collections::cc3());
    out.push(commons_collections::cc4());
    out.extend(tail);
    out
}

/// Looks up one component by (paper) name.
pub fn by_name(name: &str) -> Option<Component> {
    all().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_26_components() {
        let components = all();
        assert_eq!(components.len(), 26);
        // Paper ordering: commons-collections rows sit at positions 6 and 7.
        assert_eq!(components[6].name, "commons-colletions(3.2.1)");
        assert_eq!(components[7].name, "commons-colletions(4.0.0)");
        assert_eq!(components[0].name, "AspectJWeaver");
        assert_eq!(components[25].name, "Resin");
    }

    #[test]
    fn dataset_totals_match_table9() {
        let total: usize = all().iter().map(|c| c.truth.known_in_dataset()).sum();
        assert_eq!(total, 38);
    }

    #[test]
    fn every_component_has_paper_row_and_program() {
        for c in all() {
            assert!(c.paper.is_some(), "{} missing paper row", c.name);
            assert!(c.program.classes().len() > 20, "{} too small", c.name);
            assert!(!c.packages.is_empty());
        }
    }

    #[test]
    fn by_name_finds_components() {
        assert!(by_name("Hibernate").is_some());
        assert!(by_name("NoSuch").is_none());
    }
}
