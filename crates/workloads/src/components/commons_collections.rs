//! The two commons-collections rows of Table IX, with the real Transformer
//! machinery modeled class-by-class.
//!
//! The structure mirrors the genuine library: a `Transformer` functional
//! interface with several implementations (`InvokerTransformer` ends in
//! `Method.invoke`, `InstantiateTransformer` in `Class.forName`,
//! `FactoryTransformer` in secondary deserialization), decorated maps
//! (`LazyMap.get` applies the factory transformer), and the `TiedMapEntry`
//! pivot whose `hashCode`/`toString` re-enter `Map.get` — which is exactly
//! how the ysoserial CC chains compose. The 3.2.1 dataset's proxy-based
//! `AnnotationInvocationHandler` chain is modeled with a dynamic hop, which
//! no static tool crosses (§V-B).

use super::catalog::add_fillers;
use crate::component::{Component, PaperRow, RowCells};
use crate::gadget_kit::{add_gadget, Sink, Trigger, Twist};
use crate::jdk::add_jdk_model;
use crate::truth::{GroundTruth, TruthChain};
use tabby_ir::{JType, ProgramBuilder};

/// Sources that reach `Transformer.transform` through the map/entry
/// machinery (TiedMapEntry.hashCode / toString routes).
const MACHINERY_SOURCES: [&str; 4] = [
    "java.util.HashMap.readObject",
    "java.util.Hashtable.readObject",
    "java.util.HashSet.readObject",
    "javax.management.BadAttributeValueExpException.readObject",
];

/// Adds the Transformer machinery; returns the sink signatures reachable
/// from `Transformer.transform`.
fn add_machinery(
    pb: &mut ProgramBuilder,
    pkg: &str,
    with_comparator: bool,
    with_factory: bool,
) -> Vec<String> {
    // Transformer interface.
    let iface = format!("{pkg}.Transformer");
    let mut cb = pb.class(&iface).interface();
    let object = cb.object_type("java.lang.Object");
    cb.method("transform", vec![object.clone()], object)
        .abstract_()
        .finish();
    cb.finish();

    // ConstantTransformer — returns its field, sink-free.
    let fqcn = format!("{pkg}.functors.ConstantTransformer");
    let mut cb = pb.class(&fqcn).serializable().implements(&[&iface]);
    let object = cb.object_type("java.lang.Object");
    cb.field("iConstant", object.clone());
    let mut mb = cb.method("transform", vec![object.clone()], object.clone());
    let this = mb.this();
    let v = mb.fresh();
    mb.get_field(v, this, &fqcn, "iConstant", object.clone());
    mb.ret(v);
    mb.finish();
    cb.finish();

    // InvokerTransformer — transform(input) reflects a method on input.
    let fqcn = format!("{pkg}.functors.InvokerTransformer");
    let mut cb = pb.class(&fqcn).serializable().implements(&[&iface]);
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let class_ty = cb.object_type("java.lang.Class");
    let method_ty = cb.object_type("java.lang.reflect.Method");
    cb.field("iMethodName", string.clone());
    cb.field("iArgs", JType::array(object.clone()));
    let mut mb = cb.method("transform", vec![object.clone()], object.clone());
    let this = mb.this();
    let input = mb.param(0);
    let cls = mb.fresh();
    let get_class = mb.sig("java.lang.Object", "getClass", &[], class_ty.clone());
    mb.call_virtual(Some(cls), input, get_class, &[]);
    let mname = mb.fresh();
    mb.get_field(mname, this, &fqcn, "iMethodName", string.clone());
    let m = mb.fresh();
    let get_method = mb.sig("java.lang.Class", "getMethod", &[string.clone()], method_ty);
    mb.call_virtual(Some(m), cls, get_method, &[mname.into()]);
    let args = mb.fresh();
    mb.get_field(args, this, &fqcn, "iArgs", JType::array(object.clone()));
    let invoke = mb.sig(
        "java.lang.reflect.Method",
        "invoke",
        &[object.clone(), JType::array(object.clone())],
        object.clone(),
    );
    let r = mb.fresh();
    mb.call_virtual(Some(r), m, invoke, &[input.into(), args.into()]);
    mb.ret(r);
    mb.finish();
    cb.finish();

    // InstantiateTransformer — transform(input) loads input as a class name.
    let fqcn = format!("{pkg}.functors.InstantiateTransformer");
    let mut cb = pb.class(&fqcn).serializable().implements(&[&iface]);
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let class_ty = cb.object_type("java.lang.Class");
    let mut mb = cb.method("transform", vec![object.clone()], object.clone());
    let input = mb.param(0);
    let name = mb.fresh();
    mb.cast(name, string.clone(), input);
    let for_name = mb.sig("java.lang.Class", "forName", &[string.clone()], class_ty);
    let c = mb.fresh();
    mb.call_static(Some(c), for_name, &[name.into()]);
    mb.ret(c);
    mb.finish();
    cb.finish();

    // FactoryTransformer — transform(input) re-deserializes (3.2.1 only;
    // collections4 dropped the stream path).
    if with_factory {
        let fqcn = format!("{pkg}.functors.FactoryTransformer");
        let mut cb = pb.class(&fqcn).serializable().implements(&[&iface]);
        let object = cb.object_type("java.lang.Object");
        let ois_ty = cb.object_type("java.io.ObjectInputStream");
        let mut mb = cb.method("transform", vec![object.clone()], object.clone());
        let input = mb.param(0);
        let stream = mb.fresh();
        mb.cast(stream, ois_ty, input);
        let ro = mb.sig(
            "java.io.ObjectInputStream",
            "readObject",
            &[],
            object.clone(),
        );
        let r = mb.fresh();
        mb.call_virtual(Some(r), stream, ro, &[]);
        mb.ret(r);
        mb.finish();
        cb.finish();
    }

    // ChainedTransformer — iterates nested transformers.
    let fqcn = format!("{pkg}.functors.ChainedTransformer");
    let mut cb = pb.class(&fqcn).serializable().implements(&[&iface]);
    let object = cb.object_type("java.lang.Object");
    let iface_ty = cb.object_type(&iface);
    cb.field("iTransformers", JType::array(iface_ty.clone()));
    let mut mb = cb.method("transform", vec![object.clone()], object.clone());
    let this = mb.this();
    let input = mb.param(0);
    let arr = mb.fresh();
    mb.get_field(
        arr,
        this,
        &fqcn,
        "iTransformers",
        JType::array(iface_ty.clone()),
    );
    let t = mb.fresh();
    mb.array_get(t, arr, mb.c_int(0));
    let transform = mb.sig(&iface, "transform", &[object.clone()], object.clone());
    let r = mb.fresh();
    mb.call_interface(Some(r), t, transform, &[input.into()]);
    mb.ret(r);
    mb.finish();
    cb.finish();

    // LazyMap — get(key) applies the factory.
    let fqcn = format!("{pkg}.map.LazyMap");
    let mut cb = pb
        .class(&fqcn)
        .serializable()
        .implements(&["java.util.Map"]);
    let object = cb.object_type("java.lang.Object");
    let iface_ty = cb.object_type(&iface);
    cb.field("factory", iface_ty.clone());
    let mut mb = cb.method("get", vec![object.clone()], object.clone());
    let this = mb.this();
    let key = mb.param(0);
    let factory = mb.fresh();
    mb.get_field(factory, this, &fqcn, "factory", iface_ty.clone());
    let transform = mb.sig(&iface, "transform", &[object.clone()], object.clone());
    let v = mb.fresh();
    mb.call_interface(Some(v), factory, transform, &[key.into()]);
    mb.ret(v);
    mb.finish();
    let mut mb = cb.method("put", vec![object.clone(), object.clone()], object.clone());
    let v = mb.param(1);
    mb.ret(v);
    mb.finish();
    cb.finish();

    // TiedMapEntry — hashCode/toString re-enter Map.get.
    let fqcn = format!("{pkg}.keyvalue.TiedMapEntry");
    let mut cb = pb.class(&fqcn).serializable();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let map_ty = cb.object_type("java.util.Map");
    cb.field("map", map_ty.clone());
    cb.field("key", object.clone());
    let mut mb = cb.method("getValue", vec![], object.clone());
    let this = mb.this();
    let map = mb.fresh();
    mb.get_field(map, this, &fqcn, "map", map_ty.clone());
    let key = mb.fresh();
    mb.get_field(key, this, &fqcn, "key", object.clone());
    let get = mb.sig("java.util.Map", "get", &[object.clone()], object.clone());
    let v = mb.fresh();
    mb.call_interface(Some(v), map, get, &[key.into()]);
    mb.ret(v);
    mb.finish();
    let mut mb = cb.method("hashCode", vec![], JType::Int);
    let this = mb.this();
    let get_value = mb.sig(&fqcn, "getValue", &[], object.clone());
    let v = mb.fresh();
    mb.call_virtual(Some(v), this, get_value, &[]);
    let r = mb.fresh();
    mb.copy(r, mb.c_int(0));
    mb.ret(r);
    mb.finish();
    let mut mb = cb.method("toString", vec![], string.clone());
    let this = mb.this();
    let get_value = mb.sig(&fqcn, "getValue", &[], object.clone());
    let v = mb.fresh();
    mb.call_virtual(Some(v), this, get_value, &[]);
    let s = mb.fresh();
    mb.cast(s, string.clone(), v);
    mb.ret(s);
    mb.finish();
    cb.finish();

    // TransformingComparator (collections4) — compare applies the
    // transformer, wiring PriorityQueue.readObject into the machinery.
    if with_comparator {
        let fqcn = format!("{pkg}.comparators.TransformingComparator");
        let mut cb = pb
            .class(&fqcn)
            .serializable()
            .implements(&["java.util.Comparator"]);
        let object = cb.object_type("java.lang.Object");
        let iface_ty = cb.object_type(&iface);
        cb.field("transformer", iface_ty.clone());
        let mut mb = cb.method("compare", vec![object.clone(), object.clone()], JType::Int);
        let this = mb.this();
        let a = mb.param(0);
        let t = mb.fresh();
        mb.get_field(t, this, &fqcn, "transformer", iface_ty.clone());
        let transform = mb.sig(&iface, "transform", &[object.clone()], object.clone());
        let v = mb.fresh();
        mb.call_interface(Some(v), t, transform, &[a.into()]);
        let r = mb.fresh();
        mb.copy(r, mb.c_int(0));
        mb.ret(r);
        mb.finish();
        cb.finish();
    }

    let mut sinks = vec![Sink::Invoke.signature(), Sink::ForName.signature()];
    if with_factory {
        sinks.push(Sink::SecondaryDeserialization.signature());
    }
    sinks
}

fn cells(result: usize, fake: usize, known: usize, unknown: usize) -> RowCells {
    RowCells {
        result,
        fake,
        known,
        unknown,
    }
}

/// `commons-colletions(3.2.1)` (paper spelling) — 5 dataset chains, one of
/// which (AnnotationInvocationHandler) rides a dynamic proxy.
pub fn cc3() -> Component {
    let pkg = "org.apache.commons.collections";
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let machinery_sinks = add_machinery(&mut pb, pkg, false, true);

    let mut chains = Vec::new();
    // The four map/entry sources × three transformer sinks: the dataset
    // records the Method.invoke family; the rest are effective unknowns.
    for source in MACHINERY_SOURCES {
        for sink in &machinery_sinks {
            if sink == &Sink::Invoke.signature() {
                chains.push(TruthChain::known(source, sink));
            } else {
                chains.push(TruthChain::unknown(source, sink));
            }
        }
    }
    // The fifth dataset chain: AnnotationInvocationHandler's proxy hop.
    let aih = "sun.reflect.annotation.AnnotationInvocationHandler";
    add_gadget(
        &mut pb,
        aih,
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::DynamicProxy,
    );
    chains.push(TruthChain::known(
        &format!("{aih}.readObject"),
        &Sink::Invoke.signature(),
    ));
    // DefaultedMap's own readObject invokes directly — a planted unknown.
    let dm = format!("{pkg}.map.DefaultedMap");
    add_gadget(
        &mut pb,
        &dm,
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    chains.push(TruthChain::unknown(
        &format!("{dm}.readObject"),
        &Sink::Invoke.signature(),
    ));
    // Guard-dead fakes: a pivot whose dangerous call can never execute.
    add_gadget(
        &mut pb,
        &format!("{pkg}.functors.SwitchTransformer"),
        Trigger::HashCode,
        &Sink::Exec,
        Twist::Guarded,
    );
    add_gadget(
        &mut pb,
        &format!("{pkg}.functors.StringValueTransformer"),
        Trigger::ToString,
        &Sink::Exec,
        Twist::Guarded,
    );
    // Sanitize baits for the assume-controllable baselines.
    for (i, sink) in [Sink::Exec, Sink::ForName, Sink::Lookup, Sink::Exec]
        .iter()
        .enumerate()
    {
        add_gadget(
            &mut pb,
            &format!("{pkg}.functors.CloneTransformer{i}"),
            Trigger::ReadObject,
            sink,
            Twist::Sanitized,
        );
    }

    add_fillers(&mut pb, pkg, 50);

    Component::new(
        "commons-colletions(3.2.1)",
        pb.build(),
        GroundTruth::new(chains),
        &[pkg, "sun.reflect.annotation"],
    )
    .with_paper_row(PaperRow {
        known_in_dataset: 5,
        gi: cells(4, 3, 0, 1),
        tb: cells(17, 4, 4, 9),
        sl: Some(cells(73, 73, 0, 0)),
    })
    .with_notes(
        "full Transformer machinery: InvokerTransformer / InstantiateTransformer / \
         FactoryTransformer behind LazyMap.get and TiedMapEntry pivots; AIH chain \
         rides a dynamic proxy",
    )
}

/// `commons-colletions(4.0.0)` — 2 dataset chains through
/// `TransformingComparator`; the TemplatesImpl variant is proxy-driven.
pub fn cc4() -> Component {
    let pkg = "org.apache.commons.collections4";
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let machinery_sinks = add_machinery(&mut pb, pkg, true, false);

    let mut chains = Vec::new();
    // Five sources (the four map/entry routes plus PriorityQueue via
    // TransformingComparator) × two transformer sinks, minus the secondary
    // deserialization family (collections4 dropped FactoryTransformer's
    // stream path — keep pair space at 10).
    let mut sources: Vec<&str> = MACHINERY_SOURCES.to_vec();
    sources.push("java.util.PriorityQueue.readObject");
    for source in &sources {
        for sink in &machinery_sinks {
            let is_cc2 = *source == "java.util.PriorityQueue.readObject"
                && sink == &Sink::Invoke.signature();
            if is_cc2 {
                chains.push(TruthChain::known(source, sink));
            } else {
                chains.push(TruthChain::unknown(source, sink));
            }
        }
    }
    // The second dataset chain (CC4-style TemplatesImpl.newTransformer) is
    // reached through a proxy-bridged transformer: missed by all tools.
    let bridge = format!("{pkg}.functors.PrototypeFactory");
    add_gadget(
        &mut pb,
        &bridge,
        Trigger::ReadObject,
        &Sink::NewTransformer,
        Twist::DynamicProxy,
    );
    chains.push(TruthChain::known(
        &format!("{bridge}.readObject"),
        &Sink::NewTransformer.signature(),
    ));
    // Planted unknowns beyond the machinery grid: DefaultedMap's direct
    // invoke plus lookup-flavored pivots.
    let dm = format!("{pkg}.map.DefaultedMap");
    add_gadget(
        &mut pb,
        &dm,
        Trigger::ReadObject,
        &Sink::Invoke,
        Twist::Plain,
    );
    chains.push(TruthChain::unknown(
        &format!("{dm}.readObject"),
        &Sink::Invoke.signature(),
    ));
    let tm = format!("{pkg}.map.TransformedMap");
    add_gadget(
        &mut pb,
        &tm,
        Trigger::ReadObject,
        &Sink::Lookup,
        Twist::Plain,
    );
    chains.push(TruthChain::unknown(
        &format!("{tm}.readObject"),
        &Sink::Lookup.signature(),
    ));
    let mv = format!("{pkg}.map.MultiValueMap");
    add_gadget(
        &mut pb,
        &mv,
        Trigger::ReadObject,
        &Sink::GetConnection,
        Twist::Plain,
    );
    chains.push(TruthChain::unknown(
        &format!("{mv}.readObject"),
        &Sink::GetConnection.signature(),
    ));
    // Guard-dead fakes: hashCode (3 pairs), toString (1), compare (1).
    add_gadget(
        &mut pb,
        &format!("{pkg}.functors.SwitchTransformer"),
        Trigger::HashCode,
        &Sink::Exec,
        Twist::Guarded,
    );
    add_gadget(
        &mut pb,
        &format!("{pkg}.functors.StringValueTransformer"),
        Trigger::ToString,
        &Sink::Exec,
        Twist::Guarded,
    );
    add_gadget(
        &mut pb,
        &format!("{pkg}.comparators.FixedOrderComparator"),
        Trigger::Compare,
        &Sink::Exec,
        Twist::Guarded,
    );
    // Baits for the baselines.
    for (i, sink) in [Sink::Exec, Sink::ForName, Sink::Lookup, Sink::Exec]
        .iter()
        .enumerate()
    {
        add_gadget(
            &mut pb,
            &format!("{pkg}.functors.CloneTransformer{i}"),
            Trigger::ReadObject,
            sink,
            Twist::Sanitized,
        );
    }

    add_fillers(&mut pb, pkg, 16);

    Component::new(
        "commons-colletions(4.0.0)",
        pb.build(),
        GroundTruth::new(chains),
        &[pkg],
    )
    .with_paper_row(PaperRow {
        known_in_dataset: 2,
        gi: cells(4, 3, 0, 1),
        tb: cells(18, 5, 1, 12),
        sl: Some(cells(38, 38, 0, 0)),
    })
    .with_notes(
        "collections4 machinery adds TransformingComparator (PriorityQueue trigger); \
         the TemplatesImpl variant is proxy-bridged",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc3_manifest_counts() {
        let c = cc3();
        assert_eq!(c.truth.known_in_dataset(), 5);
        // 4 known-found + 1 known-missed + 9 unknowns.
        assert_eq!(c.truth.chains.len(), 5 + 9);
    }

    #[test]
    fn cc4_manifest_counts() {
        let c = cc4();
        assert_eq!(c.truth.known_in_dataset(), 2);
        assert_eq!(c.truth.chains.len(), 2 + 12);
    }
}
