//! # tabby-workloads — synthetic Java-library corpora with ground truth
//!
//! The evaluation substrate of the Tabby reproduction. Real jar files
//! (ysoserial/marshalsec components, Spring, JDK8, middleware) are not
//! shippable; instead this crate generates IR programs that mirror each
//! evaluated component's *gadget-relevant structure* — see DESIGN.md's
//! substitution table — together with ground-truth manifests so the
//! harness can compute the FPR/FNR of Table IX exactly as Formulas 5–6 do.
//!
//! - [`jdk`]: the runtime-class model chains execute through (HashMap,
//!   PriorityQueue, URL, Runtime, Method, TemplatesImpl, …);
//! - [`gadget_kit`]: the recurring structural motifs (trigger × sink ×
//!   twist) components are assembled from;
//! - [`components`]: one module per Table IX row;
//! - [`scenes`]: the Table X development-environment scenes;
//! - [`activation`]: two-version scenes where a dependency bump completes a
//!   dormant chain (the differential-scanning ground truth);
//! - [`random_lib`]: the scalable random-library generator for Table VIII;
//! - [`search_web`]: layered caller lattices above real sinks that give the
//!   backward search paper-shaped work without adding any chains;
//! - [`recursion`]: mutual-recursion cliques chained into a DAG that give
//!   the summarizer's SCC-wave scheduler real recursion, also chain-free;
//! - [`truth`]: manifests and the FPR/FNR arithmetic;
//! - [`oracle`]: the guard-honouring effectiveness check standing in for
//!   the paper's manual PoC verification.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod component;
pub mod components;
pub mod gadget_kit;
pub mod jdk;
pub mod oracle;
pub mod random_lib;
pub mod recursion;
pub mod scenes;
pub mod search_web;
pub mod truth;

pub use activation::{activation_scenes, activation_scenes_smoke, ActivationScene};
pub use component::Component;
pub use gadget_kit::{Sink, Trigger, Twist};
pub use recursion::{add_recursion_web, RecursionWebConfig};
pub use search_web::{add_search_web, SearchWebConfig};
pub use truth::{ChainClass, EvalCounts, GroundTruth, TruthChain};
