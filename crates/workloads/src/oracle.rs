//! The effectiveness oracle: the automated stand-in for the paper's manual
//! PoC verification (§IV-C).
//!
//! The paper's authors instantiated each reported chain and ran it; a chain
//! whose control flow is cut by a conditional the detector ignored is a
//! *fake*. The oracle reproduces that judgment statically but **honouring
//! guards**: for every call step of a chain it checks that the call
//! statement is reachable from the method entry when branch conditions
//! decidable by constant propagation are actually decided (the detector, by
//! design, treats both branch arms as reachable — §IV-E names exactly this
//! as its false-positive source).

use std::collections::{HashMap, HashSet, VecDeque};
use tabby_core::Cpg;
use tabby_graph::Direction;
use tabby_ir::{Body, CmpOp, Constant, Expr, Local, Operand, Place, Program, Stmt};
use tabby_pathfinder::GadgetChain;

/// Checks every step of `chain` (node pairs from source to sink) against
/// the program: a step is valid if it is an ALIAS hop, or if the caller
/// contains a *guard-reachable* call statement targeting the callee.
pub fn chain_is_effective(program: &Program, cpg: &Cpg, chain: &GadgetChain) -> bool {
    if chain.nodes.len() < 2 {
        return false;
    }
    for pair in chain.nodes.windows(2) {
        let (from, to) = (pair[0], pair[1]);
        // ALIAS hops (either direction) carry no guard.
        let alias_hop = cpg
            .graph
            .edges_of(from, Direction::Both, Some(cpg.schema.alias))
            .iter()
            .any(|&e| cpg.graph.other_node(e, from) == to);
        if alias_hop {
            continue;
        }
        // Otherwise this must be a call step from an analyzed caller.
        let Some(caller_id) = cpg.node_method(from) else {
            return false;
        };
        let Some(body) = program.method(caller_id).body.as_ref() else {
            return false;
        };
        let callee_name = cpg
            .graph
            .node_prop(to, cpg.schema.name)
            .and_then(|v| v.as_str())
            .unwrap_or("");
        let callee_arity = cpg
            .graph
            .node_prop(to, cpg.schema.param_count)
            .and_then(|v| v.as_int())
            .unwrap_or(-1);
        let reachable = reachable_stmts(body);
        let mut step_ok = false;
        for (i, stmt) in body.stmts.iter().enumerate() {
            if let Some(inv) = stmt.invoke() {
                if program.name(inv.callee.name) == callee_name
                    && inv.args.len() as i64 == callee_arity
                    && reachable.contains(&i)
                {
                    step_ok = true;
                    break;
                }
            }
        }
        if !step_ok {
            return false;
        }
    }
    true
}

/// Statement indices reachable from the entry when constant-decidable
/// branches are decided.
///
/// Constant tracking is deliberately simple: a local is a known integer if
/// it is assigned an integer literal exactly once in the body (the pattern
/// the planted fake chains use). Branches whose comparison involves only
/// known values follow a single arm; everything else follows both.
pub fn reachable_stmts(body: &Body) -> HashSet<usize> {
    let consts = single_assignment_constants(body);
    let value_of = |op: &Operand| -> Option<i64> {
        match op {
            Operand::Const(Constant::Int(v)) => Some(*v),
            Operand::Local(l) => consts.get(l).copied(),
            _ => None,
        }
    };
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    if !body.stmts.is_empty() {
        queue.push_back(0usize);
        seen.insert(0usize);
    }
    while let Some(i) = queue.pop_front() {
        let stmt = &body.stmts[i];
        let push = |to: usize, seen: &mut HashSet<usize>, queue: &mut VecDeque<usize>| {
            if to < body.stmts.len() && seen.insert(to) {
                queue.push_back(to);
            }
        };
        match stmt {
            Stmt::If { cond, target } => {
                let taken = body.target(*target);
                match (value_of(&cond.lhs), value_of(&cond.rhs)) {
                    (Some(a), Some(b)) => {
                        let t = match cond.op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                        };
                        if t {
                            push(taken, &mut seen, &mut queue);
                        } else {
                            push(i + 1, &mut seen, &mut queue);
                        }
                    }
                    _ => {
                        push(taken, &mut seen, &mut queue);
                        push(i + 1, &mut seen, &mut queue);
                    }
                }
            }
            Stmt::Goto(target) => push(body.target(*target), &mut seen, &mut queue),
            Stmt::Switch {
                key,
                cases,
                default,
            } => match value_of(key) {
                Some(v) => {
                    let arm = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, l)| *l)
                        .unwrap_or(*default);
                    push(body.target(arm), &mut seen, &mut queue);
                }
                None => {
                    for (_, l) in cases {
                        push(body.target(*l), &mut seen, &mut queue);
                    }
                    push(body.target(*default), &mut seen, &mut queue);
                }
            },
            Stmt::Return(_) | Stmt::Throw(_) | Stmt::Ret(_) => {}
            _ => push(i + 1, &mut seen, &mut queue),
        }
    }
    seen
}

/// Locals assigned exactly once, to an integer literal.
fn single_assignment_constants(body: &Body) -> HashMap<Local, i64> {
    let mut counts: HashMap<Local, usize> = HashMap::new();
    let mut values: HashMap<Local, i64> = HashMap::new();
    for stmt in &body.stmts {
        match stmt {
            Stmt::Assign {
                place: Place::Local(l),
                rhs,
            } => {
                *counts.entry(*l).or_insert(0) += 1;
                if let Expr::Use(Operand::Const(Constant::Int(v))) = rhs {
                    values.insert(*l, *v);
                }
            }
            Stmt::Identity { local, .. } => {
                *counts.entry(*local).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    values
        .into_iter()
        .filter(|(l, _)| counts.get(l) == Some(&1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_core::AnalysisConfig;
    use tabby_ir::{JType, ProgramBuilder};
    use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};

    /// A component with one real chain and one guard-dead chain.
    fn program_with_guarded_fake() -> Program {
        let mut pb = ProgramBuilder::new();
        // Real: Evil.readObject -> Runtime.exec(field).
        let mut cb = pb.class("w.Evil").serializable();
        let string = cb.object_type("java.lang.String");
        let ois = cb.object_type("java.io.ObjectInputStream");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![ois.clone()], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "w.Evil", "cmd", string.clone());
        let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], JType::Void);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.finish();
        cb.finish();
        // Fake: the dangerous call is behind a constant-false guard.
        let mut cb = pb.class("w.Guarded").serializable();
        let string = cb.object_type("java.lang.String");
        let ois = cb.object_type("java.io.ObjectInputStream");
        cb.field("cmd", string.clone());
        let mut mb = cb.method("readObject", vec![ois], JType::Void);
        let this = mb.this();
        let cmd = mb.fresh();
        mb.get_field(cmd, this, "w.Guarded", "cmd", string.clone());
        let flag = mb.fresh();
        mb.copy(flag, mb.c_int(0));
        let skip = mb.fresh_label();
        // if (flag == 0) goto skip — always taken; the call below is dead.
        mb.if_(tabby_ir::CmpOp::Eq, flag, mb.c_int(0), skip);
        let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], JType::Void);
        let rt = mb.fresh();
        mb.copy(rt, mb.c_null());
        mb.call_virtual(None, rt, exec, &[cmd.into()]);
        mb.place(skip);
        mb.ret_void();
        mb.finish();
        cb.finish();
        pb.build()
    }

    #[test]
    fn oracle_separates_real_from_guard_dead() {
        let p = program_with_guarded_fake();
        let mut cpg = tabby_core::Cpg::build(&p, AnalysisConfig::default());
        let chains = find_gadget_chains(
            &mut cpg,
            &SinkCatalog::paper(),
            &SourceCatalog::native_serialization(),
            &SearchConfig::default(),
        );
        // The detector (guard-blind) reports both chains — the paper's FP
        // mechanism.
        assert_eq!(chains.len(), 2);
        let effective: Vec<bool> = chains
            .iter()
            .map(|c| chain_is_effective(&p, &cpg, c))
            .collect();
        let real = chains
            .iter()
            .position(|c| c.source().starts_with("w.Evil"))
            .unwrap();
        let fake = chains
            .iter()
            .position(|c| c.source().starts_with("w.Guarded"))
            .unwrap();
        assert!(effective[real]);
        assert!(!effective[fake]);
    }

    #[test]
    fn reachability_decides_constant_branches() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Void);
        let flag = mb.fresh();
        mb.copy(flag, mb.c_int(1));
        let skip = mb.fresh_label();
        mb.if_(tabby_ir::CmpOp::Ne, flag, mb.c_int(1), skip);
        mb.nop(); // reachable (branch not taken)
        mb.place(skip);
        mb.ret_void();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        let r = reachable_stmts(body);
        // stmts: assign, if, nop, return — all reachable except none.
        assert!(r.contains(&2));
    }

    #[test]
    fn reachability_kills_dead_arm() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Void);
        let flag = mb.fresh();
        mb.copy(flag, mb.c_int(0));
        let skip = mb.fresh_label();
        mb.if_(tabby_ir::CmpOp::Eq, flag, mb.c_int(0), skip);
        mb.nop(); // dead: branch always taken
        mb.place(skip);
        mb.ret_void();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        let r = reachable_stmts(body);
        assert!(!r.contains(&2));
        assert!(r.contains(&3));
    }

    #[test]
    fn switch_with_constant_key_follows_one_arm() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", vec![], JType::Void);
        let k = mb.fresh();
        mb.copy(k, mb.c_int(2));
        let a = mb.fresh_label();
        let b = mb.fresh_label();
        let d = mb.fresh_label();
        mb.switch(k, vec![(1, a), (2, b)], d);
        mb.place(a);
        mb.nop(); // dead
        mb.place(b);
        mb.nop(); // live (case 2)
        mb.place(d);
        mb.ret_void();
        mb.finish();
        cb.finish();
        let p = pb.build();
        let id = p.method_ids().next().unwrap();
        let body = p.method(id).body.as_ref().unwrap();
        let r = reachable_stmts(body);
        // stmts: assign, switch, nop(a), nop(b), return(d)
        assert!(!r.contains(&2));
        assert!(r.contains(&3));
    }
}
