//! Mutual-recursion cliques chained into a DAG: summarizer-stress webs.
//!
//! The search web ([`crate::search_web`]) gives the backward *search*
//! paper-shaped work; this module does the same for the *summarizer's*
//! scheduler. Each clique is one class whose `spin0..spinK` methods call
//! each other in a ring — a K-method recursion SCC that Tarjan condensation
//! must keep whole — and each clique's entry method also calls the next
//! clique's entry, so the condensed graph is a chain of SCCs that
//! schedules as one topological wave per clique.
//!
//! Like the search web, the cliques contribute **zero chains**: no clique
//! class is serializable, none has a source-shaped method name, none calls
//! a sink, and nothing outside the web calls into it. Scene chain sets and
//! FPRs are unchanged; only the controllability fixpoint has recursion to
//! chew on.

use tabby_ir::{JType, ProgramBuilder};

/// Shape of the recursion web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursionWebConfig {
    /// Mutual-recursion cliques (each becomes one SCC and one wave).
    pub cliques: usize,
    /// Methods per clique (the SCC size).
    pub clique_size: usize,
}

impl RecursionWebConfig {
    /// A small web for smoke scenes: three 4-method SCCs.
    pub fn smoke() -> Self {
        Self {
            cliques: 3,
            clique_size: 4,
        }
    }
}

/// Adds the web under `{pkg}.rec`. Clique *c* is class `R{c}` with methods
/// `spin0..spin{K-1}`; `spin_m` calls `spin_{(m+1) mod K}` on `this` (the
/// ring that makes the clique one SCC), and `spin0` additionally calls
/// `R{c+1}.spin0` through a field (the DAG edge between SCCs).
pub fn add_recursion_web(pb: &mut ProgramBuilder, pkg: &str, config: &RecursionWebConfig) {
    let class_name = |c: usize| format!("{pkg}.rec.R{c}");
    for c in 0..config.cliques {
        let fqcn = class_name(c);
        let mut cb = pb.class(&fqcn);
        let object = cb.object_type("java.lang.Object");
        if c + 1 < config.cliques {
            let next_ty = cb.object_type(&class_name(c + 1));
            cb.field("next", next_ty);
        }
        for m in 0..config.clique_size {
            let mut mb = cb.method(&format!("spin{m}"), vec![object.clone()], JType::Void);
            let this = mb.this();
            let p = mb.param(0);
            let succ = mb.sig(
                &fqcn,
                &format!("spin{}", (m + 1) % config.clique_size.max(1)),
                &[mb.object_type("java.lang.Object")],
                JType::Void,
            );
            mb.call_virtual(None, this, succ, &[p.into()]);
            if m == 0 && c + 1 < config.cliques {
                let next_name = class_name(c + 1);
                let next_ty = mb.object_type(&next_name);
                let recv = mb.fresh();
                mb.get_field(recv, this, &fqcn, "next", next_ty);
                let entry = mb.sig(
                    &next_name,
                    "spin0",
                    &[mb.object_type("java.lang.Object")],
                    JType::Void,
                );
                mb.call_virtual(None, recv, entry, &[p.into()]);
            }
            mb.finish();
        }
        cb.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_core::{
        canonical_summary_dump, summarize_program_contained, summarize_program_sharded_contained,
        AnalysisConfig, StaticCallGraph,
    };

    #[test]
    fn cliques_condense_to_one_scc_and_one_wave_each() {
        let config = RecursionWebConfig {
            cliques: 5,
            clique_size: 6,
        };
        let mut pb = ProgramBuilder::new();
        add_recursion_web(&mut pb, "stress", &config);
        let program = pb.build();
        let schedule = StaticCallGraph::build(&program).schedule_all();
        assert_eq!(schedule.scheduled, config.cliques * config.clique_size);
        assert_eq!(schedule.largest_scc, config.clique_size);
        // The cliques chain head→tail, so condensation yields one wave per
        // clique, deepest callee first.
        assert_eq!(schedule.waves.len(), config.cliques);
        for wave in &schedule.waves {
            assert_eq!(wave.len(), 1, "one SCC per wave");
            assert_eq!(wave[0].len(), config.clique_size);
        }
    }

    #[test]
    fn wave_scheduler_handles_recursion_exactly_once() {
        let mut pb = ProgramBuilder::new();
        add_recursion_web(
            &mut pb,
            "stress",
            &RecursionWebConfig {
                cliques: 4,
                clique_size: 5,
            },
        );
        let program = pb.build();
        let config = AnalysisConfig::default();
        let reference = summarize_program_sharded_contained(&program, &config, 1, None);
        let want = canonical_summary_dump(&program, &reference.summaries);
        for threads in [1usize, 4] {
            let outcome = summarize_program_contained(&program, &config, threads, None);
            assert_eq!(
                canonical_summary_dump(&program, &outcome.summaries),
                want,
                "threads={threads}"
            );
            // Exactly once, even inside the recursion SCCs.
            assert_eq!(outcome.scheduler.summaries_computed, 20);
            assert_eq!(outcome.scheduler.methods_analyzed, 20);
            assert_eq!(outcome.scheduler.largest_scc, 5);
        }
    }
}
