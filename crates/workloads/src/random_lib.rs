//! Deterministic random-library generation, for the CPG-efficiency
//! experiment (Table VIII) and as scene filler (Table X).
//!
//! The generator produces class hierarchies with interface implementations,
//! fields, and method bodies whose statements exercise every Table IV rule
//! (assignments, field/array traffic, casts, branches, calls) with a
//! configurable call fan-out — so CPG construction over generated libraries
//! measures the same work as over real jars of comparable class/method
//! counts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tabby_ir::{CmpOp, JType, Program, ProgramBuilder};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct RandomLibConfig {
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Number of classes.
    pub classes: usize,
    /// Methods per class.
    pub methods_per_class: usize,
    /// Fields per class.
    pub fields_per_class: usize,
    /// Statements per method body (before calls).
    pub stmts_per_method: usize,
    /// Outgoing calls per method body.
    pub fanout: usize,
    /// One in `interface_ratio` classes is an interface.
    pub interface_ratio: usize,
}

impl Default for RandomLibConfig {
    fn default() -> Self {
        Self {
            seed: 0x7abb,
            classes: 200,
            methods_per_class: 6,
            fields_per_class: 3,
            stmts_per_method: 6,
            fanout: 3,
            interface_ratio: 10,
        }
    }
}

/// Generates a standalone random library.
pub fn generate(config: &RandomLibConfig) -> Program {
    let mut pb = ProgramBuilder::new();
    generate_into(&mut pb, "gen", config);
    pb.build()
}

/// Generates a random library into an existing builder under `pkg`.
pub fn generate_into(pb: &mut ProgramBuilder, pkg: &str, config: &RandomLibConfig) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = config.classes;
    if n == 0 {
        return;
    }
    let class_name = |i: usize| format!("{pkg}.p{}.C{i}", i % 17);
    let is_interface = |i: usize| config.interface_ratio > 0 && i % config.interface_ratio == 0;
    let method_name = |j: usize| format!("m{j}");

    for i in 0..n {
        let fqcn = class_name(i);
        let cb = pb.class(&fqcn);
        if is_interface(i) {
            let mut cb = cb.interface();
            let object = cb.object_type("java.lang.Object");
            for j in 0..config.methods_per_class {
                cb.method(&method_name(j), vec![object.clone()], object.clone())
                    .abstract_()
                    .finish();
            }
            cb.finish();
            continue;
        }
        let mut cb = cb;
        let object = cb.object_type("java.lang.Object");
        // Hierarchy: extend an earlier non-interface class sometimes,
        // implement an earlier interface sometimes.
        if i > 1 && rng.random_bool(0.3) {
            let sup = rng.random_range(0..i);
            if !is_interface(sup) {
                cb.extends_in_place(&class_name(sup));
            }
        }
        if i > 0 && rng.random_bool(0.4) {
            let ratio = config.interface_ratio.max(1);
            let itf = (rng.random_range(0..i) / ratio) * ratio;
            if itf < i && is_interface(itf) {
                let name = class_name(itf);
                cb.implements_in_place(&[name.as_str()]);
            }
        }
        if rng.random_bool(0.25) {
            cb.serializable_in_place();
        }
        for f in 0..config.fields_per_class {
            let ty = if f % 2 == 0 {
                object.clone()
            } else {
                JType::Int
            };
            cb.field(&format!("f{f}"), ty);
        }
        for j in 0..config.methods_per_class {
            let mut mb = cb.method(&method_name(j), vec![object.clone()], object.clone());
            let this = mb.this();
            let p0 = mb.param(0);
            let mut cursor = p0;
            for s in 0..config.stmts_per_method {
                match s % 5 {
                    0 => {
                        // Field load of a controllable object.
                        let v = mb.fresh();
                        mb.get_field(v, this, &fqcn, "f0", object.clone());
                        cursor = v;
                    }
                    1 => {
                        let v = mb.fresh();
                        mb.copy(v, cursor);
                        cursor = v;
                    }
                    2 => {
                        // Field store.
                        mb.put_field(this, &fqcn, "f0", object.clone(), cursor);
                    }
                    3 => {
                        // A branch over an int field.
                        let flag = mb.fresh();
                        mb.get_field(flag, this, &fqcn, "f1", JType::Int);
                        let skip = mb.fresh_label();
                        mb.if_(CmpOp::Eq, flag, mb.c_int(0), skip);
                        let fresh = mb.fresh();
                        mb.new_obj(fresh, "java.lang.Object");
                        mb.put_field(this, &fqcn, "f0", object.clone(), fresh);
                        mb.place(skip);
                        mb.nop();
                    }
                    _ => {
                        let v = mb.fresh();
                        mb.cast(v, object.clone(), cursor);
                        cursor = v;
                    }
                }
            }
            // Calls to random methods elsewhere in the library.
            for _ in 0..config.fanout {
                let target_class = rng.random_range(0..n);
                let target_method = rng.random_range(0..config.methods_per_class);
                let callee_class = class_name(target_class);
                let callee = mb.sig(
                    &callee_class,
                    &method_name(target_method),
                    &[object.clone()],
                    object.clone(),
                );
                let cast_ty = mb.object_type(&callee_class);
                let recv = mb.fresh();
                if is_interface(target_class) {
                    mb.cast(recv, cast_ty, cursor);
                    let r = mb.fresh();
                    mb.call_interface(Some(r), recv, callee, &[cursor.into()]);
                    cursor = r;
                } else {
                    let raw = mb.fresh();
                    mb.get_field(raw, this, &fqcn, "f2", object.clone());
                    mb.cast(recv, cast_ty, raw);
                    let r = mb.fresh();
                    mb.call_virtual(Some(r), recv, callee, &[cursor.into()]);
                    cursor = r;
                }
            }
            mb.ret(cursor);
            mb.finish();
        }
        cb.finish();
    }
}

/// The paper's Table VIII rows: code amount (MB), jar-file count, and the
/// node/edge counts the paper measured.
#[derive(Debug, Clone, Copy)]
pub struct Table8Row {
    /// "Code amount (MB)".
    pub code_mb: u32,
    /// "Jar file count".
    pub jar_count: u32,
    /// "Class node count".
    pub class_nodes: u32,
    /// "Method node count".
    pub method_nodes: u32,
    /// "Relationship Edge count".
    pub edges: u32,
    /// "Time consuming (min)".
    pub minutes: f64,
}

/// Table VIII as printed in the paper.
#[rustfmt::skip]
pub const TABLE8_PAPER: [Table8Row; 7] = [
    Table8Row { code_mb: 10,  jar_count: 29,  class_nodes: 9055,  method_nodes: 59508,  edges: 189021,  minutes: 1.9 },
    Table8Row { code_mb: 20,  jar_count: 63,  class_nodes: 14765, method_nodes: 107623, edges: 341111,  minutes: 3.1 },
    Table8Row { code_mb: 30,  jar_count: 88,  class_nodes: 21104, method_nodes: 153653, edges: 491651,  minutes: 6.0 },
    Table8Row { code_mb: 40,  jar_count: 93,  class_nodes: 25532, method_nodes: 198130, edges: 628392,  minutes: 9.8 },
    Table8Row { code_mb: 50,  jar_count: 95,  class_nodes: 30859, method_nodes: 249545, edges: 816421,  minutes: 12.7 },
    Table8Row { code_mb: 100, jar_count: 113, class_nodes: 32713, method_nodes: 268670, edges: 857881,  minutes: 20.1 },
    Table8Row { code_mb: 150, jar_count: 155, class_nodes: 66247, method_nodes: 503358, edges: 1587266, minutes: 36.3 },
];

/// A generation config whose class/method counts track a Table VIII row at
/// `scale` (1.0 = the paper's size; benchmarks default to 0.1).
pub fn config_for_row(row: &Table8Row, scale: f64) -> RandomLibConfig {
    let classes = ((row.class_nodes as f64) * scale).max(1.0) as usize;
    let methods = ((row.method_nodes as f64) / (row.class_nodes as f64)).round() as usize;
    RandomLibConfig {
        seed: u64::from(row.code_mb),
        classes,
        methods_per_class: methods.max(1),
        ..RandomLibConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = RandomLibConfig {
            classes: 30,
            ..RandomLibConfig::default()
        };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.classes().len(), b.classes().len());
        assert_eq!(a.method_count(), b.method_count());
        let pa = tabby_ir::printer::print_program(&a);
        let pb = tabby_ir::printer::print_program(&b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn class_and_method_counts_match_config() {
        let config = RandomLibConfig {
            classes: 50,
            methods_per_class: 4,
            ..RandomLibConfig::default()
        };
        let p = generate(&config);
        assert_eq!(p.classes().len(), 50);
        assert_eq!(p.method_count(), 200);
    }

    #[test]
    fn generated_library_analyzes_cleanly() {
        let config = RandomLibConfig {
            classes: 60,
            ..RandomLibConfig::default()
        };
        let p = generate(&config);
        let cpg = tabby_core::Cpg::build(&p, tabby_core::AnalysisConfig::default());
        assert!(cpg.stats.method_nodes >= p.method_count());
        assert!(cpg.stats.relationship_edges > p.method_count());
    }

    #[test]
    fn row_configs_scale() {
        let c = config_for_row(&TABLE8_PAPER[0], 0.01);
        assert_eq!(c.classes, 90);
        assert!(c.methods_per_class >= 6);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomLibConfig {
            classes: 20,
            seed: 1,
            ..RandomLibConfig::default()
        });
        let b = generate(&RandomLibConfig {
            classes: 20,
            seed: 2,
            ..RandomLibConfig::default()
        });
        assert_ne!(
            tabby_ir::printer::print_program(&a),
            tabby_ir::printer::print_program(&b)
        );
    }
}
