//! Reusable gadget-structure builders.
//!
//! Every evaluated component (Table IX) is assembled from a handful of
//! recurring structural motifs — a *trigger* (which deserialization entry
//! point reaches the component's code) wired to a *sink* (Table VII), with
//! optional twists: a constant guard (detector-visible but ineffective — a
//! planted fake), a sanitizing callee (caught by Tabby's interprocedural
//! Action, missed by assume-controllable baselines), or a dynamic-proxy hop
//! (invisible to every static tool, §V-B). The builders return the
//! `(source, sink)` signature pairs each motif makes discoverable so the
//! component can assemble its ground-truth manifest.

use tabby_ir::{CmpOp, InvokeExpr, InvokeKind, JType, Local, MethodBuilder, ProgramBuilder, Stmt};

/// A sink to wire a gadget into.
#[derive(Debug, Clone)]
pub enum Sink {
    /// `java.lang.Runtime.exec(cmd)` — EXEC.
    Exec,
    /// `java.lang.reflect.Method.invoke(target, args)` — CODE.
    Invoke,
    /// `javax.naming.Context.lookup(name)` — JNDI.
    Lookup,
    /// `java.lang.Class.forName(name)` — CODE.
    ForName,
    /// `java.io.File.delete()` — FILE.
    Delete,
    /// `java.net.InetAddress.getByName(host)` — SSRF.
    GetByName,
    /// `java.net.URL.openConnection()` — SSRF.
    OpenConnection,
    /// `TemplatesImpl.newTransformer()` — CODE.
    NewTransformer,
    /// `javax.sql.DataSource.getConnection()` — JDBC.
    GetConnection,
    /// `java.io.ObjectInputStream.readObject()` — JDV (secondary
    /// deserialization).
    SecondaryDeserialization,
    /// Any single-argument instance sink `class.method(tainted)` resolved
    /// against the catalog by name (e.g. `bsh.Interpreter.eval`).
    Custom {
        /// Sink class.
        class: String,
        /// Sink method.
        method: String,
        /// Total value arguments.
        arity: usize,
        /// Which position carries the tainted value (0 = receiver).
        tainted_pos: usize,
    },
}

impl Sink {
    /// The `Class.method` signature the chain report will show.
    pub fn signature(&self) -> String {
        match self {
            Sink::Exec => "java.lang.Runtime.exec".to_owned(),
            Sink::Invoke => "java.lang.reflect.Method.invoke".to_owned(),
            Sink::Lookup => "javax.naming.Context.lookup".to_owned(),
            Sink::ForName => "java.lang.Class.forName".to_owned(),
            Sink::Delete => "java.io.File.delete".to_owned(),
            Sink::GetByName => "java.net.InetAddress.getByName".to_owned(),
            Sink::OpenConnection => "java.net.URL.openConnection".to_owned(),
            Sink::NewTransformer => {
                "com.sun.org.apache.xalan.internal.xsltc.trax.TemplatesImpl.newTransformer"
                    .to_owned()
            }
            Sink::GetConnection => "javax.sql.DataSource.getConnection".to_owned(),
            Sink::SecondaryDeserialization => "java.io.ObjectInputStream.readObject".to_owned(),
            Sink::Custom { class, method, .. } => format!("{class}.{method}"),
        }
    }

    /// Emits the sink call with `tainted` flowing into the Trigger_Condition
    /// position(s).
    pub fn emit(&self, mb: &mut MethodBuilder<'_, '_>, tainted: Local) {
        let object = mb.object_type("java.lang.Object");
        let string = mb.object_type("java.lang.String");
        match self {
            Sink::Exec => {
                let runtime = mb.object_type("java.lang.Runtime");
                let process = mb.object_type("java.lang.Process");
                let cmd = mb.fresh();
                mb.cast(cmd, string.clone(), tainted);
                let rt = mb.fresh();
                let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
                mb.call_static(Some(rt), get_rt, &[]);
                let exec = mb.sig("java.lang.Runtime", "exec", &[string], process);
                mb.call_virtual(None, rt, exec, &[cmd.into()]);
            }
            Sink::Invoke => {
                let method_ty = mb.object_type("java.lang.reflect.Method");
                let m = mb.fresh();
                mb.cast(m, method_ty, tainted);
                let invoke = mb.sig(
                    "java.lang.reflect.Method",
                    "invoke",
                    &[object.clone(), JType::array(object.clone())],
                    object,
                );
                mb.call_virtual(None, m, invoke, &[tainted.into(), tainted.into()]);
            }
            Sink::Lookup => {
                let ctx_ty = mb.object_type("javax.naming.InitialContext");
                let name = mb.fresh();
                mb.cast(name, string.clone(), tainted);
                let ctx = mb.fresh();
                mb.new_with_ctor(ctx, "javax.naming.InitialContext", &[], &[]);
                let _ = ctx_ty;
                let lookup = mb.sig("javax.naming.Context", "lookup", &[string], object);
                mb.call_interface(None, ctx, lookup, &[name.into()]);
            }
            Sink::ForName => {
                let class_ty = mb.object_type("java.lang.Class");
                let name = mb.fresh();
                mb.cast(name, string.clone(), tainted);
                let for_name = mb.sig("java.lang.Class", "forName", &[string], class_ty);
                let c = mb.fresh();
                mb.call_static(Some(c), for_name, &[name.into()]);
            }
            Sink::Delete => {
                let file_ty = mb.object_type("java.io.File");
                let f = mb.fresh();
                mb.cast(f, file_ty, tainted);
                let delete = mb.sig("java.io.File", "delete", &[], JType::Boolean);
                let r = mb.fresh();
                mb.call_virtual(Some(r), f, delete, &[]);
            }
            Sink::GetByName => {
                let inet = mb.object_type("java.net.InetAddress");
                let host = mb.fresh();
                mb.cast(host, string.clone(), tainted);
                let gbn = mb.sig("java.net.InetAddress", "getByName", &[string], inet);
                let a = mb.fresh();
                mb.call_static(Some(a), gbn, &[host.into()]);
            }
            Sink::OpenConnection => {
                let url_ty = mb.object_type("java.net.URL");
                let conn = mb.object_type("java.net.URLConnection");
                let u = mb.fresh();
                mb.cast(u, url_ty, tainted);
                let oc = mb.sig("java.net.URL", "openConnection", &[], conn);
                let c = mb.fresh();
                mb.call_virtual(Some(c), u, oc, &[]);
            }
            Sink::NewTransformer => {
                const TCLASS: &str = "com.sun.org.apache.xalan.internal.xsltc.trax.TemplatesImpl";
                let t_ty = mb.object_type(TCLASS);
                let transformer = mb.object_type("javax.xml.transform.Transformer");
                let t = mb.fresh();
                mb.cast(t, t_ty, tainted);
                let nt = mb.sig(TCLASS, "newTransformer", &[], transformer);
                let r = mb.fresh();
                mb.call_virtual(Some(r), t, nt, &[]);
            }
            Sink::GetConnection => {
                let ds_ty = mb.object_type("javax.sql.DataSource");
                let conn = mb.object_type("java.sql.Connection");
                let ds = mb.fresh();
                mb.cast(ds, ds_ty, tainted);
                let gc = mb.sig("javax.sql.DataSource", "getConnection", &[], conn);
                let c = mb.fresh();
                mb.call_virtual(Some(c), ds, gc, &[]);
            }
            Sink::SecondaryDeserialization => {
                let ois_ty = mb.object_type("java.io.ObjectInputStream");
                let s = mb.fresh();
                mb.cast(s, ois_ty, tainted);
                let ro = mb.sig("java.io.ObjectInputStream", "readObject", &[], object);
                let o = mb.fresh();
                mb.call_virtual(Some(o), s, ro, &[]);
            }
            Sink::Custom {
                class,
                method,
                arity,
                tainted_pos,
            } => {
                let recv = mb.fresh();
                if *tainted_pos == 0 {
                    let cls_ty = mb.object_type(class);
                    mb.cast(recv, cls_ty, tainted);
                } else {
                    mb.copy(recv, mb.c_null());
                }
                let params: Vec<JType> = (0..*arity).map(|_| object.clone()).collect();
                let callee = {
                    let class = class.clone();
                    let method = method.clone();
                    mb.sig(&class, &method, &params, object.clone())
                };
                let args: Vec<tabby_ir::Operand> = (1..=*arity)
                    .map(|i| {
                        if i == *tainted_pos {
                            tainted.into()
                        } else {
                            mb.c_null()
                        }
                    })
                    .collect();
                mb.call_virtual(None, recv, callee, &args);
            }
        }
    }
}

/// Which deserialization machinery reaches the gadget's pivot method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// The class's own `readObject`.
    ReadObject,
    /// `toString`, fired by `BadAttributeValueExpException.readObject`.
    ToString,
    /// `hashCode`, fired by `HashMap`/`Hashtable`/`HashSet` readObject.
    HashCode,
    /// `equals`, fired by `HashMap.readObject` collision probing.
    Equals,
    /// `Comparator.compare`, fired by `PriorityQueue.readObject`.
    Compare,
    /// The class's own `readResolve`.
    ReadResolve,
}

impl Trigger {
    /// The source signatures that fire this trigger (each yields one
    /// discoverable `(source, sink)` pair).
    pub fn sources(self, fqcn: &str) -> Vec<String> {
        match self {
            Trigger::ReadObject => vec![format!("{fqcn}.readObject")],
            Trigger::ReadResolve => vec![format!("{fqcn}.readResolve")],
            Trigger::ToString => {
                vec!["javax.management.BadAttributeValueExpException.readObject".to_owned()]
            }
            Trigger::HashCode => vec![
                "java.util.HashMap.readObject".to_owned(),
                "java.util.Hashtable.readObject".to_owned(),
                "java.util.HashSet.readObject".to_owned(),
            ],
            Trigger::Equals => vec!["java.util.HashMap.readObject".to_owned()],
            Trigger::Compare => vec!["java.util.PriorityQueue.readObject".to_owned()],
        }
    }
}

/// How the gadget body is twisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Twist {
    /// Straight field-to-sink flow: effective, found by Tabby.
    Plain,
    /// The sink call sits behind a constant-false guard: found by the
    /// guard-blind detector, rejected by the PoC oracle — a planted fake.
    Guarded,
    /// The tainted value is routed through a helper that *replaces* it
    /// before the sink: Tabby's Action analysis prunes the call (PP all-∞);
    /// assume-controllable baselines still report it.
    Sanitized,
    /// The pivot is reached through a dynamic-proxy (`invokedynamic`) hop:
    /// no static tool sees the edge (§V-B) — a dataset chain all tools miss.
    DynamicProxy,
}

/// The discoverable pairs a motif contributes, for manifest assembly.
#[derive(Debug, Clone)]
pub struct MotifPairs {
    /// `(source signature, sink signature)` pairs.
    pub pairs: Vec<(String, String)>,
}

/// Adds one gadget class and returns the `(source, sink)` pairs it makes
/// discoverable (empty for twists that hide the chain from the detector:
/// the pairs are still real for `DynamicProxy` ground truth, so they *are*
/// returned for it — the caller decides how to classify).
pub fn add_gadget(
    pb: &mut ProgramBuilder,
    fqcn: &str,
    trigger: Trigger,
    sink: &Sink,
    twist: Twist,
) -> MotifPairs {
    let mut cb = pb.class(fqcn).serializable();
    if trigger == Trigger::Compare {
        cb.implements_in_place(&["java.util.Comparator"]);
    }
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let ois = cb.object_type("java.io.ObjectInputStream");
    cb.field("payload", object.clone());

    // The pivot method the trigger invokes.
    let (name, params, ret): (&str, Vec<JType>, JType) = match trigger {
        Trigger::ReadObject => ("readObject", vec![ois.clone()], JType::Void),
        Trigger::ReadResolve => ("readResolve", vec![], object.clone()),
        Trigger::ToString => ("toString", vec![], string.clone()),
        Trigger::HashCode => ("hashCode", vec![], JType::Int),
        Trigger::Equals => ("equals", vec![object.clone()], JType::Boolean),
        Trigger::Compare => ("compare", vec![object.clone(), object.clone()], JType::Int),
    };
    let mut mb = cb.method(name, params, ret.clone());
    let this = mb.this();
    let tainted = mb.fresh();
    mb.get_field(tainted, this, fqcn, "payload", object.clone());
    match twist {
        Twist::Plain => sink.emit(&mut mb, tainted),
        Twist::Guarded => {
            // if (flag == 0) goto skip; <sink>; skip:
            let flag = mb.fresh();
            mb.copy(flag, mb.c_int(0));
            let skip = mb.fresh_label();
            mb.if_(CmpOp::Eq, flag, mb.c_int(0), skip);
            sink.emit(&mut mb, tainted);
            mb.place(skip);
            mb.nop();
        }
        Twist::Sanitized => {
            // helper(tainted) — helper replaces its parameter before the sink.
            let helper = mb.sig(fqcn, "process", &[object.clone()], JType::Void);
            mb.call_virtual(None, this, helper, &[tainted.into()]);
        }
        Twist::DynamicProxy => {
            // The proxy hop: an invokedynamic call the analysis cannot model.
            let callee = mb.sig(fqcn, "proxyTarget", &[object.clone()], JType::Void);
            mb.push(Stmt::Invoke(InvokeExpr {
                kind: InvokeKind::Dynamic,
                base: None,
                callee,
                args: vec![tainted.into()],
            }));
        }
    }
    match ret {
        JType::Void => {}
        JType::Int | JType::Boolean => {
            let r = mb.fresh();
            mb.copy(r, mb.c_int(0));
            mb.ret(r);
        }
        _ => {
            mb.ret(tainted);
        }
    }
    mb.finish();

    if twist == Twist::Sanitized {
        let mut mb = cb.method("process", vec![object.clone()], JType::Void);
        let x = mb.param(0);
        // The replacement Tabby's Action tracks and baselines ignore.
        mb.new_obj(x, "java.lang.Object");
        sink.emit(&mut mb, x);
        mb.finish();
    }
    if twist == Twist::DynamicProxy {
        let mut mb = cb.method("proxyTarget", vec![object.clone()], JType::Void);
        let x = mb.param(0);
        sink.emit(&mut mb, x);
        mb.finish();
    }
    cb.finish();

    let sink_sig = sink.signature();
    MotifPairs {
        pairs: trigger
            .sources(fqcn)
            .into_iter()
            .map(|s| (s, sink_sig.clone()))
            .collect(),
    }
}

/// Adds a two-class delegation gadget: `fqcn.readObject` passes its payload
/// to `helper_fqcn.run`, which calls the sink — exercising interprocedural
/// Polluted_Position propagation.
pub fn add_delegation_gadget(
    pb: &mut ProgramBuilder,
    fqcn: &str,
    helper_fqcn: &str,
    sink: &Sink,
) -> MotifPairs {
    let mut cb = pb.class(fqcn).serializable();
    let object = cb.object_type("java.lang.Object");
    let ois = cb.object_type("java.io.ObjectInputStream");
    let helper_ty = cb.object_type(helper_fqcn);
    cb.field("payload", object.clone());
    cb.field("delegate", helper_ty.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let tainted = mb.fresh();
    mb.get_field(tainted, this, fqcn, "payload", object.clone());
    let delegate = mb.fresh();
    mb.get_field(delegate, this, fqcn, "delegate", helper_ty.clone());
    let run = mb.sig(helper_fqcn, "run", &[object.clone()], JType::Void);
    mb.call_virtual(None, delegate, run, &[tainted.into()]);
    mb.finish();
    cb.finish();

    let mut cb = pb.class(helper_fqcn).serializable();
    let object = cb.object_type("java.lang.Object");
    let mut mb = cb.method("run", vec![object.clone()], JType::Void);
    let x = mb.param(0);
    sink.emit(&mut mb, x);
    mb.finish();
    cb.finish();

    MotifPairs {
        pairs: vec![(format!("{fqcn}.readObject"), sink.signature())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jdk::add_jdk_model;
    use tabby_core::{AnalysisConfig, Cpg};
    use tabby_pathfinder::{
        find_gadget_chains, GadgetChain, SearchConfig, SinkCatalog, SourceCatalog,
    };

    fn run(
        build: impl FnOnce(&mut ProgramBuilder) -> MotifPairs,
    ) -> (Vec<GadgetChain>, MotifPairs) {
        let mut pb = ProgramBuilder::new();
        add_jdk_model(&mut pb);
        let pairs = build(&mut pb);
        let p = pb.build();
        let mut cpg = Cpg::build(&p, AnalysisConfig::default());
        let chains = find_gadget_chains(
            &mut cpg,
            &SinkCatalog::paper(),
            &SourceCatalog::native_serialization(),
            &SearchConfig::default(),
        );
        (chains, pairs)
    }

    fn has_pair(chains: &[GadgetChain], pair: &(String, String)) -> bool {
        chains
            .iter()
            .any(|c| c.source() == pair.0 && c.sink() == pair.1)
    }

    #[test]
    fn plain_readobject_gadget_found() {
        let (chains, pairs) =
            run(|pb| add_gadget(pb, "kit.A", Trigger::ReadObject, &Sink::Exec, Twist::Plain));
        assert!(has_pair(&chains, &pairs.pairs[0]));
    }

    #[test]
    fn hashcode_gadget_fires_from_all_three_maps() {
        let (chains, pairs) =
            run(|pb| add_gadget(pb, "kit.H", Trigger::HashCode, &Sink::ForName, Twist::Plain));
        assert_eq!(pairs.pairs.len(), 3);
        for pair in &pairs.pairs {
            assert!(has_pair(&chains, pair), "missing {pair:?}");
        }
    }

    #[test]
    fn tostring_gadget_fires_from_bavee() {
        let (chains, pairs) =
            run(|pb| add_gadget(pb, "kit.T", Trigger::ToString, &Sink::Lookup, Twist::Plain));
        assert!(has_pair(&chains, &pairs.pairs[0]));
        assert_eq!(
            pairs.pairs[0].0,
            "javax.management.BadAttributeValueExpException.readObject"
        );
    }

    #[test]
    fn compare_gadget_fires_from_priority_queue() {
        let (chains, pairs) =
            run(|pb| add_gadget(pb, "kit.C", Trigger::Compare, &Sink::Invoke, Twist::Plain));
        assert!(has_pair(&chains, &pairs.pairs[0]));
    }

    #[test]
    fn guarded_gadget_is_reported_by_detector() {
        // The detector is guard-blind: the chain appears in the output (it
        // will be classified fake by the manifest/oracle).
        let (chains, pairs) = run(|pb| {
            add_gadget(
                pb,
                "kit.G",
                Trigger::ReadObject,
                &Sink::Exec,
                Twist::Guarded,
            )
        });
        assert!(has_pair(&chains, &pairs.pairs[0]));
    }

    #[test]
    fn sanitized_gadget_is_pruned_by_tabby() {
        let (chains, pairs) = run(|pb| {
            add_gadget(
                pb,
                "kit.S",
                Trigger::ReadObject,
                &Sink::Exec,
                Twist::Sanitized,
            )
        });
        assert!(!has_pair(&chains, &pairs.pairs[0]));
    }

    #[test]
    fn dynamic_proxy_gadget_is_invisible() {
        let (chains, pairs) = run(|pb| {
            add_gadget(
                pb,
                "kit.D",
                Trigger::ReadObject,
                &Sink::Exec,
                Twist::DynamicProxy,
            )
        });
        assert!(!has_pair(&chains, &pairs.pairs[0]));
    }

    #[test]
    fn delegation_gadget_found_interprocedurally() {
        let (chains, pairs) =
            run(|pb| add_delegation_gadget(pb, "kit.Del", "kit.DelHelper", &Sink::Lookup));
        assert!(has_pair(&chains, &pairs.pairs[0]));
        // The route passes through the helper.
        let chain = chains
            .iter()
            .find(|c| c.source() == pairs.pairs[0].0 && c.sink() == pairs.pairs[0].1)
            .unwrap();
        assert!(chain.signatures.contains(&"kit.DelHelper.run".to_owned()));
    }
}
