//! The JDK model: stub implementations of the runtime classes gadget chains
//! run through.
//!
//! The paper analyzes real `rt.jar`; we model the relevant slice in IR —
//! each class keeps the *dataflow skeleton* of its real implementation
//! (which fields flow into which calls), because that is what the
//! controllability analysis consumes. Method bodies are reduced to the
//! statements on the gadget-relevant paths; unrelated code is omitted.

use tabby_ir::{JType, ProgramBuilder};

/// Adds the full JDK model to `pb`. Call once per builder before adding
/// component classes.
pub fn add_jdk_model(pb: &mut ProgramBuilder) {
    add_lang(pb);
    add_io(pb);
    add_util(pb);
    add_reflect(pb);
    add_net(pb);
    add_naming(pb);
    add_xml(pb);
}

fn add_lang(pb: &mut ProgramBuilder) {
    // java.lang.Object — the root; hashCode/equals/toString are the virtual
    // dispatch anchors every alias edge ultimately points at.
    let mut cb = pb.class("java.lang.Object");
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let class_ty = cb.object_type("java.lang.Class");
    cb.method("hashCode", vec![], JType::Int).native().finish();
    cb.method("equals", vec![object.clone()], JType::Boolean)
        .native()
        .finish();
    cb.method("toString", vec![], string.clone())
        .native()
        .finish();
    cb.method("getClass", vec![], class_ty).native().finish();
    cb.finish();

    // Marker interfaces.
    pb.class("java.io.Serializable").interface().finish();
    pb.class("java.io.Externalizable").interface().finish();

    // java.lang.String — opaque value class.
    let mut cb = pb.class("java.lang.String").serializable();
    let string = cb.object_type("java.lang.String");
    cb.method("toString", vec![], string.clone())
        .native()
        .finish();
    cb.method("hashCode", vec![], JType::Int).native().finish();
    cb.finish();

    // java.lang.Runtime — EXEC sink host.
    let mut cb = pb.class("java.lang.Runtime");
    let runtime = cb.object_type("java.lang.Runtime");
    let string = cb.object_type("java.lang.String");
    let process = cb.object_type("java.lang.Process");
    cb.static_field("currentRuntime", runtime.clone());
    let mut mb = cb.method("getRuntime", vec![], runtime.clone()).static_();
    let v = mb.fresh();
    mb.get_static(v, "java.lang.Runtime", "currentRuntime", runtime.clone());
    mb.ret(v);
    mb.finish();
    cb.method("exec", vec![string.clone()], process.clone())
        .native()
        .finish();
    cb.finish();

    // java.lang.ProcessBuilder / ProcessImpl — the other EXEC sinks.
    let mut cb = pb.class("java.lang.ProcessBuilder");
    let process = cb.object_type("java.lang.Process");
    cb.method("start", vec![], process.clone())
        .native()
        .finish();
    cb.finish();
    let mut cb = pb.class("java.lang.ProcessImpl");
    let process = cb.object_type("java.lang.Process");
    let string = cb.object_type("java.lang.String");
    cb.method("start", vec![JType::array(string.clone())], process)
        .native()
        .finish();
    cb.finish();

    // java.lang.Class / ClassLoader — CODE sinks.
    let mut cb = pb.class("java.lang.Class");
    let class_ty = cb.object_type("java.lang.Class");
    let string = cb.object_type("java.lang.String");
    let method_ty = cb.object_type("java.lang.reflect.Method");
    let object = cb.object_type("java.lang.Object");
    cb.method("forName", vec![string.clone()], class_ty.clone())
        .static_()
        .native()
        .finish();
    cb.method("getMethod", vec![string.clone()], method_ty)
        .native()
        .finish();
    cb.method("newInstance", vec![], object.clone())
        .native()
        .finish();
    cb.finish();

    let mut cb = pb.class("java.lang.ClassLoader");
    let string = cb.object_type("java.lang.String");
    let class_ty = cb.object_type("java.lang.Class");
    cb.method("loadClass", vec![string.clone()], class_ty.clone())
        .native()
        .finish();
    cb.method("defineClass", vec![JType::array(JType::Byte)], class_ty)
        .native()
        .finish();
    cb.finish();

    // java.lang.System — loadLibrary CODE sink.
    let mut cb = pb.class("java.lang.System");
    let string = cb.object_type("java.lang.String");
    cb.method("loadLibrary", vec![string], JType::Void)
        .native()
        .finish();
    cb.finish();

    pb.class("java.lang.Process").finish();
}

fn add_io(pb: &mut ProgramBuilder) {
    // java.io.ObjectInputStream — the deserialization engine; readObject is
    // itself a JDV sink (secondary deserialization).
    let mut cb = pb.class("java.io.ObjectInputStream");
    let object = cb.object_type("java.lang.Object");
    let getfield = cb.object_type("java.io.ObjectInputStream$GetField");
    cb.method("readObject", vec![], object.clone())
        .native()
        .finish();
    cb.method("defaultReadObject", vec![], JType::Void)
        .native()
        .finish();
    cb.method("readFields", vec![], getfield).native().finish();
    cb.finish();

    let mut cb = pb.class("java.io.ObjectInputStream$GetField");
    let string = cb.object_type("java.lang.String");
    let object = cb.object_type("java.lang.Object");
    cb.method("get", vec![string, object.clone()], object)
        .native()
        .finish();
    cb.finish();

    // java.io.File — FILE sinks.
    let mut cb = pb.class("java.io.File").serializable();
    let string = cb.object_type("java.lang.String");
    let file = cb.object_type("java.io.File");
    cb.field("path", string);
    cb.method("delete", vec![], JType::Boolean)
        .native()
        .finish();
    cb.method("renameTo", vec![file], JType::Boolean)
        .native()
        .finish();
    cb.finish();
}

fn add_util(pb: &mut ProgramBuilder) {
    // java.util.Map / Comparator interfaces.
    let mut cb = pb.class("java.util.Map").interface();
    let object = cb.object_type("java.lang.Object");
    cb.method("get", vec![object.clone()], object.clone())
        .abstract_()
        .finish();
    cb.method("put", vec![object.clone(), object.clone()], object)
        .abstract_()
        .finish();
    cb.finish();

    let mut cb = pb.class("java.util.Comparator").interface();
    let object = cb.object_type("java.lang.Object");
    cb.method("compare", vec![object.clone(), object], JType::Int)
        .abstract_()
        .finish();
    cb.finish();

    // java.util.HashMap — readObject rehashes: hash(key) -> key.hashCode().
    let mut cb = pb.class("java.util.HashMap").serializable();
    cb.implements_in_place(&["java.util.Map"]);
    let object = cb.object_type("java.lang.Object");
    let ois = cb.object_type("java.io.ObjectInputStream");
    cb.field("key", object.clone());
    cb.field("value", object.clone());
    let mut mb = cb.method("readObject", vec![ois.clone()], JType::Void);
    let this = mb.this();
    let key = mb.fresh();
    mb.get_field(key, this, "java.util.HashMap", "key", object.clone());
    let hash = mb.sig("java.util.HashMap", "hash", &[object.clone()], JType::Int);
    let h = mb.fresh();
    mb.call_static(Some(h), hash, &[key.into()]);
    // Collision probing compares reconstructed keys with equals.
    let other = mb.fresh();
    mb.get_field(other, this, "java.util.HashMap", "value", object.clone());
    let eq = mb.sig(
        "java.lang.Object",
        "equals",
        &[object.clone()],
        JType::Boolean,
    );
    let e = mb.fresh();
    mb.call_virtual(Some(e), key, eq, &[other.into()]);
    mb.finish();
    let mut mb = cb
        .method("hash", vec![object.clone()], JType::Int)
        .static_();
    let k = mb.param(0);
    let hc = mb.sig("java.lang.Object", "hashCode", &[], JType::Int);
    let r = mb.fresh();
    mb.call_virtual(Some(r), k, hc, &[]);
    mb.ret(r);
    mb.finish();
    // get(Object): probes with key.equals(storedKey).
    let mut mb = cb.method("get", vec![object.clone()], object.clone());
    let this = mb.this();
    let k = mb.param(0);
    let stored = mb.fresh();
    mb.get_field(stored, this, "java.util.HashMap", "key", object.clone());
    let eq = mb.sig(
        "java.lang.Object",
        "equals",
        &[object.clone()],
        JType::Boolean,
    );
    let e = mb.fresh();
    mb.call_virtual(Some(e), k, eq, &[stored.into()]);
    let v = mb.fresh();
    mb.get_field(v, this, "java.util.HashMap", "value", object.clone());
    mb.ret(v);
    mb.finish();
    let mut mb = cb.method("put", vec![object.clone(), object.clone()], object.clone());
    let this = mb.this();
    let k = mb.param(0);
    let v = mb.param(1);
    let hash = mb.sig("java.util.HashMap", "hash", &[object.clone()], JType::Int);
    let h = mb.fresh();
    mb.call_static(Some(h), hash, &[k.into()]);
    mb.put_field(this, "java.util.HashMap", "key", object.clone(), k);
    mb.put_field(this, "java.util.HashMap", "value", object.clone(), v);
    mb.ret(mb.c_null());
    mb.finish();
    cb.finish();

    // java.util.HashSet — readObject repopulates the backing map.
    let mut cb = pb.class("java.util.HashSet").serializable();
    let object = cb.object_type("java.lang.Object");
    let ois = cb.object_type("java.io.ObjectInputStream");
    let map_ty = cb.object_type("java.util.HashMap");
    cb.field("map", map_ty.clone());
    cb.field("element", object.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let map = mb.fresh();
    mb.get_field(map, this, "java.util.HashSet", "map", map_ty.clone());
    let elem = mb.fresh();
    mb.get_field(elem, this, "java.util.HashSet", "element", object.clone());
    let put = mb.sig(
        "java.util.HashMap",
        "put",
        &[object.clone(), object.clone()],
        object.clone(),
    );
    mb.call_virtual(None, map, put, &[elem.into(), elem.into()]);
    mb.finish();
    cb.finish();

    // java.util.Hashtable — readObject -> reconstitutionPut -> key.hashCode.
    let mut cb = pb.class("java.util.Hashtable").serializable();
    cb.implements_in_place(&["java.util.Map"]);
    let object = cb.object_type("java.lang.Object");
    let ois = cb.object_type("java.io.ObjectInputStream");
    cb.field("key", object.clone());
    let mut mb = cb.method("readObject", vec![ois.clone()], JType::Void);
    let this = mb.this();
    let key = mb.fresh();
    mb.get_field(key, this, "java.util.Hashtable", "key", object.clone());
    let rp = mb.sig(
        "java.util.Hashtable",
        "reconstitutionPut",
        &[object.clone()],
        JType::Void,
    );
    mb.call_virtual(None, this, rp, &[key.into()]);
    mb.finish();
    let mut mb = cb
        .method("reconstitutionPut", vec![object.clone()], JType::Void)
        .private();
    let k = mb.param(0);
    let hc = mb.sig("java.lang.Object", "hashCode", &[], JType::Int);
    let r = mb.fresh();
    mb.call_virtual(Some(r), k, hc, &[]);
    mb.finish();
    cb.finish();

    // java.util.PriorityQueue — readObject -> heapify -> comparator.compare.
    let mut cb = pb.class("java.util.PriorityQueue").serializable();
    let object = cb.object_type("java.lang.Object");
    let ois = cb.object_type("java.io.ObjectInputStream");
    let comparator = cb.object_type("java.util.Comparator");
    cb.field("comparator", comparator.clone());
    cb.field("element", object.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let heapify = mb.sig("java.util.PriorityQueue", "heapify", &[], JType::Void);
    mb.call_virtual(None, this, heapify, &[]);
    mb.finish();
    let mut mb = cb.method("heapify", vec![], JType::Void).private();
    let this = mb.this();
    let elem = mb.fresh();
    mb.get_field(
        elem,
        this,
        "java.util.PriorityQueue",
        "element",
        object.clone(),
    );
    let sd = mb.sig(
        "java.util.PriorityQueue",
        "siftDownUsingComparator",
        &[object.clone()],
        JType::Void,
    );
    mb.call_virtual(None, this, sd, &[elem.into()]);
    mb.finish();
    let mut mb = cb
        .method("siftDownUsingComparator", vec![object.clone()], JType::Void)
        .private();
    let this = mb.this();
    let x = mb.param(0);
    let cmp = mb.fresh();
    mb.get_field(
        cmp,
        this,
        "java.util.PriorityQueue",
        "comparator",
        comparator.clone(),
    );
    let compare = mb.sig(
        "java.util.Comparator",
        "compare",
        &[object.clone(), object.clone()],
        JType::Int,
    );
    let r = mb.fresh();
    mb.call_interface(Some(r), cmp, compare, &[x.into(), x.into()]);
    mb.finish();
    cb.finish();

    // javax.management.BadAttributeValueExpException — readObject calls
    // val.toString() (the toString pivot used by CC5, Rome, …).
    let mut cb = pb.class("javax.management.BadAttributeValueExpException");
    cb.serializable_in_place();
    let object = cb.object_type("java.lang.Object");
    let string = cb.object_type("java.lang.String");
    let ois = cb.object_type("java.io.ObjectInputStream");
    cb.field("val", object.clone());
    let mut mb = cb.method("readObject", vec![ois], JType::Void);
    let this = mb.this();
    let val = mb.fresh();
    mb.get_field(
        val,
        this,
        "javax.management.BadAttributeValueExpException",
        "val",
        object.clone(),
    );
    let ts = mb.sig("java.lang.Object", "toString", &[], string);
    mb.call_virtual(None, val, ts, &[]);
    mb.finish();
    cb.finish();
}

fn add_reflect(pb: &mut ProgramBuilder) {
    // java.lang.reflect.Method — the reflection CODE sink.
    let mut cb = pb.class("java.lang.reflect.Method");
    let object = cb.object_type("java.lang.Object");
    cb.method(
        "invoke",
        vec![object.clone(), JType::array(object.clone())],
        object,
    )
    .native()
    .finish();
    cb.finish();
}

fn add_net(pb: &mut ProgramBuilder) {
    // java.net.InetAddress — SSRF sink.
    let mut cb = pb.class("java.net.InetAddress");
    let string = cb.object_type("java.lang.String");
    let inet = cb.object_type("java.net.InetAddress");
    cb.method("getByName", vec![string], inet)
        .static_()
        .native()
        .finish();
    cb.finish();

    // java.net.URLStreamHandler — hashCode(URL) -> getHostAddress(URL) ->
    // InetAddress.getByName(host) (Fig. 3 core code).
    let mut cb = pb.class("java.net.URLStreamHandler");
    let url_ty = cb.object_type("java.net.URL");
    let string = cb.object_type("java.lang.String");
    let inet = cb.object_type("java.net.InetAddress");
    let mut mb = cb.method("hashCode", vec![url_ty.clone()], JType::Int);
    let this = mb.this();
    let u = mb.param(0);
    let gha = mb.sig(
        "java.net.URLStreamHandler",
        "getHostAddress",
        &[url_ty.clone()],
        inet.clone(),
    );
    let addr = mb.fresh();
    mb.call_virtual(Some(addr), this, gha, &[u.into()]);
    let r = mb.fresh();
    mb.copy(r, mb.c_int(0));
    mb.ret(r);
    mb.finish();
    let mut mb = cb.method("getHostAddress", vec![url_ty.clone()], inet.clone());
    let u = mb.param(0);
    let host = mb.fresh();
    mb.get_field(host, u, "java.net.URL", "host", string.clone());
    let gbn = mb.sig(
        "java.net.InetAddress",
        "getByName",
        &[string.clone()],
        inet.clone(),
    );
    let r = mb.fresh();
    mb.call_static(Some(r), gbn, &[host.into()]);
    mb.ret(r);
    mb.finish();
    cb.finish();

    // java.net.URL — hashCode delegates to the handler; openConnection and
    // openStream are SSRF sinks.
    let mut cb = pb.class("java.net.URL").serializable();
    let string = cb.object_type("java.lang.String");
    let handler_ty = cb.object_type("java.net.URLStreamHandler");
    let url_ty = cb.object_type("java.net.URL");
    let conn = cb.object_type("java.net.URLConnection");
    let stream = cb.object_type("java.io.InputStream");
    cb.field("host", string.clone());
    cb.field("handler", handler_ty.clone());
    let mut mb = cb.method("hashCode", vec![], JType::Int);
    let this = mb.this();
    let handler = mb.fresh();
    mb.get_field(handler, this, "java.net.URL", "handler", handler_ty.clone());
    let hc = mb.sig(
        "java.net.URLStreamHandler",
        "hashCode",
        &[url_ty],
        JType::Int,
    );
    let r = mb.fresh();
    mb.call_virtual(Some(r), handler, hc, &[this.into()]);
    mb.ret(r);
    mb.finish();
    cb.method("openConnection", vec![], conn).native().finish();
    cb.method("openStream", vec![], stream).native().finish();
    cb.finish();

    let mut cb = pb.class("java.net.URLConnection");
    let stream = cb.object_type("java.io.InputStream");
    cb.method("getInputStream", vec![], stream)
        .native()
        .finish();
    cb.finish();
}

fn add_naming(pb: &mut ProgramBuilder) {
    // javax.naming.Context — JNDI sink interface.
    let mut cb = pb.class("javax.naming.Context").interface();
    let string = cb.object_type("java.lang.String");
    let object = cb.object_type("java.lang.Object");
    cb.method("lookup", vec![string], object)
        .abstract_()
        .finish();
    cb.finish();

    let mut cb = pb
        .class("javax.naming.InitialContext")
        .implements(&["javax.naming.Context"]);
    let string = cb.object_type("java.lang.String");
    let object = cb.object_type("java.lang.Object");
    cb.method("lookup", vec![string.clone()], object.clone())
        .native()
        .finish();
    cb.method("doLookup", vec![string], object)
        .static_()
        .native()
        .finish();
    cb.finish();

    // java.rmi.registry.Registry — the RMI JNDI sink.
    let mut cb = pb.class("java.rmi.registry.Registry").interface();
    let string = cb.object_type("java.lang.String");
    let remote = cb.object_type("java.rmi.Remote");
    cb.method("lookup", vec![string], remote)
        .abstract_()
        .finish();
    cb.finish();
}

fn add_xml(pb: &mut ProgramBuilder) {
    // TemplatesImpl — the classic bytecode-loading pivot; newTransformer is
    // itself a CODE sink (TC [0]) and internally reaches defineClass.
    const TCLASS: &str = "com.sun.org.apache.xalan.internal.xsltc.trax.TemplatesImpl";
    let mut cb = pb.class(TCLASS).serializable();
    let bytes = JType::array(JType::Byte);
    let transformer = cb.object_type("javax.xml.transform.Transformer");
    let class_ty = cb.object_type("java.lang.Class");
    let loader_ty = cb.object_type("java.lang.ClassLoader");
    let object = cb.object_type("java.lang.Object");
    cb.field("_bytecodes", bytes.clone());
    cb.field("_loader", loader_ty.clone());
    let mut mb = cb.method("newTransformer", vec![], transformer);
    let this = mb.this();
    let dtc = mb.sig(TCLASS, "defineTransletClasses", &[], JType::Void);
    mb.call_virtual(None, this, dtc, &[]);
    let v = mb.fresh();
    mb.copy(v, mb.c_null());
    mb.ret(v);
    mb.finish();
    let mut mb = cb
        .method("defineTransletClasses", vec![], JType::Void)
        .private();
    let this = mb.this();
    let bc = mb.fresh();
    mb.get_field(bc, this, TCLASS, "_bytecodes", bytes.clone());
    let loader = mb.fresh();
    mb.get_field(loader, this, TCLASS, "_loader", loader_ty.clone());
    let dc = mb.sig(
        "java.lang.ClassLoader",
        "defineClass",
        &[JType::array(JType::Byte)],
        class_ty.clone(),
    );
    let cls = mb.fresh();
    mb.call_virtual(Some(cls), loader, dc, &[bc.into()]);
    let ni = mb.sig("java.lang.Class", "newInstance", &[], object);
    mb.call_virtual(None, cls, ni, &[]);
    mb.finish();
    cb.finish();

    // javax.xml.transform.Transformer — XXE sink.
    let mut cb = pb.class("javax.xml.transform.Transformer").abstract_();
    let src = cb.object_type("javax.xml.transform.Source");
    cb.method("transform", vec![src], JType::Void)
        .abstract_()
        .finish();
    cb.finish();

    // javax.xml.parsers.DocumentBuilder — XXE sink.
    let mut cb = pb.class("javax.xml.parsers.DocumentBuilder").abstract_();
    let string = cb.object_type("java.lang.String");
    let doc = cb.object_type("org.w3c.dom.Document");
    cb.method("parse", vec![string], doc).abstract_().finish();
    cb.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabby_core::{AnalysisConfig, Cpg};
    use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};

    #[test]
    fn jdk_model_builds() {
        let mut pb = ProgramBuilder::new();
        add_jdk_model(&mut pb);
        let p = pb.build();
        assert!(p.classes().len() > 20);
        assert!(p.class_by_str("java.util.HashMap").is_some());
        assert!(p.class_by_str("java.lang.Runtime").is_some());
    }

    #[test]
    fn urldns_chain_exists_in_jdk_model_alone() {
        // The URLDNS chain (Fig. 3) lives entirely in the JDK:
        // HashMap.readObject -> hash -> Object.hashCode ~ URL.hashCode ->
        // URLStreamHandler.hashCode -> getHostAddress -> InetAddress.getByName.
        let mut pb = ProgramBuilder::new();
        add_jdk_model(&mut pb);
        let p = pb.build();
        let mut cpg = Cpg::build(&p, AnalysisConfig::default());
        let chains = find_gadget_chains(
            &mut cpg,
            &SinkCatalog::paper(),
            &SourceCatalog::native_serialization(),
            &SearchConfig::default(),
        );
        let urldns = chains.iter().find(|c| {
            c.source() == "java.util.HashMap.readObject"
                && c.sink() == "java.net.InetAddress.getByName"
        });
        let found = urldns.expect("URLDNS chain not found");
        assert!(found
            .signatures
            .contains(&"java.net.URL.hashCode".to_owned()));
        assert!(found
            .signatures
            .contains(&"java.net.URLStreamHandler.getHostAddress".to_owned()));
        assert_eq!(found.sink_category, "SSRF");
    }

    #[test]
    fn templates_impl_pivot_reaches_defineclass() {
        let mut pb = ProgramBuilder::new();
        add_jdk_model(&mut pb);
        let p = pb.build();
        let mut cpg = Cpg::build(&p, AnalysisConfig::default());
        let chains = find_gadget_chains(
            &mut cpg,
            &SinkCatalog::paper(),
            &SourceCatalog::native_serialization(),
            &SearchConfig::default(),
        );
        // No chain *from a source* is expected (nothing calls
        // newTransformer), but the CPG must contain the edge chain
        // newTransformer -> defineTransletClasses -> defineClass.
        let nt = cpg.methods_named("newTransformer");
        assert_eq!(nt.len(), 1);
        let _ = chains;
        let out = cpg.graph.edges_of(
            nt[0],
            tabby_graph::Direction::Outgoing,
            Some(cpg.schema.call),
        );
        assert_eq!(out.len(), 1);
    }
}
