//! Criterion bench for the gadget-chain search (the Table IX/X "time"
//! columns): CPG build and backward traversal on a machinery-rich
//! component and on the Spring scene.

use criterion::{criterion_group, criterion_main, Criterion};
use tabby_core::{AnalysisConfig, Cpg};
use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};
use tabby_workloads::{components, scenes};

fn bench_chain_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_search");
    group.sample_size(10);
    let cc3 = components::by_name("commons-colletions(3.2.1)").unwrap();
    group.bench_function("cc3_search_only", |b| {
        // Pre-build once; benchmark the search (the paper's "searching
        // time" column measures exactly this).
        b.iter_batched(
            || Cpg::build(&cc3.program, AnalysisConfig::default()),
            |mut cpg| {
                find_gadget_chains(
                    &mut cpg,
                    &SinkCatalog::paper(),
                    &SourceCatalog::native_serialization(),
                    &SearchConfig::default(),
                )
            },
            criterion::BatchSize::LargeInput,
        );
    });
    let spring = scenes::spring();
    group.bench_function("spring_scene_end_to_end", |b| {
        b.iter(|| {
            let mut cpg = Cpg::build(&spring.component.program, AnalysisConfig::default());
            find_gadget_chains(
                &mut cpg,
                &SinkCatalog::paper(),
                &SourceCatalog::native_serialization(),
                &SearchConfig::default(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_chain_search);
criterion_main!(benches);
