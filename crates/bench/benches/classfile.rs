//! Criterion bench for the class-file substrate: compile IR to bytes,
//! parse, and lift back (the Soot front-end role).

use criterion::{criterion_group, criterion_main, Criterion};
use tabby_ir::compile::compile_program;
use tabby_ir::lift::lift_program;
use tabby_ir::ProgramBuilder;
use tabby_workloads::jdk::add_jdk_model;

fn bench_classfile(c: &mut Criterion) {
    let mut group = c.benchmark_group("classfile");
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    group.bench_function("compile_jdk_model", |b| {
        b.iter(|| compile_program(&program));
    });
    let blobs: Vec<Vec<u8>> = compile_program(&program)
        .into_iter()
        .map(|(_, b)| b)
        .collect();
    group.bench_function("parse_jdk_model", |b| {
        b.iter(|| {
            for blob in &blobs {
                std::hint::black_box(tabby_classfile::parse_class(blob).unwrap());
            }
        });
    });
    group.bench_function("lift_jdk_model", |b| {
        b.iter(|| lift_program(&blobs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_classfile);
criterion_main!(benches);
