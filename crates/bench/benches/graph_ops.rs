//! Criterion bench for the embedded property-graph substrate: node/edge
//! insertion, indexed lookup, and traversal.

use criterion::{criterion_group, criterion_main, Criterion};
use tabby_graph::{follow, Direction, Evaluation, Graph, Path, Traversal, Uniqueness, Value};

fn ring_graph(n: u32) -> Graph {
    let mut g = Graph::new();
    let l = g.label("N");
    let t = g.edge_type("E");
    let name = g.prop_key("NAME");
    g.create_index(l, name);
    let nodes: Vec<_> = (0..n).map(|_| g.add_node(l)).collect();
    for (i, &node) in nodes.iter().enumerate() {
        g.set_node_prop(node, name, Value::from(format!("n{i}")));
        g.add_edge(t, node, nodes[(i + 1) % nodes.len()]);
        g.add_edge(t, node, nodes[(i * 7 + 3) as usize % nodes.len()]);
    }
    g
}

fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");
    group.bench_function("build_ring_10k", |b| {
        b.iter(|| ring_graph(10_000));
    });
    let g = ring_graph(10_000);
    let l = g.get_label("N").unwrap();
    let name = g.get_prop_key("NAME").unwrap();
    group.bench_function("indexed_lookup", |b| {
        b.iter(|| {
            std::hint::black_box(g.nodes_by(l, name, &Value::from("n5000")));
        });
    });
    let t = g.get_edge_type("E").unwrap();
    group.bench_function("bounded_dfs_depth6", |b| {
        let start = g.nodes_by(l, name, &Value::from("n0"))[0];
        b.iter(|| {
            Traversal::new(
                follow(vec![(t, Direction::Outgoing)]),
                |_: &Graph, path: &Path, _: &()| {
                    if path.len() >= 6 {
                        Evaluation::IncludeAndPrune
                    } else {
                        Evaluation::ExcludeAndContinue
                    }
                },
            )
            .uniqueness(Uniqueness::NodePath)
            .run(&g, start, ())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
