//! Ablation benches for the design decisions DESIGN.md §5 calls out:
//!
//! 1. PCG pruning on/off (path-explosion remedy, §III-C);
//! 2. Action cache on/off (the interprocedural memoisation);
//! 3. field sensitivity on/off;
//! 4. ALIAS edges on/off (polymorphic chains disappear without them);
//! 5. GadgetInspector's visited-node shortcut applied to Tabby's search.
//!
//! Each variant runs end-to-end on the commons-collections 3.2.1 component;
//! the companion correctness assertions live in `tests/ablation_effects.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use tabby_bench::run_tabby_with;
use tabby_core::AnalysisConfig;
use tabby_graph::Uniqueness;
use tabby_pathfinder::SearchConfig;
use tabby_workloads::components;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let component = components::by_name("commons-colletions(3.2.1)").unwrap();
    let run = |analysis: AnalysisConfig, search: SearchConfig| {
        run_tabby_with(&component, analysis, search)
    };
    group.bench_function("paper_configuration", |b| {
        b.iter(|| run(AnalysisConfig::default(), SearchConfig::default()));
    });
    group.bench_function("no_pcg_pruning", |b| {
        b.iter(|| {
            run(
                AnalysisConfig {
                    prune_uncontrollable_calls: false,
                    ..AnalysisConfig::default()
                },
                SearchConfig::default(),
            )
        });
    });
    group.bench_function("no_action_cache", |b| {
        b.iter(|| {
            run(
                AnalysisConfig {
                    action_cache: false,
                    ..AnalysisConfig::default()
                },
                SearchConfig::default(),
            )
        });
    });
    group.bench_function("field_insensitive", |b| {
        b.iter(|| {
            run(
                AnalysisConfig {
                    field_sensitive: false,
                    ..AnalysisConfig::default()
                },
                SearchConfig::default(),
            )
        });
    });
    group.bench_function("no_alias_edges", |b| {
        b.iter(|| {
            run(
                AnalysisConfig::default(),
                SearchConfig {
                    use_alias_edges: false,
                    ..SearchConfig::default()
                },
            )
        });
    });
    group.bench_function("visited_node_shortcut", |b| {
        b.iter(|| {
            run(
                AnalysisConfig::default(),
                SearchConfig {
                    uniqueness: Uniqueness::NodeGlobal,
                    ..SearchConfig::default()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
