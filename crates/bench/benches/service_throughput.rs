//! Daemon round-trip throughput: cold submissions (cache bypassed) versus
//! warm submissions (chain-cache hits) of the same component over real TCP.
//!
//! The gap between the two is the daemon's reason to exist: a warm submit
//! pays only request framing, a cache lookup, and response serialization,
//! while a cold submit pays the full lift → summarize → build → search
//! pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use tabby_ir::compile::compile_program;
use tabby_ir::ProgramBuilder;
use tabby_service::{submit, Daemon, ScanRequestOptions, ServiceConfig};
use tabby_workloads::jdk::add_jdk_model;

fn corpus_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tabby-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    for (name, bytes) in compile_program(&pb.build()) {
        let file = dir.join(format!("{}.class", name.replace('.', "_")));
        std::fs::write(file, bytes).unwrap();
    }
    dir
}

fn bench_service_throughput(c: &mut Criterion) {
    let dir = corpus_dir();
    let handle = Daemon::spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];

    let mut group = c.benchmark_group("service");
    group.bench_function("submit_cold", |b| {
        b.iter(|| {
            let reply = submit(
                &addr,
                paths.clone(),
                ScanRequestOptions {
                    fresh: true,
                    ..ScanRequestOptions::default()
                },
            )
            .expect("cold submit");
            assert!(reply.ok, "{:?}", reply.error);
        })
    });
    group.bench_function("submit_warm", |b| {
        // Prime the chain cache once, then measure pure cache-hit round trips.
        let primed =
            submit(&addr, paths.clone(), ScanRequestOptions::default()).expect("priming submit");
        assert!(primed.ok, "{:?}", primed.error);
        b.iter(|| {
            let reply =
                submit(&addr, paths.clone(), ScanRequestOptions::default()).expect("warm submit");
            assert!(reply.ok, "{:?}", reply.error);
            assert!(reply.stats.expect("stats").job_cache_hit);
        })
    });
    group.finish();

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
