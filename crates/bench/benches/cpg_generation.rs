//! Criterion bench for Table VIII's quantity: CPG construction time as a
//! function of library size (expects ~linear growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tabby_core::{AnalysisConfig, Cpg};
use tabby_workloads::random_lib::{generate, RandomLibConfig};

fn bench_cpg_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpg_generation");
    group.sample_size(10);
    for classes in [100usize, 200, 400] {
        let program = generate(&RandomLibConfig {
            classes,
            ..RandomLibConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &program,
            |b, program| {
                b.iter(|| Cpg::build(program, AnalysisConfig::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cpg_generation);
criterion_main!(benches);
