//! Criterion bench for the controllability analysis (Algorithm 1) in
//! isolation: per-method summaries over the JDK model and a random library.

use criterion::{criterion_group, criterion_main, Criterion};
use tabby_core::{AnalysisConfig, Analyzer};
use tabby_ir::ProgramBuilder;
use tabby_workloads::jdk::add_jdk_model;
use tabby_workloads::random_lib::{generate, RandomLibConfig};

fn bench_controllability(c: &mut Criterion) {
    let mut group = c.benchmark_group("controllability");
    group.sample_size(20);
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let jdk = pb.build();
    group.bench_function("jdk_model_all_methods", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(&jdk, AnalysisConfig::default());
            for id in jdk.method_ids() {
                if jdk.method(id).body.is_some() {
                    std::hint::black_box(analyzer.summarize(id));
                }
            }
        });
    });
    let lib = generate(&RandomLibConfig {
        classes: 150,
        ..RandomLibConfig::default()
    });
    group.bench_function("random_lib_150_classes", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(&lib, AnalysisConfig::default());
            for id in lib.method_ids() {
                if lib.method(id).body.is_some() {
                    std::hint::black_box(analyzer.summarize(id));
                }
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_controllability);
criterion_main!(benches);
