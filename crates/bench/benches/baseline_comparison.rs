//! Criterion bench comparing the three detectors end-to-end on one
//! component — the per-row "time" comparison of Table IX. GadgetInspector
//! is fast but wrong; Tabby pays for precision; Serianalyzer's unpruned
//! search is the slowest terminating configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use tabby_baselines::{GadgetInspector, Serianalyzer};
use tabby_bench::run_tabby;
use tabby_workloads::components;

fn bench_baseline_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    let component = components::by_name("commons-colletions(3.2.1)").unwrap();
    group.bench_function("gadget_inspector", |b| {
        let gi = GadgetInspector::default();
        b.iter(|| gi.run(&component.program));
    });
    group.bench_function("serianalyzer", |b| {
        let sl = Serianalyzer::default();
        b.iter(|| sl.run(&component.program));
    });
    group.bench_function("tabby_full", |b| {
        b.iter(|| run_tabby(&component));
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_comparison);
criterion_main!(benches);
