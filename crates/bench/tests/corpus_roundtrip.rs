//! The heaviest round-trip gate: every Table IX component survives
//! IR → `.class` bytes → lift with its Tabby verdict unchanged. This is
//! the guarantee that the evaluation does not depend on authoring the
//! workloads in IR — the detector sees what it would see in real class
//! files.

use std::collections::BTreeSet;
use tabby_core::{AnalysisConfig, Cpg};
use tabby_ir::compile::compile_program;
use tabby_ir::lift::lift_program;
use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};
use tabby_workloads::components;

fn chain_pairs(program: &tabby_ir::Program) -> BTreeSet<(String, String)> {
    let mut cpg = Cpg::build(program, AnalysisConfig::default());
    find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    )
    .into_iter()
    .map(|c| (c.source().to_owned(), c.sink().to_owned()))
    .collect()
}

#[test]
fn every_component_survives_the_class_file_round_trip() {
    for component in components::all() {
        let direct = chain_pairs(&component.program);
        let blobs: Vec<Vec<u8>> = compile_program(&component.program)
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        let lifted_program =
            lift_program(&blobs).unwrap_or_else(|e| panic!("{}: lift failed: {e}", component.name));
        let lifted = chain_pairs(&lifted_program);
        assert_eq!(
            direct, lifted,
            "{}: chain set changed across the class-file round trip",
            component.name
        );
    }
}
