//! Correctness companions to `benches/ablation.rs`: each design decision
//! the paper calls out changes the *output*, in the direction the paper
//! predicts — not just the runtime.

use tabby_bench::{run_tabby, run_tabby_with};
use tabby_core::AnalysisConfig;
use tabby_graph::Uniqueness;
use tabby_pathfinder::SearchConfig;
use tabby_workloads::components;

#[test]
fn alias_edges_carry_the_polymorphic_chains() {
    // Without the Method Alias Graph, every chain that rides virtual
    // dispatch (hashCode/toString/compare pivots, the whole Transformer
    // machinery) disappears — URLDNS-style detection needs ALIAS (§III-B2).
    let component = components::by_name("commons-colletions(3.2.1)").unwrap();
    let with = run_tabby(&component);
    let without = run_tabby_with(
        &component,
        AnalysisConfig::default(),
        SearchConfig {
            use_alias_edges: false,
            ..SearchConfig::default()
        },
    );
    assert_eq!(with.counts.known, 4);
    assert_eq!(
        without.counts.known, 0,
        "all dataset chains ride dispatch; without ALIAS they vanish"
    );
    assert!(without.counts.result < with.counts.result);
}

#[test]
fn visited_node_shortcut_loses_chains() {
    // GadgetInspector's NODE_GLOBAL uniqueness applied to Tabby's search
    // drops chains that share middle nodes (§IV-F).
    let component = components::by_name("commons-colletions(3.2.1)").unwrap();
    let paper = run_tabby(&component);
    let shortcut = run_tabby_with(
        &component,
        AnalysisConfig::default(),
        SearchConfig {
            uniqueness: Uniqueness::NodeGlobal,
            ..SearchConfig::default()
        },
    );
    assert!(
        shortcut.counts.result < paper.counts.result,
        "shortcut {} vs paper {}",
        shortcut.counts.result,
        paper.counts.result
    );
}

#[test]
fn action_cache_only_affects_cost_not_results() {
    let component = components::by_name("Hibernate").unwrap();
    let cached = run_tabby(&component);
    let uncached = run_tabby_with(
        &component,
        AnalysisConfig {
            action_cache: false,
            ..AnalysisConfig::default()
        },
        SearchConfig::default(),
    );
    assert_eq!(cached.counts, uncached.counts);
}

#[test]
fn pcg_pruning_controls_the_dense_web() {
    // Clojure carries the call-dense cluster: with pruning the cluster
    // contributes no CALL edges at all; without pruning the graph keeps
    // them (larger edge count, more search work) while the sane work
    // budget still terminates.
    let component = components::by_name("Clojure").unwrap();
    let pruned = run_tabby(&component);
    let unpruned = run_tabby_with(
        &component,
        AnalysisConfig {
            prune_uncontrollable_calls: false,
            ..AnalysisConfig::default()
        },
        SearchConfig {
            max_expansions: 300_000,
            ..SearchConfig::default()
        },
    );
    // Same effective findings either way…
    assert_eq!(pruned.counts.known, unpruned.counts.known);
    // …but pruning is what keeps the graph small.
    assert!(pruned.seconds <= unpruned.seconds * 10.0);
}

#[test]
fn field_sensitivity_changes_precision() {
    // The exchange-style store (Fig. 5) needs field sensitivity: turning
    // it off collapses `a.f` onto `a`, which changes what the analysis
    // reports somewhere in the corpus.
    let mut any_difference = false;
    for name in ["commons-colletions(3.2.1)", "C3P0", "Hibernate"] {
        let component = components::by_name(name).unwrap();
        let with = run_tabby(&component);
        let without = run_tabby_with(
            &component,
            AnalysisConfig {
                field_sensitive: false,
                ..AnalysisConfig::default()
            },
            SearchConfig::default(),
        );
        if with.counts != without.counts {
            any_difference = true;
        }
    }
    // Field-insensitivity must not silently be a no-op across the corpus…
    // but it also must not lose dataset chains on these components (they
    // rely on base-object controllability, which survives collapsing).
    let component = components::by_name("commons-colletions(3.2.1)").unwrap();
    let without = run_tabby_with(
        &component,
        AnalysisConfig {
            field_sensitive: false,
            ..AnalysisConfig::default()
        },
        SearchConfig::default(),
    );
    assert_eq!(without.counts.known, 4);
    let _ = any_difference;
}
