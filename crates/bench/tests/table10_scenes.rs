//! End-to-end validation of the Table X reproduction: result counts,
//! effective-chain counts (oracle-judged), and FPR must match the paper's
//! cells for every scene.

use tabby_bench::run_scene;
use tabby_workloads::scenes;

#[test]
fn scenes_match_table10_cells() {
    let mut mismatches = Vec::new();
    for scene in scenes::all() {
        let got = run_scene(&scene);
        if got.result != scene.paper.result || got.effective != scene.paper.effective {
            mismatches.push(format!(
                "{}: got result={} effective={}, paper result={} effective={}; chains:\n{}",
                scene.component.name,
                got.result,
                got.effective,
                scene.paper.result,
                scene.paper.effective,
                got.chains
                    .iter()
                    .map(|c| format!("  {} -> {}", c.source(), c.sink()))
                    .collect::<Vec<_>>()
                    .join("\n"),
            ));
        } else {
            let fpr = got.fpr();
            assert!(
                (fpr - scene.paper.fpr_pct).abs() < 0.5,
                "{} FPR {fpr} vs paper {}",
                scene.component.name,
                scene.paper.fpr_pct
            );
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}

#[test]
fn spring_reports_the_table11_chains() {
    let scene = scenes::spring();
    let got = run_scene(&scene);
    let has = |needle: &str| {
        got.chains
            .iter()
            .any(|c| c.signatures.iter().any(|s| s.contains(needle)))
    };
    // The Table XI chain skeleton: getTarget -> getBean -> lookup ->
    // Context.lookup.
    assert!(has("LazyInitTargetSource.getTarget"));
    assert!(has("PrototypeTargetSource.getTarget"));
    assert!(has("SimpleJndiBeanFactory.getBean"));
    assert!(has("JndiLocatorSupport.lookup"));
    // And the CVE-2020-11619 shape.
    assert!(has("JndiObjectTargetSource.getTarget"));
}

#[test]
fn scene_searches_complete_in_seconds() {
    for scene in scenes::all() {
        let got = run_scene(&scene);
        assert!(
            got.search_s < 30.0,
            "{} searched for {:.1}s",
            scene.component.name,
            got.search_s
        );
    }
}
