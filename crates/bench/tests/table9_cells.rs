//! End-to-end validation of the Table IX reproduction: Tabby's per-row
//! counters must match the paper's cells exactly (the workloads are built
//! so that the detector's real behaviour — not the manifest — produces the
//! counts), and the baselines must reproduce the paper's accuracy *shape*.

use tabby_bench::{run_gadget_inspector, run_serianalyzer, run_tabby};
use tabby_workloads::components;

#[test]
fn tabby_matches_every_table9_row() {
    let mut mismatches = Vec::new();
    for component in components::all() {
        let paper = component.paper.expect("paper row");
        let cell = run_tabby(&component);
        let got = (
            cell.counts.result,
            cell.counts.fake,
            cell.counts.known,
            cell.counts.unknown,
        );
        let want = (
            paper.tb.result,
            paper.tb.fake,
            paper.tb.known,
            paper.tb.unknown,
        );
        if got != want {
            mismatches.push(format!(
                "{}: got (result,fake,known,unknown)={got:?}, paper={want:?}; chains:\n{}",
                component.name,
                cell.chains
                    .iter()
                    .map(|c| format!("  {} -> {}", c.source(), c.sink()))
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "Tabby cells diverge from Table IX:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn totals_match_table9_total_row() {
    let mut result = 0;
    let mut fake = 0;
    let mut known = 0;
    let mut unknown = 0;
    for component in components::all() {
        let cell = run_tabby(&component);
        result += cell.counts.result;
        fake += cell.counts.fake;
        known += cell.counts.known;
        unknown += cell.counts.unknown;
    }
    // Paper total row (Tabby): result 79, fake 26, known 26, unknown 27.
    assert_eq!(result, 79);
    assert_eq!(fake, 26);
    assert_eq!(known, 26);
    assert_eq!(unknown, 27);
    // Average FPR 32.9 %, FNR 31.6 % (computed as the paper's totals).
    let fpr = fake as f64 / result as f64 * 100.0;
    let fnr = (38 - known) as f64 / 38.0 * 100.0;
    assert!((fpr - 32.9).abs() < 0.5, "FPR {fpr}");
    assert!((fnr - 31.6).abs() < 0.5, "FNR {fnr}");
}

#[test]
fn baselines_reproduce_the_accuracy_gap() {
    let mut gi_result = 0usize;
    let mut gi_fake = 0usize;
    let mut gi_known = 0usize;
    let mut sl_result = 0usize;
    let mut sl_fake = 0usize;
    let mut sl_known = 0usize;
    let mut sl_timeouts = 0usize;
    for component in components::all() {
        let gi = run_gadget_inspector(&component);
        assert!(!gi.timed_out, "GI timed out on {}", component.name);
        gi_result += gi.counts.result;
        gi_fake += gi.counts.fake;
        gi_known += gi.counts.known;
        let sl = run_serianalyzer(&component);
        if sl.timed_out {
            sl_timeouts += 1;
            continue;
        }
        sl_result += sl.counts.result;
        sl_fake += sl.counts.fake;
        sl_known += sl.counts.known;
    }
    // Paper: Serianalyzer fails to terminate on exactly two components
    // (Clojure, Jython1).
    assert_eq!(sl_timeouts, 2, "SL timeouts");
    // Shape: both baselines far above Tabby's 32.9 % FPR / 31.6 % FNR.
    let gi_fpr = gi_fake as f64 / gi_result.max(1) as f64 * 100.0;
    let sl_fpr = sl_fake as f64 / sl_result.max(1) as f64 * 100.0;
    assert!(gi_fpr > 80.0, "GI FPR {gi_fpr} (paper 93.0)");
    assert!(sl_fpr > 90.0, "SL FPR {sl_fpr} (paper 98.6)");
    let gi_fnr = (38 - gi_known) as f64 / 38.0 * 100.0;
    let sl_fnr = (38 - sl_known) as f64 / 38.0 * 100.0;
    assert!(gi_fnr > 75.0, "GI FNR {gi_fnr} (paper 86.8)");
    assert!(sl_fnr > 70.0, "SL FNR {sl_fnr} (paper 81.6)");
}
