//! The `bench query` runner: TQL builtin latency over the Table X scenes,
//! emitting `BENCH_query.json`.
//!
//! For each scene the CPG is built and annotated **once** (sinks tagged per
//! Table VII, sources per the native-serialization catalog — the same
//! tagging a scan applies), then every built-in named query runs `repeat`
//! times against the same graph. Reported per query: best wall time, row
//! and expansion counts, the planner's anchor choice, and whether the row
//! set was byte-identical across repeats. The driver exits nonzero when
//! any query is nondeterministic or truncated — default budgets must be
//! ample for every builtin on every scene.

use serde::Serialize;
use std::time::Instant;
use tabby_core::{AnalysisConfig, Cpg};
use tabby_pathfinder::{SinkCatalog, SourceCatalog};
use tabby_query::{builtins, run_query, ExecConfig};
use tabby_workloads::scenes::Scene;

/// What to run and how often.
#[derive(Debug, Clone)]
pub struct QueryBenchConfig {
    /// Use the ~12×-smaller smoke scenes instead of the full ones.
    pub smoke: bool,
    /// Case-insensitive substring filters on scene names; empty = all.
    pub only: Vec<String>,
    /// Timed runs per query; the minimum wall time is reported.
    pub repeat: usize,
}

impl Default for QueryBenchConfig {
    fn default() -> Self {
        QueryBenchConfig {
            smoke: false,
            only: Vec::new(),
            repeat: 3,
        }
    }
}

/// One builtin's measurement on one scene.
#[derive(Debug, Clone, Serialize)]
pub struct QueryResult {
    /// Builtin name (`tabby query --builtins`).
    pub builtin: String,
    /// Result rows.
    pub rows: usize,
    /// Edge expansions the pattern search performed (last run's value).
    pub expansions: usize,
    /// Best wall time over the configured repeats, in seconds.
    pub wall_s: f64,
    /// A budget cut the row stream short.
    pub truncated: bool,
    /// The planner's anchor choice, as reported in the output header.
    pub anchor: String,
    /// Row JSON was byte-identical across all repeats.
    pub deterministic: bool,
}

/// One scene's full measurement set.
#[derive(Debug, Clone, Serialize)]
pub struct SceneQueryBench {
    /// Scene name (Table X row).
    pub scene: String,
    /// Classes in the scene program.
    pub classes: usize,
    /// One-time CPG build + annotation cost, in seconds.
    pub build_wall_s: f64,
    /// Every builtin measured against the same CPG.
    pub queries: Vec<QueryResult>,
    /// Every query's rows were identical across repeats.
    pub all_deterministic: bool,
}

/// The `BENCH_query.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct QueryBenchReport {
    /// `"smoke"` or `"full"`.
    pub scenes: String,
    /// Timed runs per query.
    pub repeat: usize,
    /// Per-scene measurements.
    pub results: Vec<SceneQueryBench>,
    /// Every query of every scene was deterministic and untruncated.
    pub all_clean: bool,
}

/// A fixed argument per builtin parameter; `readObject` appears in every
/// serialization-bearing scene, so arg-taking builtins do real matching.
fn bench_args(builtin: &builtins::Builtin) -> Vec<String> {
    builtin
        .args
        .iter()
        .map(|_| "readObject".to_owned())
        .collect()
}

/// Benchmarks every builtin on one scene; the CPG is built once.
pub fn bench_queries_on_scene(scene: &Scene, repeat: usize) -> SceneQueryBench {
    let repeat = repeat.max(1);
    let program = &scene.component.program;
    let t = Instant::now();
    let mut cpg = Cpg::build(program, AnalysisConfig::default());
    SinkCatalog::paper().annotate(&mut cpg);
    SourceCatalog::native_serialization().annotate(&mut cpg);
    let build_wall_s = t.elapsed().as_secs_f64();

    let cfg = ExecConfig::default();
    let mut queries = Vec::with_capacity(builtins::BUILTINS.len());
    for builtin in builtins::BUILTINS {
        let text = builtin
            .instantiate(&bench_args(builtin))
            .expect("builtin arity");
        let mut wall_s = f64::INFINITY;
        let mut first: Option<String> = None;
        let mut deterministic = true;
        let mut last = None;
        for _ in 0..repeat {
            let t = Instant::now();
            let out = run_query(&cpg.graph, &text, &cfg).expect("builtin parses and plans");
            wall_s = wall_s.min(t.elapsed().as_secs_f64());
            let canon = serde_json::to_string(&out.rows).expect("rows serialize");
            match &first {
                None => first = Some(canon),
                Some(reference) => deterministic &= *reference == canon,
            }
            last = Some(out);
        }
        let out = last.expect("repeat >= 1");
        queries.push(QueryResult {
            builtin: builtin.name.to_owned(),
            rows: out.rows.len(),
            expansions: out.expansions,
            wall_s,
            truncated: out.truncated,
            anchor: out.anchor,
            deterministic,
        });
    }
    let all_deterministic = queries.iter().all(|q| q.deterministic);
    SceneQueryBench {
        scene: scene.component.name.clone(),
        classes: program.classes().len(),
        build_wall_s,
        queries,
        all_deterministic,
    }
}

/// Runs the whole battery per `config`.
pub fn run_query_bench(config: &QueryBenchConfig) -> QueryBenchReport {
    let scenes = if config.smoke {
        tabby_workloads::scenes::smoke()
    } else {
        tabby_workloads::scenes::all()
    };
    let keep = |name: &str| {
        config.only.is_empty()
            || config
                .only
                .iter()
                .any(|f| name.to_lowercase().contains(&f.to_lowercase()))
    };
    let results: Vec<SceneQueryBench> = scenes
        .iter()
        .filter(|s| keep(&s.component.name))
        .map(|s| bench_queries_on_scene(s, config.repeat))
        .collect();
    let all_clean = results
        .iter()
        .all(|r| r.all_deterministic && r.queries.iter().all(|q| !q.truncated));
    QueryBenchReport {
        scenes: if config.smoke { "smoke" } else { "full" }.to_owned(),
        repeat: config.repeat,
        results,
        all_clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs_every_builtin_deterministically() {
        let report = run_query_bench(&QueryBenchConfig {
            smoke: true,
            only: vec!["Jetty".to_owned()],
            repeat: 2,
        });
        assert_eq!(report.results.len(), 1);
        let scene = &report.results[0];
        assert_eq!(scene.scene, "Jetty");
        assert_eq!(scene.queries.len(), builtins::BUILTINS.len());
        assert!(report.all_clean, "{scene:?}");
        for q in &scene.queries {
            assert!(
                !q.truncated,
                "{} truncated under default budgets",
                q.builtin
            );
            assert!(!q.anchor.is_empty(), "{} reported no anchor", q.builtin);
        }
    }
}
