//! Regenerates Table X: development-environment gadget-chain detection
//! (Spring, JDK8, Tomcat, Jetty, Apache Dubbo).
//!
//! ```text
//! cargo run -p tabby-bench --release --bin table10
//! ```

use tabby_bench::run_scene;
use tabby_workloads::scenes;

fn main() {
    println!("TABLE X — development scenes (paper | measured)\n");
    println!(
        "{:<13} {:>8} {:>5} {:>8} | {:>7} {:>10} {:>7} {:>8} | {:>7} {:>10} {:>7} {:>9}",
        "Scene",
        "Version",
        "Jars",
        "MB",
        "result",
        "effective",
        "FPR%",
        "time(s)",
        "result",
        "effective",
        "FPR%",
        "time(s)"
    );
    for scene in scenes::all() {
        let got = run_scene(&scene);
        let p = &scene.paper;
        println!(
            "{:<13} {:>8} {:>5} {:>8.1} | {:>7} {:>10} {:>7.1} {:>8.1} | {:>7} {:>10} {:>7.1} {:>9.2}",
            scene.component.name,
            p.version,
            p.jar_count,
            p.code_mb,
            p.result,
            p.effective,
            p.fpr_pct,
            p.search_s,
            got.result,
            got.effective,
            got.fpr(),
            got.search_s,
        );
    }
    println!("\n(effective chains are judged by the guard-honouring PoC oracle; the");
    println!(" absolute times differ from the paper's Neo4j deployment — the claim");
    println!(" preserved is seconds-scale search with the paper's result counts.)");
}
