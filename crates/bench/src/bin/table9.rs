//! Regenerates Table IX: the three-tool comparison over the 26 evaluated
//! components — result counts, fake/known/unknown splits, FPR/FNR per
//! Formulas 5–6, and per-component wall-clock (paper-vs-measured).
//!
//! ```text
//! cargo run -p tabby-bench --release --bin table9
//! ```

use tabby_bench::{run_gadget_inspector, run_serianalyzer, run_tabby, CellResult};
use tabby_workloads::components;
use tabby_workloads::EvalCounts;

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "0".to_owned(),
    }
}

fn main() {
    println!("TABLE IX — comparison with state-of-the-art tools (GI / TB / SL)");
    println!("(`X` = the tool exhausted its work budget, as in the paper)\n");
    println!(
        "{:<28} {:>3} | {:>11} | {:>11} | {:>11} | {:>11} | {:>13} | {:>13} | {:>14}",
        "Component", "K", "Result", "Fake", "Known", "Unknown", "FPR(%)", "FNR(%)", "time(s)"
    );
    let mut totals = [
        EvalCounts::default(),
        EvalCounts::default(),
        EvalCounts::default(),
    ];
    let mut sl_timeouts = 0usize;
    for component in components::all() {
        let gi = run_gadget_inspector(&component);
        let tb = run_tabby(&component);
        let sl = run_serianalyzer(&component);
        let cells: [&CellResult; 3] = [&gi, &tb, &sl];
        let col = |f: &dyn Fn(&CellResult) -> String| -> String {
            format!(
                "{:>3} {:>3} {:>3}",
                f(&gi),
                f(&tb),
                if sl.timed_out { "X".to_owned() } else { f(&sl) }
            )
        };
        println!(
            "{:<28} {:>3} | {} | {} | {} | {} | {:>4} {:>4} {:>4} | {:>4} {:>4} {:>4} | {:>4.1} {:>4.1} {:>4.1}",
            component.name,
            component.truth.known_in_dataset(),
            col(&|c| c.counts.result.to_string()),
            col(&|c| c.counts.fake.to_string()),
            col(&|c| c.counts.known.to_string()),
            col(&|c| c.counts.unknown.to_string()),
            fmt_pct(gi.counts.fpr()),
            fmt_pct(tb.counts.fpr()),
            if sl.timed_out { "X".into() } else { fmt_pct(sl.counts.fpr()) },
            fmt_pct(gi.counts.fnr()),
            fmt_pct(tb.counts.fnr()),
            if sl.timed_out { "X".into() } else { fmt_pct(sl.counts.fnr()) },
            gi.seconds,
            tb.seconds,
            sl.seconds,
        );
        for (i, cell) in cells.iter().enumerate() {
            if !(i == 2 && cell.timed_out) {
                totals[i].add(&cell.counts);
            }
        }
        if sl.timed_out {
            sl_timeouts += 1;
        }
    }
    println!("\n--- totals (paper: GI 129/120/5/4, TB 79/26/26/27, SL 593/585/7/1) ---");
    for (name, t) in ["GI", "TB", "SL"].iter().zip(&totals) {
        println!(
            "{name}: result={} fake={} known={} unknown={}  FPR={}  FNR={}",
            t.result,
            t.fake,
            t.known,
            t.unknown,
            fmt_pct(t.fpr()),
            fmt_pct(Some((38 - t.known) as f64 / 38.0 * 100.0)),
        );
    }
    println!("SL non-terminations: {sl_timeouts} (paper: 2 — Clojure, Jython1)");
    println!("\npaper averages: FPR GI 93.0 / TB 32.9 / SL 98.6; FNR GI 86.8 / TB 31.6 / SL 81.6");
}
