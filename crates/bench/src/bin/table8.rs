//! Regenerates Table VIII: code-property-graph generation efficiency.
//!
//! For each of the paper's seven rows, a random library is generated whose
//! class/method counts track the row at a configurable scale (default 0.1
//! — the paper's corpus is jar-scale; the shape, not the absolute time, is
//! the claim: build time grows ~linearly in the class/method count).
//! Each row is repeated `REPS` times; the min and max are dropped and the
//! rest averaged, exactly as §IV-B describes.
//!
//! ```text
//! cargo run -p tabby-bench --release --bin table8 [scale]
//! ```

use std::time::Instant;
use tabby_core::{AnalysisConfig, Cpg};
use tabby_workloads::random_lib::{config_for_row, generate, TABLE8_PAPER};

const REPS: usize = 10;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("TABLE VIII — CPG generation efficiency (scale ×{scale})\n");
    println!(
        "{:>6} | {:>9} {:>9} {:>10} {:>9} | {:>9} {:>9} {:>10} {:>10}",
        "MB", "classes", "methods", "edges", "min(pap)", "classes", "methods", "edges", "sec(meas)"
    );
    let mut rows = Vec::new();
    for row in &TABLE8_PAPER {
        let config = config_for_row(row, scale);
        let program = generate(&config);
        let mut times: Vec<f64> = (0..REPS)
            .map(|_| {
                let start = Instant::now();
                let cpg = Cpg::build(&program, AnalysisConfig::default());
                let dt = start.elapsed().as_secs_f64();
                std::hint::black_box(cpg.stats.relationship_edges);
                dt
            })
            .collect();
        // Drop min and max, average the rest (§IV-B's protocol).
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let kept = &times[1..times.len() - 1];
        let avg = kept.iter().sum::<f64>() / kept.len() as f64;
        let cpg = Cpg::build(&program, AnalysisConfig::default());
        println!(
            "{:>6} | {:>9} {:>9} {:>10} {:>9.1} | {:>9} {:>9} {:>10} {:>10.3}",
            row.code_mb,
            row.class_nodes,
            row.method_nodes,
            row.edges,
            row.minutes,
            cpg.stats.class_nodes,
            cpg.stats.method_nodes,
            cpg.stats.relationship_edges,
            avg
        );
        rows.push((cpg.stats.method_nodes as f64, avg));
    }
    // Linearity check: correlation between method count and build time.
    let n = rows.len() as f64;
    let (sx, sy): (f64, f64) = rows
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let cov: f64 = rows.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = rows.iter().map(|(x, _)| (x - mx).powi(2)).sum();
    let vy: f64 = rows.iter().map(|(_, y)| (y - my).powi(2)).sum();
    let r = cov / (vx.sqrt() * vy.sqrt());
    println!(
        "\nPearson r(method count, build time) = {r:.3} — the paper reports an \
         \"approximately linear correlation\" (§IV-B)"
    );
}
