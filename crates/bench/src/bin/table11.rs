//! Regenerates Table XI: the gadget chains found in the Spring framework
//! scene, printed in the paper's source-to-sink stack format.
//!
//! ```text
//! cargo run -p tabby-bench --release --bin table11
//! ```

use tabby_bench::run_scene;
use tabby_workloads::scenes;

fn main() {
    println!("TABLE XI — gadget chains found in the Spring framework scene\n");
    let scene = scenes::spring();
    let got = run_scene(&scene);
    // The paper prints the JNDI chains through the aop target sources;
    // list those first, then the rest.
    let mut jndi: Vec<_> = got
        .chains
        .iter()
        .filter(|c| c.sink().ends_with("Context.lookup"))
        .collect();
    jndi.sort_by_key(|c| c.signatures.join("/"));
    let mut n = 0;
    for chain in jndi.iter() {
        n += 1;
        println!("#{n}");
        for sig in &chain.signatures {
            println!("  {}()", sig.replace(".springframework", ".#"));
        }
        println!();
    }
    println!("--- other chains in the scene ---");
    for chain in got
        .chains
        .iter()
        .filter(|c| !c.sink().ends_with("Context.lookup"))
    {
        println!(
            "  [{}] {}",
            chain.sink_category,
            chain.signatures.join(" -> ")
        );
    }
    println!(
        "\n(the paper abbreviates org.springframework as org.#; chain #3's shape is \
CVE-2020-11619's JndiObjectTargetSource.getTarget)"
    );
}
