//! Regenerates Figure 6: the Expander/Evaluator walk-through on the
//! hand-built method graph A…J — E and I are excluded by the Expander
//! (their Polluted_Position turns the Trigger_Condition to ∞), G by the
//! Evaluator (depth), and the H chain survives.
//!
//! ```text
//! cargo run -p tabby-bench --release --bin fig6
//! ```

use std::collections::HashSet;
use tabby_core::CpgSchema;
use tabby_graph::{Graph, NodeId, Value};
use tabby_pathfinder::{find_chains_raw, SearchConfig, TriggerCondition};

fn main() {
    let mut g = Graph::new();
    let schema = CpgSchema::install(&mut g);
    let names = ["A", "C", "C1", "C2", "E", "G", "H", "I", "E1", "J"];
    let nodes: Vec<NodeId> = names
        .iter()
        .map(|n| {
            let node = g.add_node(schema.method_label);
            g.set_node_prop(node, schema.name, Value::from(*n));
            g.set_node_prop(node, schema.class_name, Value::from("fig6"));
            node
        })
        .collect();
    let idx = |n: &str| nodes[names.iter().position(|x| *x == n).unwrap()];
    let mut call = |from: &str, to: &str, pp: Vec<i64>| {
        let e = g.add_edge(schema.call, idx(from), idx(to));
        g.set_edge_prop(e, schema.polluted_position, Value::IntList(pp));
    };
    call("C", "A", vec![-1, 1]);
    call("E", "A", vec![-1, -1]); // Expander cuts: ∞ at the required position
    call("G", "C2", vec![-1, 1]);
    call("H", "C1", vec![0, 0]);
    call("I", "C1", vec![-1, -1]); // Expander cuts (the paper's example)
    call("J", "E1", vec![0, 1]);
    for (from, to) in [("C1", "C"), ("C2", "C"), ("E1", "E")] {
        g.add_edge(schema.alias, idx(from), idx(to));
    }

    println!("FIGURE 6 — gadget-chain finding example");
    println!("sink = A with TC [1]; source = H; depth budget = 3\n");
    let config = SearchConfig {
        max_depth: 3,
        ..SearchConfig::default()
    };
    let chains = find_chains_raw(
        &g,
        &schema,
        vec![(idx("A"), TriggerCondition::from([1u16]))],
        vec![(idx("A"), "EXEC".to_owned())],
        &HashSet::from([idx("H")]),
        &config,
    );
    for chain in &chains {
        println!("found: {}", chain.signatures.join(" -CALL/ALIAS-> "));
    }
    assert_eq!(chains.len(), 1, "exactly the H chain survives");
    println!("\nexclusions reproduced:");
    println!("  E  — Expander: PP [∞,∞] turns A's TC to ∞ (uncontrollable)");
    println!("  I  — Expander: \"one of the values in A's TC becomes ∞ when it");
    println!("       passes through I-CALL->C1\" (§III-D)");
    println!("  G  — Evaluator: the G branch exceeds the depth budget");
}
