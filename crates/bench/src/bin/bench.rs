//! Benchmark driver. Currently one subcommand:
//!
//! ```text
//! cargo run -p tabby-bench --release --bin bench -- search \
//!     [--scenes smoke|full] [--only Spring,JDK8] [--repeat N] [--out PATH]
//! ```
//!
//! `search` measures the parallel chain-search engine (1/2/8 threads, memo
//! on/off) against the sequential reference on the Table X scenes and
//! writes the report to `BENCH_search.json` (or `--out`). Exit status is
//! nonzero if any configuration's chain set diverges from the reference —
//! CI runs this on the smoke scenes as a determinism gate.

use tabby_bench::{run_search_bench, SearchBenchConfig};

fn usage() -> ! {
    eprintln!(
        "usage: bench search [--scenes smoke|full] [--only NAME,NAME] [--repeat N] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("search") => cmd_search(&args[1..]),
        _ => usage(),
    }
}

fn cmd_search(args: &[String]) {
    let mut config = SearchBenchConfig::default();
    let mut out = "BENCH_search.json".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenes" => match it.next().map(String::as_str) {
                Some("smoke") => config.smoke = true,
                Some("full") => config.smoke = false,
                _ => usage(),
            },
            "--only" => match it.next() {
                Some(v) => config
                    .only
                    .extend(v.split(',').map(|s| s.trim().to_owned())),
                None => usage(),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.repeat = n,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let report = run_search_bench(&config);
    for scene in &report.results {
        println!(
            "{:<13} {:>4} chains  sequential {:>8.3}s ({} expansions)",
            scene.scene, scene.chains, scene.sequential_wall_s, scene.sequential_expansions
        );
        for v in &scene.variants {
            println!(
                "  {} threads, memo {:<3}  {:>8.3}s  x{:<6.2} vs sequential  \
                 memo hit-rate {:>5.1}%  {}",
                v.threads,
                if v.tc_memo { "on" } else { "off" },
                v.wall_s,
                v.speedup_vs_sequential,
                v.memo_hit_rate * 100.0,
                if v.identical { "identical" } else { "DIVERGED" },
            );
        }
        println!(
            "  8-thread/1-thread speedup (memo off): x{:.2}",
            scene.speedup_8v1_no_memo
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out}");
    if !report.all_identical {
        eprintln!("FAIL: some configuration diverged from the sequential reference");
        std::process::exit(1);
    }
}
