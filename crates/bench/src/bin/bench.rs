//! Benchmark driver. Subcommands:
//!
//! ```text
//! cargo run -p tabby-bench --release --bin bench -- search \
//!     [--scenes smoke|full] [--only Spring,JDK8] [--repeat N] [--out PATH]
//! cargo run -p tabby-bench --release --bin bench -- summarize \
//!     [--scenes smoke|full] [--only Spring,JDK8] [--repeat N] [--out PATH]
//! cargo run -p tabby-bench --release --bin bench -- query \
//!     [--scenes smoke|full] [--only Spring,JDK8] [--repeat N] [--out PATH]
//! ```
//!
//! `search` measures the parallel chain-search engine (1/2/8 threads, memo
//! on/off) against the sequential reference on the Table X scenes and
//! writes the report to `BENCH_search.json` (or `--out`). Exit status is
//! nonzero if any configuration's chain set diverges from the reference —
//! CI runs this on the smoke scenes as a determinism gate.
//!
//! `summarize` measures the SCC-wave summarization scheduler against the
//! shard baseline (1/2/8 threads each) and writes `BENCH_summarize.json`
//! (or `--out`). Exit status is nonzero if any configuration's summaries
//! diverge from the sequential reference, or if any wave run's
//! duplicated-work ratio is not exactly 1.0 — CI runs this on the smoke
//! scenes as an exactly-once gate.
//!
//! `query` measures every TQL builtin against the annotated scene CPGs and
//! writes `BENCH_query.json` (or `--out`). Exit status is nonzero if any
//! query's rows differ across repeats or any query truncates under the
//! default budgets — CI runs this on the smoke scenes as a query gate.
//!
//! `diff` measures differential scanning on the activation scenes —
//! registered snapshots + `diff_snapshots` against the cold full scan of
//! v2 it replaces — and writes `BENCH_diff.json` (or `--out`). Exit status
//! is nonzero if any scene's diff misreports the planted activation or
//! fails to beat its cold scan — CI runs this on the smoke scenes as the
//! differential-scanning gate.
//!
//! `witness` measures the post-search witness pass — plan synthesis and
//! interpreter execution over every reported chain — on the Table X scenes
//! and writes `BENCH_witness.json` (or `--out`): witnessed-per-second and
//! the tier distribution. Exit status is nonzero if any oracle-ineffective
//! chain comes back `witnessed`, any oracle-effective chain does not, or
//! any interpretation panics — CI runs this on the smoke scenes as the
//! exploitability gate.
//!
//! `coldstart` measures time-to-first-query-row from a warm disk cache —
//! the mmap'd flat CPG against the serde decode (and the cold rebuild)
//! it replaces, per scene — and writes `BENCH_coldstart.json` (or
//! `--out`). Exit status is nonzero if any path at any thread count
//! produces a chain set that diverges from the cold-scan reference — CI
//! runs this on the smoke scenes as the mapped-artifact fidelity gate.
//!
//! `ingest` generates nested-jar and war corpora (the full tier includes
//! the ≥100k-class stress scene), streams each archive through the
//! bounded-memory lift, and writes `BENCH_ingest.json` — classes lifted
//! per second, archive-open latency, and peak batch bytes. Exit status
//! is nonzero if any scene's archive chains diverge from its unpacked
//! reference tree, or if any lift's peak batch memory exceeds the
//! budget (blob memory growing with corpus size) — CI runs this on the
//! smoke scenes as the ingestion gate.

use tabby_bench::{
    run_coldstart_bench, run_diff_bench, run_ingest_bench, run_query_bench, run_search_bench,
    run_summarize_bench, run_witness_bench, ColdstartBenchConfig, DiffBenchConfig,
    IngestBenchConfig, QueryBenchConfig, SearchBenchConfig, SummarizeBenchConfig,
    WitnessBenchConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench <search|summarize|query|diff|witness|coldstart|ingest> \
         [--scenes smoke|full] [--only NAME,NAME] [--repeat N] [--out PATH]"
    );
    std::process::exit(2);
}

/// The flags both subcommands share.
struct CommonArgs {
    smoke: bool,
    only: Vec<String>,
    repeat: usize,
    out: String,
}

fn parse_common(args: &[String], default_out: &str, default_repeat: usize) -> CommonArgs {
    let mut parsed = CommonArgs {
        smoke: false,
        only: Vec::new(),
        repeat: default_repeat,
        out: default_out.to_owned(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenes" => match it.next().map(String::as_str) {
                Some("smoke") => parsed.smoke = true,
                Some("full") => parsed.smoke = false,
                _ => usage(),
            },
            "--only" => match it.next() {
                Some(v) => parsed
                    .only
                    .extend(v.split(',').map(|s| s.trim().to_owned())),
                None => usage(),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => parsed.repeat = n,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(v) => parsed.out = v.clone(),
                None => usage(),
            },
            _ => usage(),
        }
    }
    parsed
}

fn write_report<T: serde::Serialize>(report: &T, out: &str) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("search") => cmd_search(&args[1..]),
        Some("summarize") => cmd_summarize(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("witness") => cmd_witness(&args[1..]),
        Some("coldstart") => cmd_coldstart(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        _ => usage(),
    }
}

fn cmd_ingest(args: &[String]) {
    let common = parse_common(args, "BENCH_ingest.json", 3);
    let config = IngestBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_ingest_bench(&config);
    for scene in &report.results {
        println!(
            "{:<12} {:<10} {:>7} classes  {:>9} archive bytes  open {:>8.2}ms  \
             lift {:>8.3}s  {:>9.0} classes/s",
            scene.scene,
            scene.layout,
            scene.classes,
            scene.archive_bytes,
            scene.open_latency_ms,
            scene.lift_wall_s,
            scene.classes_per_s,
        );
        println!(
            "  peak batch {:>8} / budget {} bytes over {} batches ({} inflated)  \
             rss hwm {}  {}  chains jar/tree {}/{}  {}",
            scene.peak_batch_bytes,
            scene.batch_budget_bytes,
            scene.batches,
            scene.bytes_inflated,
            scene
                .peak_rss_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "n/a".to_owned()),
            if scene.bounded {
                "bounded"
            } else {
                "UNBOUNDED"
            },
            scene.chains_archive,
            scene.chains_tree,
            if scene.identical {
                "identical"
            } else {
                "DIVERGED"
            },
        );
    }
    println!(
        "max peak over all scenes: {} bytes (budget {})",
        report.max_peak_batch_bytes,
        tabby_bench::ingest_bench::BENCH_BATCH_BYTES
    );
    write_report(&report, &common.out);
    if !report.all_identical {
        eprintln!("FAIL: an archive scan's chains diverged from its unpacked tree");
        std::process::exit(1);
    }
    if !report.all_bounded {
        eprintln!("FAIL: a lift's peak batch memory exceeded the budget (O(corpus) blob memory)");
        std::process::exit(1);
    }
}

fn cmd_coldstart(args: &[String]) {
    let common = parse_common(args, "BENCH_coldstart.json", 5);
    let config = ColdstartBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_coldstart_bench(&config);
    for scene in &report.results {
        println!(
            "{:<13} {:>4} classes  {:>4} chains  cold {:>8.4}s  serde {:>8.4}s  \
             mmap {:>8.5}s ({} bytes mapped)  x{:<8.1} vs serde  x{:<8.1} vs cold  {}",
            scene.scene,
            scene.classes,
            scene.chains,
            scene.cold_wall_s,
            scene.serde_wall_s,
            scene.mmap_wall_s,
            scene.flat_bytes,
            scene.mmap_speedup_vs_serde,
            scene.mmap_speedup_vs_cold,
            if scene.all_identical {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        for v in &scene.mmap_variants {
            println!(
                "  mmap @ {} thread(s)  {:>8.5}s  {}",
                v.threads,
                v.wall_s,
                if v.identical { "identical" } else { "DIVERGED" },
            );
        }
    }
    println!(
        "worst-case mmap speedup vs serde decode: x{:.1}",
        report.min_mmap_speedup_vs_serde
    );
    write_report(&report, &common.out);
    if !report.all_identical {
        eprintln!("FAIL: a warm-cache path diverged from the cold-scan reference");
        std::process::exit(1);
    }
}

fn cmd_witness(args: &[String]) {
    let common = parse_common(args, "BENCH_witness.json", 3);
    let config = WitnessBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_witness_bench(&config);
    for scene in &report.results {
        println!(
            "{:<13} {:>4} chains  search {:>8.3}s  witness {:>8.4}s  \
             {:>8.1} witnessed/s  {} witnessed / {} plan-found / {} static-only  {}",
            scene.scene,
            scene.chains,
            scene.search_wall_s,
            scene.witness_wall_s,
            scene.witnessed_per_s,
            scene.witnessed,
            scene.plan_found,
            scene.static_only,
            if !scene.no_fake_witnessed {
                "FAKE-WITNESSED"
            } else if !scene.all_effective_witnessed {
                "MISSED"
            } else if scene.failures > 0 {
                "PANICKED"
            } else {
                "ok"
            },
        );
    }
    write_report(&report, &common.out);
    if !report.all_clean {
        eprintln!(
            "FAIL: a scene witnessed an oracle-ineffective chain, missed an effective one, \
             or panicked"
        );
        std::process::exit(1);
    }
}

fn cmd_diff(args: &[String]) {
    let common = parse_common(args, "BENCH_diff.json", 3);
    let config = DiffBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_diff_bench(&config);
    for scene in &report.results {
        println!(
            "{:<15} {:>4} classes  cold scan v2 {:>8.3}s  diff {:>8.4}s  x{:<8.1}  \
             {} activated, {} near-chain(s)  {}",
            scene.scene,
            scene.classes,
            scene.cold_scan_v2_wall_s,
            scene.diff_wall_s,
            scene.speedup_diff_vs_cold,
            scene.activated,
            scene.near_chains,
            if !scene.correct {
                "WRONG"
            } else if !scene.diff_faster_than_cold {
                "SLOWER"
            } else {
                "ok"
            },
        );
        println!(
            "  one-time registration: v1 {:>8.3}s, v2 {:>8.3}s",
            scene.snapshot_v1_wall_s, scene.snapshot_v2_wall_s
        );
    }
    write_report(&report, &common.out);
    if !report.all_correct {
        eprintln!("FAIL: a scene's diff misreported its planted activation");
        std::process::exit(1);
    }
    if !report.all_faster {
        eprintln!("FAIL: a scene's diff did not beat its cold full scan");
        std::process::exit(1);
    }
}

fn cmd_search(args: &[String]) {
    let common = parse_common(args, "BENCH_search.json", 3);
    let config = SearchBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_search_bench(&config);
    for scene in &report.results {
        println!(
            "{:<13} {:>4} chains  sequential {:>8.3}s ({} expansions)",
            scene.scene, scene.chains, scene.sequential_wall_s, scene.sequential_expansions
        );
        for v in &scene.variants {
            println!(
                "  {} threads, memo {:<3}  {:>8.3}s  x{:<6.2} vs sequential  \
                 memo hit-rate {:>5.1}%  {}",
                v.threads,
                if v.tc_memo { "on" } else { "off" },
                v.wall_s,
                v.speedup_vs_sequential,
                v.memo_hit_rate * 100.0,
                if v.identical { "identical" } else { "DIVERGED" },
            );
        }
        println!(
            "  8-thread/1-thread speedup (memo off): x{:.2}",
            scene.speedup_8v1_no_memo
        );
    }
    write_report(&report, &common.out);
    if !report.all_identical {
        eprintln!("FAIL: some configuration diverged from the sequential reference");
        std::process::exit(1);
    }
}

fn cmd_summarize(args: &[String]) {
    let common = parse_common(args, "BENCH_summarize.json", 3);
    let config = SummarizeBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_summarize_bench(&config);
    for scene in &report.results {
        println!(
            "{:<13} {:>5} methods  {} waves, {} SCCs (largest {})  sequential {:>8.3}s",
            scene.scene,
            scene.methods_with_bodies,
            scene.waves,
            scene.scc_groups,
            scene.largest_scc,
            scene.sequential_wall_s,
        );
        for v in &scene.variants {
            println!(
                "  {:<5} @ {} threads  {:>8.3}s  x{:<6.2} vs sequential  \
                 ratio {:.3}  {}",
                v.scheduler,
                v.threads,
                v.wall_s,
                v.speedup_vs_sequential,
                v.duplicated_work_ratio,
                if v.identical { "identical" } else { "DIVERGED" },
            );
        }
        println!(
            "  wave@8 / shard@8 speedup: x{:.2}",
            scene.speedup_wave8_vs_shard8
        );
    }
    write_report(&report, &common.out);
    if !report.all_identical {
        eprintln!("FAIL: some scheduler diverged from the sequential reference");
        std::process::exit(1);
    }
    if !report.all_wave_ratios_one {
        eprintln!("FAIL: a wave run recomputed summaries (duplicated-work ratio > 1.0)");
        std::process::exit(1);
    }
}

fn cmd_query(args: &[String]) {
    let common = parse_common(args, "BENCH_query.json", 3);
    let config = QueryBenchConfig {
        smoke: common.smoke,
        only: common.only,
        repeat: common.repeat,
    };

    let report = run_query_bench(&config);
    for scene in &report.results {
        println!(
            "{:<13} {:>4} classes  CPG build+annotate {:>8.3}s",
            scene.scene, scene.classes, scene.build_wall_s
        );
        for q in &scene.queries {
            println!(
                "  {:<14} {:>6} row(s)  {:>8} expansion(s)  {:>8.4}s  anchor {}  {}",
                q.builtin,
                q.rows,
                q.expansions,
                q.wall_s,
                q.anchor,
                if !q.deterministic {
                    "NONDETERMINISTIC"
                } else if q.truncated {
                    "TRUNCATED"
                } else {
                    "ok"
                },
            );
        }
    }
    write_report(&report, &common.out);
    if !report.all_clean {
        eprintln!("FAIL: a builtin was nondeterministic or truncated under default budgets");
        std::process::exit(1);
    }
}
