//! `bench ingest` — the corpus-scale streaming-ingestion benchmark.
//!
//! Generates nested-jar and war corpora with [`tabby_ingest::generate`]
//! (the full tier includes the ≥100k-class stress scene), streams each
//! archive through the bounded-memory lift, and scores three things:
//!
//! 1. **Throughput** — classes lifted per second and archive-open
//!    latency, per scene.
//! 2. **Boundedness** — `peak_batch_bytes` must stay within the batch
//!    budget (plus one blob of slack) *at every corpus size*: the 100k
//!    scene and the 1k scene run under the same budget, so a growing
//!    peak would be O(corpus) memory and fails the gate. The process
//!    RSS high watermark is reported alongside as the external witness.
//! 3. **Fidelity** — the chains found in the archive must be identical
//!    to the chains found in the unpacked reference tree; any
//!    divergence fails the gate (CI runs the smoke tier exactly for
//!    this).

use std::time::Instant;

use serde::Serialize;
use tabby_core::{collect_inputs, AnalysisConfig, Cpg};
use tabby_ingest::stream::peak_rss_bytes;
use tabby_ingest::{generate, lift_corpus, CorpusLayout, CorpusSpec, IngestLimits, StreamedLift};
use tabby_pathfinder::{find_gadget_chains, GadgetChain, SearchConfig, SinkCatalog, SourceCatalog};

/// Batch budget every scene lifts under: small enough that even the
/// smoke corpora flush repeatedly, so the bound is exercised — not
/// vacuously satisfied by a single batch.
pub const BENCH_BATCH_BYTES: u64 = 256 << 10;

/// Slack the peak may overshoot the budget by: the flush triggers on
/// *crossing* the budget, so the peak can exceed it by at most one
/// class blob.
pub const BENCH_BATCH_SLACK: u64 = 64 << 10;

/// Knobs for [`run_ingest_bench`].
#[derive(Debug, Clone, Default)]
pub struct IngestBenchConfig {
    /// Only the reduced scenes (the CI tier); `false` adds the
    /// ≥100k-class stress scene.
    pub smoke: bool,
    /// Restrict to scenes whose name matches (empty = all).
    pub only: Vec<String>,
    /// Lift repetitions per scene (best wall time wins).
    pub repeat: usize,
}

/// One scene's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct SceneIngestBench {
    /// Scene name.
    pub scene: String,
    /// Archive layout (`nested-jar` / `war` / `flat-jar`).
    pub layout: String,
    /// Filler + gadget classes generated.
    pub classes: usize,
    /// Top-level archive size on disk.
    pub archive_bytes: u64,
    /// Archives opened while planning (top-level + nested).
    pub archives_opened: usize,
    /// Wall milliseconds spent opening + exploding archives.
    pub open_latency_ms: f64,
    /// Best lift wall seconds over the repeats.
    pub lift_wall_s: f64,
    /// Classes lifted per second at the best wall time.
    pub classes_per_s: f64,
    /// Budget the lift ran under.
    pub batch_budget_bytes: u64,
    /// Largest number of blob bytes held at once.
    pub peak_batch_bytes: u64,
    /// Batches flushed.
    pub batches: usize,
    /// Total bytes inflated over the run (the O(corpus) quantity the
    /// peak must stay independent of).
    pub bytes_inflated: u64,
    /// Process RSS high watermark after this scene, if the platform
    /// exposes it (monotone across scenes — an upper envelope).
    pub peak_rss_bytes: Option<u64>,
    /// `peak_batch_bytes ≤ budget + slack`.
    pub bounded: bool,
    /// Chains found in the archive.
    pub chains_archive: usize,
    /// Chains found in the unpacked reference tree.
    pub chains_tree: usize,
    /// Archive chains byte-identical to tree chains.
    pub identical: bool,
}

/// The whole report, serialized to `BENCH_ingest.json`.
#[derive(Debug, Clone, Serialize)]
pub struct IngestBenchReport {
    /// Per-scene results.
    pub results: Vec<SceneIngestBench>,
    /// Every scene's archive chains matched its tree chains.
    pub all_identical: bool,
    /// Every scene's peak stayed within budget + slack.
    pub all_bounded: bool,
    /// Largest peak over all scenes — with `all_bounded`, the witness
    /// that memory did not grow with corpus size.
    pub max_peak_batch_bytes: u64,
}

struct SceneSpec {
    name: &'static str,
    classes: usize,
    chunk: usize,
    layout: CorpusLayout,
}

fn scenes(smoke: bool) -> Vec<SceneSpec> {
    let mut specs = vec![
        SceneSpec {
            name: "nested-2k",
            classes: 2_000,
            chunk: 256,
            layout: CorpusLayout::NestedJar,
        },
        SceneSpec {
            name: "war-1k",
            classes: 1_000,
            chunk: 200,
            layout: CorpusLayout::War,
        },
    ];
    if !smoke {
        specs.push(SceneSpec {
            name: "nested-100k",
            classes: 100_000,
            chunk: 4_096,
            layout: CorpusLayout::NestedJar,
        });
    }
    specs
}

fn layout_name(layout: &CorpusLayout) -> &'static str {
    match layout {
        CorpusLayout::FlatJar => "flat-jar",
        CorpusLayout::NestedJar => "nested-jar",
        CorpusLayout::War => "war",
    }
}

fn chains_of(lift: &StreamedLift) -> Vec<GadgetChain> {
    let mut cpg = Cpg::build(&lift.program, AnalysisConfig::default());
    find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    )
}

/// Benchmarks one generated scene; panics on generation/lift failure
/// (a bench environment problem, not a measurement).
pub fn bench_ingest_scene(spec_name: &str, spec: &CorpusSpec, repeat: usize) -> SceneIngestBench {
    let scratch = std::env::temp_dir().join(format!(
        "tabby-bench-ingest-{spec_name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("bench scratch dir");
    let corpus = generate(&scratch, spec).expect("corpus generates");
    let archive_bytes = std::fs::metadata(&corpus.archive)
        .expect("archive written")
        .len();

    let limits = IngestLimits {
        batch_bytes: BENCH_BATCH_BYTES,
        ..IngestLimits::default()
    };
    let archive_inputs =
        collect_inputs(std::slice::from_ref(&corpus.archive), true).expect("archive inputs");

    let mut best: Option<(f64, StreamedLift)> = None;
    for _ in 0..repeat.max(1) {
        let start = Instant::now();
        let lift = lift_corpus(&archive_inputs, &limits, true).expect("archive lifts");
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().map(|(w, _)| wall < *w).unwrap_or(true) {
            best = Some((wall, lift));
        }
    }
    let (lift_wall_s, lift) = best.expect("at least one repeat");
    let stats = lift.stats.clone();

    let tree_inputs =
        collect_inputs(std::slice::from_ref(&corpus.tree), true).expect("tree inputs");
    let tree_lift = lift_corpus(&tree_inputs, &limits, true).expect("tree lifts");

    let archive_chains = chains_of(&lift);
    let tree_chains = chains_of(&tree_lift);
    let identical = serde_json::to_string(&archive_chains).expect("chains serialize")
        == serde_json::to_string(&tree_chains).expect("chains serialize");

    let _ = std::fs::remove_dir_all(&scratch);

    SceneIngestBench {
        scene: spec_name.to_owned(),
        layout: layout_name(&spec.layout).to_owned(),
        classes: corpus.classes,
        archive_bytes,
        archives_opened: stats.archives_opened,
        open_latency_ms: stats.open_latency_ns as f64 / 1e6,
        lift_wall_s,
        classes_per_s: if lift_wall_s > 0.0 {
            stats.classes_lifted as f64 / lift_wall_s
        } else {
            f64::INFINITY
        },
        batch_budget_bytes: limits.batch_bytes,
        peak_batch_bytes: stats.peak_batch_bytes,
        batches: stats.batches,
        bytes_inflated: stats.bytes_inflated,
        peak_rss_bytes: peak_rss_bytes(),
        bounded: stats.peak_batch_bytes <= limits.batch_bytes + BENCH_BATCH_SLACK,
        chains_archive: archive_chains.len(),
        chains_tree: tree_chains.len(),
        identical,
    }
}

/// Runs every (selected) scene and folds the gates.
pub fn run_ingest_bench(config: &IngestBenchConfig) -> IngestBenchReport {
    let mut results = Vec::new();
    for spec in scenes(config.smoke) {
        if !config.only.is_empty() && !config.only.iter().any(|o| o == spec.name) {
            continue;
        }
        let corpus_spec = CorpusSpec {
            classes: spec.classes,
            chunk: spec.chunk,
            layout: spec.layout,
        };
        results.push(bench_ingest_scene(spec.name, &corpus_spec, config.repeat));
    }
    let all_identical = results.iter().all(|r| r.identical);
    let all_bounded = results.iter().all(|r| r.bounded);
    let max_peak_batch_bytes = results
        .iter()
        .map(|r| r.peak_batch_bytes)
        .max()
        .unwrap_or(0);
    IngestBenchReport {
        results,
        all_identical,
        all_bounded,
        max_peak_batch_bytes,
    }
}
