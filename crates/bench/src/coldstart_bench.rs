//! The `bench coldstart` runner: time-to-first-query-row from a warm disk
//! cache, emitting `BENCH_coldstart.json`.
//!
//! A daemon that restarts (or a second worker process attaching to a
//! shared cache directory) has three ways to serve the first scan of a
//! corpus it has already seen, and this benchmark times all three from the
//! same warmed cache:
//!
//! - **mmap** — open the flat artifact (`flat/<key>.tbe`) with one `mmap`,
//!   validate the envelope checksum and flat header, borrow the stored CSR
//!   arrays as a search snapshot, and run the chain search zero-copy
//!   (engine tier 1.5);
//! - **serde** — read the serde artifact (`cpgs/<key>.tbe`), JSON-decode
//!   the property graph, rebuild its indexes, and search (engine tier 2,
//!   which freezes a CSR snapshot internally);
//! - **cold** — rebuild the CPG from the program and search (engine
//!   tier 4), as a cache-less pipeline would.
//!
//! Correctness is the point, not just speed: the flat arrays are the CSR
//! arrays `CsrSnapshot::freeze` would build, so all three paths must
//! produce byte-identical chain JSON — the mmap path is checked at 1, 2,
//! and 8 search threads, and any divergence fails the run. Wall times are
//! the minimum over `repeat` runs; every timed run opens a fresh cache
//! handle so nothing is served from memory.

use serde::Serialize;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use tabby_core::{AnalysisConfig, Cpg, CpgSchema, ScanDiagnostics};
use tabby_graph::{content_hash64, EdgeType, NodeId};
use tabby_pathfinder::{
    find_chains_raw_detailed, find_chains_snapshot_detailed, SearchConfig, SinkCatalog,
    SourceCatalog, TriggerCondition,
};
use tabby_service::{CachedCpg, ScanCache};
use tabby_workloads::scenes::Scene;

/// What to measure.
#[derive(Debug, Clone)]
pub struct ColdstartBenchConfig {
    /// Use the ~12×-smaller smoke scenes (CI) instead of the full ones.
    pub smoke: bool,
    /// Case-insensitive substring filters on scene names; empty = all.
    pub only: Vec<String>,
    /// Timed runs per path; the minimum wall time is reported.
    pub repeat: usize,
}

impl Default for ColdstartBenchConfig {
    fn default() -> Self {
        ColdstartBenchConfig {
            smoke: false,
            only: Vec::new(),
            repeat: 5,
        }
    }
}

/// One mmap-path measurement at a fixed search-thread count.
#[derive(Debug, Clone, Serialize)]
pub struct MmapVariant {
    /// Search worker threads.
    pub threads: usize,
    /// Best open-to-chains wall time over the repeats, in seconds.
    pub wall_s: f64,
    /// Chain JSON is byte-identical to the cold-scan reference.
    pub identical: bool,
}

/// One scene's cold-start measurements.
#[derive(Debug, Clone, Serialize)]
pub struct SceneColdstart {
    /// Scene name (Table X row).
    pub scene: String,
    /// Classes in the scene program.
    pub classes: usize,
    /// Chains the reference cold scan finds.
    pub chains: usize,
    /// Size of the flat artifact the mmap path keeps mapped, in bytes.
    pub flat_bytes: u64,
    /// Cold path (CPG build + annotate + search), seconds.
    pub cold_wall_s: f64,
    /// Serde path (envelope read + JSON decode + index rebuild + search),
    /// seconds.
    pub serde_wall_s: f64,
    /// Mmap path (map + validate + borrow snapshot + search) at one search
    /// thread — the apples-to-apples figure against `serde_wall_s`.
    pub mmap_wall_s: f64,
    /// The mmap path at every checked thread count.
    pub mmap_variants: Vec<MmapVariant>,
    /// The serde path reproduced the cold reference byte-for-byte.
    pub serde_identical: bool,
    /// `serde_wall_s / mmap_wall_s` — what skipping the JSON decode and
    /// graph rebuild buys at equal thread count.
    pub mmap_speedup_vs_serde: f64,
    /// `cold_wall_s / mmap_wall_s`.
    pub mmap_speedup_vs_cold: f64,
    /// Every path and thread count reproduced the reference exactly.
    pub all_identical: bool,
}

/// The `BENCH_coldstart.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ColdstartBenchReport {
    /// `"smoke"` or `"full"`.
    pub scenes: String,
    /// Timed runs per path.
    pub repeat: usize,
    /// Per-scene measurements.
    pub results: Vec<SceneColdstart>,
    /// Every scene's every path matched its cold reference byte-for-byte.
    pub all_identical: bool,
    /// Worst-case `mmap_speedup_vs_serde` across the scenes.
    pub min_mmap_speedup_vs_serde: f64,
}

/// Thread counts the mmap path is checked at (the serde and cold baselines
/// run at one thread, matching `mmap_wall_s`).
const THREADS: [usize; 3] = [1, 2, 8];

fn search_cfg(threads: usize) -> SearchConfig {
    // Complete search (no expansion budget, memo off) so the byte-identity
    // check compares full chain sets, not truncation artifacts.
    SearchConfig {
        max_expansions: usize::MAX,
        search_threads: threads,
        tc_memo: false,
        ..SearchConfig::default()
    }
}

/// Builds and annotates the scene's CPG in the serializable cache form the
/// daemon persists — the same assembly `Engine::resolve_cpg` performs.
fn build_cached(program: &tabby_ir::Program) -> CachedCpg {
    let mut cpg = Cpg::build(program, AnalysisConfig::default());
    let sink_nodes = SinkCatalog::paper().annotate(&mut cpg);
    let source_nodes = SourceCatalog::native_serialization().annotate(&mut cpg);
    let mut sources: Vec<u32> = source_nodes.iter().map(|n| n.0).collect();
    sources.sort_unstable();
    CachedCpg {
        graph: cpg.graph,
        sinks: sink_nodes
            .iter()
            .map(|(n, s)| {
                (
                    n.0,
                    s.trigger_condition.clone(),
                    s.category.as_str().to_owned(),
                )
            })
            .collect(),
        sources,
        diagnostics: ScanDiagnostics::default(),
    }
}

/// Benchmarks one scene inside `root` (a cache directory shared with no
/// other scene key).
pub fn bench_coldstart_scene(scene: &Scene, root: &Path, repeat: usize) -> SceneColdstart {
    let repeat = repeat.max(1);
    let program = &scene.component.program;
    let key = content_hash64(scene.component.name.as_bytes());

    // Warm the disk cache once through the same persist path the daemon
    // uses: `put_cpg` writes both the serde artifact (`cpgs/<key>.tbe`)
    // and its flat mmap-able twin (`flat/<key>.tbe`).
    {
        let mut cache = ScanCache::new(Some(root.to_path_buf()), 8);
        cache.put_cpg(key, Arc::new(build_cached(program)));
    }

    // The cold baseline, which also mints the byte-identity reference.
    let cfg1 = search_cfg(1);
    let mut cold_wall_s = f64::INFINITY;
    let mut reference = None;
    for _ in 0..repeat {
        let t = Instant::now();
        let mut cpg = Cpg::build(program, AnalysisConfig::default());
        let sink_nodes = SinkCatalog::paper().annotate(&mut cpg);
        let source_nodes = SourceCatalog::native_serialization().annotate(&mut cpg);
        let sinks: Vec<(NodeId, TriggerCondition)> = sink_nodes
            .iter()
            .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
            .collect();
        let categories: Vec<(NodeId, String)> = sink_nodes
            .iter()
            .map(|(n, s)| (*n, s.category.as_str().to_owned()))
            .collect();
        let sources: HashSet<NodeId> = source_nodes;
        let out =
            find_chains_raw_detailed(&cpg.graph, &cpg.schema, sinks, categories, &sources, &cfg1);
        cold_wall_s = cold_wall_s.min(t.elapsed().as_secs_f64());
        reference = Some(out);
    }
    let reference = reference.expect("repeat >= 1");
    let reference_json = serde_json::to_string(&reference.chains).expect("chains serialize");

    // The serde path: every repeat opens a fresh cache handle so the
    // envelope read, JSON decode, and index rebuild are all paid.
    let mut serde_wall_s = f64::INFINITY;
    let mut serde_identical = true;
    for _ in 0..repeat {
        let mut cache = ScanCache::new(Some(root.to_path_buf()), 8);
        let t = Instant::now();
        let cached = cache.get_cpg(key).expect("warmed serde artifact loads");
        let schema = CpgSchema::lookup(&cached.graph).expect("cached CPG carries its schema");
        let sinks: Vec<(NodeId, TriggerCondition)> = cached
            .sinks
            .iter()
            .map(|(n, tc, _)| (NodeId(*n), tc.iter().copied().collect()))
            .collect();
        let categories: Vec<(NodeId, String)> = cached
            .sinks
            .iter()
            .map(|(n, _, cat)| (NodeId(*n), cat.clone()))
            .collect();
        let sources: HashSet<NodeId> = cached.sources.iter().map(|&n| NodeId(n)).collect();
        let out =
            find_chains_raw_detailed(&cached.graph, &schema, sinks, categories, &sources, &cfg1);
        serde_wall_s = serde_wall_s.min(t.elapsed().as_secs_f64());
        serde_identical =
            serde_json::to_string(&out.chains).expect("chains serialize") == reference_json;
    }

    // The mmap path, at every thread count.
    let mut flat_bytes = 0;
    let mut mmap_variants = Vec::with_capacity(THREADS.len());
    for threads in THREADS {
        let cfg = search_cfg(threads);
        let mut wall_s = f64::INFINITY;
        let mut identical = true;
        for _ in 0..repeat {
            let mut cache = ScanCache::new(Some(root.to_path_buf()), 8);
            let t = Instant::now();
            let flat = cache.get_flat(key).expect("warmed flat artifact maps");
            let csr = flat
                .cpg
                .snapshot(&[EdgeType(flat.meta.call_ty), EdgeType(flat.meta.alias_ty)]);
            let sinks: Vec<(NodeId, TriggerCondition)> = flat
                .meta
                .sinks
                .iter()
                .map(|(n, tc, _)| (NodeId(*n), tc.iter().copied().collect()))
                .collect();
            let categories: Vec<(NodeId, String)> = flat
                .meta
                .sinks
                .iter()
                .map(|(n, _, cat)| (NodeId(*n), cat.clone()))
                .collect();
            let sources: HashSet<NodeId> = flat.meta.sources.iter().map(|&n| NodeId(n)).collect();
            let describe = |n: NodeId| {
                format!(
                    "{}.{}",
                    flat.cpg.node_class(n).unwrap_or("?"),
                    flat.cpg.node_name(n).unwrap_or("?")
                )
            };
            let out =
                find_chains_snapshot_detailed(&csr, &describe, sinks, categories, &sources, &cfg);
            wall_s = wall_s.min(t.elapsed().as_secs_f64());
            identical =
                serde_json::to_string(&out.chains).expect("chains serialize") == reference_json;
            flat_bytes = flat.bytes();
        }
        mmap_variants.push(MmapVariant {
            threads,
            wall_s,
            identical,
        });
    }

    let mmap_wall_s = mmap_variants
        .iter()
        .find(|v| v.threads == 1)
        .map_or(f64::INFINITY, |v| v.wall_s);
    let all_identical = serde_identical && mmap_variants.iter().all(|v| v.identical);
    SceneColdstart {
        scene: scene.component.name.clone(),
        classes: program.classes().len(),
        chains: reference.chains.len(),
        flat_bytes,
        cold_wall_s,
        serde_wall_s,
        mmap_wall_s,
        mmap_speedup_vs_serde: serde_wall_s / mmap_wall_s.max(1e-9),
        mmap_speedup_vs_cold: cold_wall_s / mmap_wall_s.max(1e-9),
        mmap_variants,
        serde_identical,
        all_identical,
    }
}

/// Runs the configured scenes in a temporary cache directory and assembles
/// the report.
pub fn run_coldstart_bench(config: &ColdstartBenchConfig) -> ColdstartBenchReport {
    let scenes = if config.smoke {
        tabby_workloads::scenes::smoke()
    } else {
        tabby_workloads::scenes::all()
    };
    let keep = |name: &str| {
        config.only.is_empty()
            || config
                .only
                .iter()
                .any(|f| name.to_lowercase().contains(&f.to_lowercase()))
    };
    let root: PathBuf =
        std::env::temp_dir().join(format!("tabby-bench-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let results: Vec<SceneColdstart> = scenes
        .iter()
        .filter(|s| keep(&s.component.name))
        .map(|s| bench_coldstart_scene(s, &root, config.repeat))
        .collect();
    let _ = std::fs::remove_dir_all(&root);
    ColdstartBenchReport {
        scenes: if config.smoke { "smoke" } else { "full" }.to_owned(),
        repeat: config.repeat,
        all_identical: results.iter().all(|r| r.all_identical),
        min_mmap_speedup_vs_serde: results
            .iter()
            .map(|r| r.mmap_speedup_vs_serde)
            .fold(f64::INFINITY, f64::min),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_coldstart_is_identical_across_all_three_paths() {
        let report = run_coldstart_bench(&ColdstartBenchConfig {
            smoke: true,
            only: vec!["Jetty".to_owned()],
            repeat: 1,
        });
        assert_eq!(report.results.len(), 1);
        let scene = &report.results[0];
        assert_eq!(scene.scene, "Jetty");
        assert!(scene.chains > 0, "reference scan found no chains");
        assert!(scene.flat_bytes > 0, "flat artifact was not mapped");
        assert!(scene.serde_identical, "{scene:?}");
        assert_eq!(scene.mmap_variants.len(), THREADS.len());
        assert!(scene.all_identical, "{scene:?}");
        assert!(report.all_identical);
        // The mapped open skips the JSON decode and graph rebuild entirely,
        // so even the smallest smoke scene must come out ahead.
        assert!(
            scene.mmap_speedup_vs_serde > 1.0,
            "mmap {}s vs serde {}s",
            scene.mmap_wall_s,
            scene.serde_wall_s
        );
    }
}
