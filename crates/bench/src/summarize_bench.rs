//! The `bench summarize` runner: SCC-wave vs shard-scheduler
//! summarization benchmarking over the Table X scenes, emitting
//! `BENCH_summarize.json`.
//!
//! For each scene the program is summarized under every scheduler
//! configuration:
//!
//! - the PR-2 **shard** scheduler at 1, 2, and 8 threads — at one thread it
//!   is the exact sequential fixpoint, whose canonical summary dump is the
//!   baseline every other run must reproduce byte-for-byte; at higher
//!   thread counts each shard re-derives the summaries it needs from other
//!   shards, so its duplicated-work ratio exceeds 1.0;
//! - the **wave** scheduler (call-graph condensation + bottom-up topological
//!   waves) at 1, 2, and 8 threads, which must summarize every method
//!   exactly once at any thread count: its duplicated-work ratio is
//!   required to be exactly 1.0.
//!
//! Wall times are the minimum over `repeat` runs. No deadline is set so the
//! comparison is complete-fixpoint vs complete-fixpoint.

use serde::Serialize;
use std::time::Instant;
use tabby_core::{
    canonical_summary_dump, summarize_program_contained, summarize_program_sharded_contained,
    AnalysisConfig,
};
use tabby_workloads::scenes::Scene;

/// What to run and how often.
#[derive(Debug, Clone)]
pub struct SummarizeBenchConfig {
    /// Use the ~12×-smaller smoke scenes instead of the full ones.
    pub smoke: bool,
    /// Case-insensitive substring filters on scene names; empty = all.
    pub only: Vec<String>,
    /// Timed runs per configuration; the minimum wall time is reported.
    pub repeat: usize,
}

impl Default for SummarizeBenchConfig {
    fn default() -> Self {
        SummarizeBenchConfig {
            smoke: false,
            only: Vec::new(),
            repeat: 3,
        }
    }
}

/// One scheduler configuration's measurement on one scene.
#[derive(Debug, Clone, Serialize)]
pub struct SummarizeVariantResult {
    /// `"shard"` (the PR-2 baseline) or `"wave"` (the SCC-wave scheduler).
    pub scheduler: String,
    /// Analysis worker threads.
    pub threads: usize,
    /// Best wall time over the configured repeats, in seconds.
    pub wall_s: f64,
    /// Distinct methods whose summary this run produced.
    pub summaries_computed: usize,
    /// Fixpoint passes actually run, including duplicated cross-shard work.
    pub methods_analyzed: usize,
    /// `methods_analyzed / summaries_computed`; exactly 1.0 means every
    /// method was summarized exactly once.
    pub duplicated_work_ratio: f64,
    /// Canonical summary dump is byte-identical to the sequential
    /// reference.
    pub identical: bool,
    /// `sequential wall / this wall`.
    pub speedup_vs_sequential: f64,
}

/// One scene's full measurement set.
#[derive(Debug, Clone, Serialize)]
pub struct SceneSummarizeBench {
    /// Scene name (Table X row).
    pub scene: String,
    /// Classes in the scene program.
    pub classes: usize,
    /// Methods with bodies (the fixpoint's work list).
    pub methods_with_bodies: usize,
    /// Topological waves the SCC-wave scheduler ran.
    pub waves: usize,
    /// Recursion SCCs scheduled (including trivial single-method ones).
    pub scc_groups: usize,
    /// Methods in the largest recursion SCC.
    pub largest_scc: usize,
    /// Sequential (shard@1) wall time, in seconds.
    pub sequential_wall_s: f64,
    /// Every scheduler configuration measured on the same program.
    pub variants: Vec<SummarizeVariantResult>,
    /// Wave@8 over shard@8 speedup — the headline number: same thread
    /// budget, recomputation eliminated.
    pub speedup_wave8_vs_shard8: f64,
    /// Every variant reproduced the reference summary dump exactly.
    pub all_identical: bool,
    /// Every wave variant's duplicated-work ratio was exactly 1.0.
    pub wave_ratio_exactly_one: bool,
}

/// The `BENCH_summarize.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SummarizeBenchReport {
    /// `"smoke"` or `"full"`.
    pub scenes: String,
    /// Timed runs per configuration.
    pub repeat: usize,
    /// Per-scene measurements.
    pub results: Vec<SceneSummarizeBench>,
    /// Every variant of every scene matched its reference byte-for-byte.
    pub all_identical: bool,
    /// Every wave variant of every scene had ratio exactly 1.0.
    pub all_wave_ratios_one: bool,
}

/// Thread counts measured per scheduler per scene.
const THREADS: [usize; 3] = [1, 2, 8];

/// Benchmarks one scene.
pub fn bench_summarize_scene(scene: &Scene, repeat: usize) -> SceneSummarizeBench {
    let repeat = repeat.max(1);
    let program = &scene.component.program;
    let config = AnalysisConfig::default();

    // The sequential reference: the shard scheduler at one thread runs the
    // plain whole-program fixpoint.
    let mut sequential_wall_s = f64::INFINITY;
    let mut reference = None;
    for _ in 0..repeat {
        let t = Instant::now();
        let out = summarize_program_sharded_contained(program, &config, 1, None);
        sequential_wall_s = sequential_wall_s.min(t.elapsed().as_secs_f64());
        reference = Some(out);
    }
    let reference = reference.expect("repeat >= 1");
    let reference_dump = canonical_summary_dump(program, &reference.summaries);

    let mut variants = Vec::new();
    let mut waves = 0;
    let mut scc_groups = 0;
    let mut largest_scc = 0;
    let mut methods_with_bodies = reference.scheduler.methods_with_bodies;
    for scheduler in ["shard", "wave"] {
        for threads in THREADS {
            let mut wall_s = f64::INFINITY;
            let mut last = None;
            for _ in 0..repeat {
                let t = Instant::now();
                let out = if scheduler == "shard" {
                    summarize_program_sharded_contained(program, &config, threads, None)
                } else {
                    summarize_program_contained(program, &config, threads, None)
                };
                wall_s = wall_s.min(t.elapsed().as_secs_f64());
                last = Some(out);
            }
            let out = last.expect("repeat >= 1");
            if scheduler == "wave" {
                waves = out.scheduler.waves;
                scc_groups = out.scheduler.scc_groups;
                largest_scc = out.scheduler.largest_scc;
                methods_with_bodies = out.scheduler.methods_with_bodies;
            }
            let identical = canonical_summary_dump(program, &out.summaries) == reference_dump;
            variants.push(SummarizeVariantResult {
                scheduler: scheduler.to_owned(),
                threads,
                wall_s,
                summaries_computed: out.scheduler.summaries_computed,
                methods_analyzed: out.scheduler.methods_analyzed,
                duplicated_work_ratio: out.scheduler.duplicated_work_ratio(),
                identical,
                speedup_vs_sequential: sequential_wall_s / wall_s.max(f64::EPSILON),
            });
        }
    }

    let wall_of = |scheduler: &str, threads: usize| {
        variants
            .iter()
            .find(|v| v.scheduler == scheduler && v.threads == threads)
            .map_or(f64::EPSILON, |v| v.wall_s)
    };
    let all_identical = variants.iter().all(|v| v.identical);
    let wave_ratio_exactly_one = variants
        .iter()
        .filter(|v| v.scheduler == "wave")
        .all(|v| v.duplicated_work_ratio == 1.0);
    SceneSummarizeBench {
        scene: scene.component.name.clone(),
        classes: program.classes().len(),
        methods_with_bodies,
        waves,
        scc_groups,
        largest_scc,
        sequential_wall_s,
        variants,
        speedup_wave8_vs_shard8: wall_of("shard", 8) / wall_of("wave", 8).max(f64::EPSILON),
        all_identical,
        wave_ratio_exactly_one,
    }
}

/// Runs the whole battery per `config`.
pub fn run_summarize_bench(config: &SummarizeBenchConfig) -> SummarizeBenchReport {
    let scenes = if config.smoke {
        tabby_workloads::scenes::smoke()
    } else {
        tabby_workloads::scenes::all()
    };
    let keep = |name: &str| {
        config.only.is_empty()
            || config
                .only
                .iter()
                .any(|f| name.to_lowercase().contains(&f.to_lowercase()))
    };
    let results: Vec<SceneSummarizeBench> = scenes
        .iter()
        .filter(|s| keep(&s.component.name))
        .map(|s| bench_summarize_scene(s, config.repeat))
        .collect();
    let all_identical = results.iter().all(|r| r.all_identical);
    let all_wave_ratios_one = results.iter().all(|r| r.wave_ratio_exactly_one);
    SummarizeBenchReport {
        scenes: if config.smoke { "smoke" } else { "full" }.to_owned(),
        repeat: config.repeat,
        results,
        all_identical,
        all_wave_ratios_one,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_is_identical_across_schedulers() {
        let report = run_summarize_bench(&SummarizeBenchConfig {
            smoke: true,
            only: vec!["Jetty".to_owned()],
            repeat: 1,
        });
        assert_eq!(report.results.len(), 1);
        let scene = &report.results[0];
        assert_eq!(scene.scene, "Jetty");
        assert_eq!(scene.variants.len(), 2 * THREADS.len());
        assert!(scene.all_identical, "{scene:?}");
        assert!(scene.wave_ratio_exactly_one, "{scene:?}");
        assert!(scene.waves > 0);
        assert!(scene.methods_with_bodies > 0);
        // Every wave variant computed each summary exactly once.
        for v in scene.variants.iter().filter(|v| v.scheduler == "wave") {
            assert_eq!(v.summaries_computed, scene.methods_with_bodies);
            assert_eq!(v.methods_analyzed, v.summaries_computed);
        }
    }
}
