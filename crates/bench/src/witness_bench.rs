//! The witness-stage benchmark: on each Table X scene, time the post-search
//! witness pass (plan synthesis + interpreter execution over every reported
//! chain) and score its tiers against the PoC oracle.
//!
//! Timing reports witnessed-chains-per-second and the tier distribution;
//! wall times are the minimum over `repeat` runs. Correctness is asserted
//! alongside timing, in both directions:
//!
//! - **no fake witnesses** — a chain the oracle judges ineffective must
//!   never come back tier `witnessed` (the hard false-positive gate CI
//!   blocks on);
//! - **no missed witnesses** — every oracle-effective chain must witness
//!   (the interpreter keeps up with the search's true positives).

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tabby_core::{AnalysisConfig, Cpg};
use tabby_pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog, WitnessTier};
use tabby_witness::{witness_chains, WitnessConfig};
use tabby_workloads::scenes::{self, Scene};

/// What to measure.
#[derive(Debug, Clone)]
pub struct WitnessBenchConfig {
    /// Use the smoke-sized scenes (CI) instead of full size.
    pub smoke: bool,
    /// Restrict to these scene names (empty = all).
    pub only: Vec<String>,
    /// Timed runs per measurement; the minimum wall time is reported.
    pub repeat: usize,
}

impl Default for WitnessBenchConfig {
    fn default() -> Self {
        WitnessBenchConfig {
            smoke: false,
            only: Vec::new(),
            repeat: 3,
        }
    }
}

/// One scene's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneWitnessBench {
    /// Scene name.
    pub scene: String,
    /// Classes in the scene program.
    pub classes: usize,
    /// Chains the search reported (after the scene's package filter).
    pub chains: usize,
    /// Chains confirmed by execution.
    pub witnessed: usize,
    /// Chains with a plan that execution did not confirm.
    pub plan_found: usize,
    /// Chains that could not be concretized.
    pub static_only: usize,
    /// Contained interpreter panics (must be 0).
    pub failures: usize,
    /// Search wall seconds (context; not part of the witness timing).
    pub search_wall_s: f64,
    /// Witness pass wall seconds (plan + execute every chain).
    pub witness_wall_s: f64,
    /// `witnessed / witness_wall_s`.
    pub witnessed_per_s: f64,
    /// No oracle-ineffective chain came back `witnessed`.
    pub no_fake_witnessed: bool,
    /// Every oracle-effective chain came back `witnessed`.
    pub all_effective_witnessed: bool,
}

/// The full report, serialized to `BENCH_witness.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WitnessBenchReport {
    /// `"smoke"` or `"full"`.
    pub scenes: String,
    /// Timed runs per measurement.
    pub repeat: usize,
    /// Per-scene measurements.
    pub results: Vec<SceneWitnessBench>,
    /// Every scene passed both oracle gates with zero contained panics.
    pub all_clean: bool,
}

/// Benchmarks the witness pass on one scene.
pub fn bench_witness_scene(scene: &Scene, repeat: usize) -> SceneWitnessBench {
    let repeat = repeat.max(1);
    let component = &scene.component;
    let program = &component.program;
    let catalog = SinkCatalog::paper();

    let t = Instant::now();
    let mut cpg = Cpg::build(program, AnalysisConfig::default());
    let found = find_gadget_chains(
        &mut cpg,
        &catalog,
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    );
    let found = component.filter_chains(found);
    let search_wall_s = t.elapsed().as_secs_f64();

    let effective: Vec<bool> = found
        .iter()
        .map(|c| tabby_workloads::oracle::chain_is_effective(program, &cpg, c))
        .collect();

    let mut witness_wall_s = f64::INFINITY;
    let mut chains = Vec::new();
    let mut stats = tabby_witness::WitnessStats::default();
    for _ in 0..repeat {
        let mut run = found.clone();
        let t = Instant::now();
        let run_stats = witness_chains(program, &catalog, &mut run, &WitnessConfig::default());
        witness_wall_s = witness_wall_s.min(t.elapsed().as_secs_f64());
        chains = run;
        stats = run_stats;
    }

    let no_fake_witnessed = chains
        .iter()
        .zip(&effective)
        .all(|(c, eff)| *eff || c.tier != Some(WitnessTier::Witnessed));
    let all_effective_witnessed = chains
        .iter()
        .zip(&effective)
        .all(|(c, eff)| !*eff || c.tier == Some(WitnessTier::Witnessed));

    SceneWitnessBench {
        scene: component.name.clone(),
        classes: program.classes().len(),
        chains: chains.len(),
        witnessed: stats.witnessed,
        plan_found: stats.plan_found,
        static_only: stats.static_only,
        failures: stats.failures,
        search_wall_s,
        witness_wall_s,
        witnessed_per_s: stats.witnessed as f64 / witness_wall_s.max(1e-9),
        no_fake_witnessed,
        all_effective_witnessed,
    }
}

/// Runs the configured scenes and assembles the report.
pub fn run_witness_bench(config: &WitnessBenchConfig) -> WitnessBenchReport {
    let scenes = if config.smoke {
        scenes::smoke()
    } else {
        scenes::all()
    };
    let mut results = Vec::new();
    for scene in &scenes {
        if !config.only.is_empty() && !config.only.iter().any(|n| n == &scene.component.name) {
            continue;
        }
        results.push(bench_witness_scene(scene, config.repeat));
    }
    WitnessBenchReport {
        scenes: if config.smoke { "smoke" } else { "full" }.to_owned(),
        repeat: config.repeat,
        all_clean: results
            .iter()
            .all(|r| r.no_fake_witnessed && r.all_effective_witnessed && r.failures == 0),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scene_witnesses_cleanly() {
        let config = WitnessBenchConfig {
            smoke: true,
            only: vec!["JDK8".to_owned()],
            repeat: 1,
        };
        let report = run_witness_bench(&config);
        assert_eq!(report.results.len(), 1);
        let scene = &report.results[0];
        assert!(scene.chains > 0, "smoke scene reports chains");
        assert!(scene.witnessed > 0, "smoke scene witnesses chains");
        assert!(scene.no_fake_witnessed, "fake chain witnessed: {scene:?}");
        assert!(
            scene.all_effective_witnessed,
            "effective chain missed: {scene:?}"
        );
        assert_eq!(scene.failures, 0);
        assert_eq!(
            scene.chains,
            scene.witnessed + scene.plan_found + scene.static_only
        );
        assert!(report.all_clean);
    }
}
