//! # tabby-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV); see
//! the `table8`/`table9`/`table10`/`table11`/`fig6` binaries and the
//! Criterion benches under `benches/`. The `bench` binary's `search`
//! subcommand ([`search_bench`]) measures the parallel chain-search engine
//! against the sequential reference and emits `BENCH_search.json`; its
//! `summarize` subcommand ([`summarize_bench`]) measures the SCC-wave
//! summarization scheduler against the shard baseline and emits
//! `BENCH_summarize.json`; its `query` subcommand ([`query_bench`])
//! measures every TQL builtin against the annotated scene CPGs and emits
//! `BENCH_query.json`; its `diff` subcommand ([`diff_bench`]) measures
//! differential scanning (registered snapshots + `diff`) against the cold
//! full scan it replaces and emits `BENCH_diff.json`; its `witness`
//! subcommand ([`witness_bench`]) measures the post-search witness pass
//! (plan synthesis + interpreter execution, scored against the PoC
//! oracle) and emits `BENCH_witness.json`; its `coldstart` subcommand
//! ([`coldstart_bench`]) measures time-to-first-query-row from a warm
//! disk cache — the mmap'd flat CPG against the serde decode and the cold
//! rebuild it replaces — and emits `BENCH_coldstart.json`; its `ingest`
//! subcommand ([`ingest_bench`]) streams generated nested-jar and war
//! corpora (up to the ≥100k-class stress scene) through the
//! bounded-memory archive lift and emits `BENCH_ingest.json` — classes
//! lifted per second, archive-open latency, and the peak-batch-bytes
//! boundedness and jar-vs-tree chain-fidelity gates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coldstart_bench;
pub mod diff_bench;
pub mod ingest_bench;
pub mod query_bench;
pub mod runner;
pub mod search_bench;
pub mod summarize_bench;
pub mod witness_bench;

pub use coldstart_bench::{
    bench_coldstart_scene, run_coldstart_bench, ColdstartBenchConfig, ColdstartBenchReport,
    MmapVariant, SceneColdstart,
};
pub use diff_bench::{
    bench_diff_scene, run_diff_bench, DiffBenchConfig, DiffBenchReport, SceneDiffBench,
};
pub use ingest_bench::{
    bench_ingest_scene, run_ingest_bench, IngestBenchConfig, IngestBenchReport, SceneIngestBench,
};
pub use query_bench::{
    bench_queries_on_scene, run_query_bench, QueryBenchConfig, QueryBenchReport, QueryResult,
    SceneQueryBench,
};
pub use runner::{
    run_gadget_inspector, run_scene, run_serianalyzer, run_tabby, run_tabby_with, CellResult,
    SceneResult,
};
pub use search_bench::{
    bench_scene, run_search_bench, SceneBench, SearchBenchConfig, SearchBenchReport, VariantResult,
};
pub use summarize_bench::{
    bench_summarize_scene, run_summarize_bench, SceneSummarizeBench, SummarizeBenchConfig,
    SummarizeBenchReport, SummarizeVariantResult,
};
pub use witness_bench::{
    bench_witness_scene, run_witness_bench, SceneWitnessBench, WitnessBenchConfig,
    WitnessBenchReport,
};
