//! The `bench search` runner: parallel-vs-sequential chain-search
//! benchmarking over the Table X scenes, emitting `BENCH_search.json`.
//!
//! For each scene the CPG is built and annotated **once**; the raw search
//! then runs under every engine configuration against the same graph:
//!
//! - the sequential reference walk (no memo, one thread — the paper's
//!   Algorithm 3 as written), whose canonical chain JSON is the baseline
//!   every other run must reproduce byte-for-byte;
//! - the work-sharded engine at 1, 2, and 8 threads, memo on and off.
//!
//! All runs use an unbounded expansion budget and no deadline so the
//! comparison is complete-search vs complete-search (a truncated run would
//! make both the timing and the identical-output check meaningless). Wall
//! times are the minimum over `repeat` runs.

use serde::Serialize;
use std::collections::HashSet;
use std::time::Instant;
use tabby_core::{AnalysisConfig, Cpg};
use tabby_graph::NodeId;
use tabby_pathfinder::{
    find_chains_raw_detailed, find_chains_reference_detailed, SearchConfig, SinkCatalog,
    SourceCatalog, TriggerCondition,
};
use tabby_workloads::scenes::Scene;

/// What to run and how often.
#[derive(Debug, Clone)]
pub struct SearchBenchConfig {
    /// Use the ~12×-smaller smoke scenes instead of the full ones.
    pub smoke: bool,
    /// Case-insensitive substring filters on scene names; empty = all.
    pub only: Vec<String>,
    /// Timed runs per configuration; the minimum wall time is reported.
    pub repeat: usize,
}

impl Default for SearchBenchConfig {
    fn default() -> Self {
        SearchBenchConfig {
            smoke: false,
            only: Vec::new(),
            repeat: 3,
        }
    }
}

/// One engine configuration's measurement on one scene.
#[derive(Debug, Clone, Serialize)]
pub struct VariantResult {
    /// Search worker threads.
    pub threads: usize,
    /// Whether the TC-dominance memo was enabled.
    pub tc_memo: bool,
    /// Best wall time over the configured repeats, in seconds.
    pub wall_s: f64,
    /// States expanded (nondeterministic across runs when `threads > 1`
    /// and the memo is on; the last run's value is reported).
    pub expansions: usize,
    /// States pruned by the memo.
    pub memo_hits: usize,
    /// `memo_hits / (memo_hits + expansions)`.
    pub memo_hit_rate: f64,
    /// Wall time per expansion in nanoseconds. Comparable across variants
    /// only at equal expansion counts (memo off), where it isolates the
    /// per-expansion cost of the engine from the amount of work done.
    pub ns_per_expansion: f64,
    /// Canonical chain JSON is byte-identical to the sequential reference.
    pub identical: bool,
    /// `sequential wall / this wall`.
    pub speedup_vs_sequential: f64,
}

/// One scene's full measurement set.
#[derive(Debug, Clone, Serialize)]
pub struct SceneBench {
    /// Scene name (Table X row).
    pub scene: String,
    /// Classes in the scene program.
    pub classes: usize,
    /// Chains the reference search finds.
    pub chains: usize,
    /// Sequential reference wall time, in seconds.
    pub sequential_wall_s: f64,
    /// Sequential reference expansions.
    pub sequential_expansions: usize,
    /// Reference wall time per expansion in nanoseconds — the baseline for
    /// the variants' `ns_per_expansion` (the reference walks the raw
    /// property graph; the engine walks the frozen CSR snapshot).
    pub sequential_ns_per_expansion: f64,
    /// Every engine configuration measured against the same CPG.
    pub variants: Vec<VariantResult>,
    /// 8-thread over 1-thread speedup with the memo off (the pure
    /// parallelization factor, uncontaminated by memo pruning).
    pub speedup_8v1_no_memo: f64,
    /// Every variant reproduced the reference chain JSON exactly.
    pub all_identical: bool,
}

/// The `BENCH_search.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SearchBenchReport {
    /// `"smoke"` or `"full"`.
    pub scenes: String,
    /// Timed runs per configuration.
    pub repeat: usize,
    /// Per-scene measurements.
    pub results: Vec<SceneBench>,
    /// Every variant of every scene matched its reference byte-for-byte.
    pub all_identical: bool,
}

/// Thread counts × memo settings measured per scene.
const VARIANTS: [(usize, bool); 6] = [
    (1, true),
    (2, true),
    (8, true),
    (1, false),
    (2, false),
    (8, false),
];

fn ns_per(wall_s: f64, expansions: usize) -> f64 {
    if expansions == 0 {
        0.0
    } else {
        wall_s * 1e9 / expansions as f64
    }
}

fn bench_config(threads: usize, tc_memo: bool) -> SearchConfig {
    SearchConfig {
        max_expansions: usize::MAX,
        search_threads: threads,
        tc_memo,
        ..SearchConfig::default()
    }
}

/// Benchmarks one scene; the CPG is built and annotated once.
pub fn bench_scene(scene: &Scene, repeat: usize) -> SceneBench {
    let repeat = repeat.max(1);
    let program = &scene.component.program;
    let mut cpg = Cpg::build(program, AnalysisConfig::default());
    let sink_nodes = SinkCatalog::paper().annotate(&mut cpg);
    let source_nodes = SourceCatalog::native_serialization().annotate(&mut cpg);
    let sinks: Vec<(NodeId, TriggerCondition)> = sink_nodes
        .iter()
        .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
        .collect();
    let categories: Vec<(NodeId, String)> = sink_nodes
        .iter()
        .map(|(n, s)| (*n, s.category.as_str().to_owned()))
        .collect();
    let sources: HashSet<NodeId> = source_nodes;

    let reference_cfg = bench_config(1, false);
    let mut sequential_wall_s = f64::INFINITY;
    let mut reference = None;
    for _ in 0..repeat {
        let t = Instant::now();
        let out = find_chains_reference_detailed(
            &cpg.graph,
            &cpg.schema,
            sinks.clone(),
            categories.clone(),
            &sources,
            &reference_cfg,
        );
        sequential_wall_s = sequential_wall_s.min(t.elapsed().as_secs_f64());
        reference = Some(out);
    }
    let reference = reference.expect("repeat >= 1");
    let reference_json = serde_json::to_string(&reference.chains).expect("chains serialize");

    let mut variants = Vec::with_capacity(VARIANTS.len());
    for (threads, tc_memo) in VARIANTS {
        let cfg = bench_config(threads, tc_memo);
        let mut wall_s = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeat {
            let t = Instant::now();
            let out = find_chains_raw_detailed(
                &cpg.graph,
                &cpg.schema,
                sinks.clone(),
                categories.clone(),
                &sources,
                &cfg,
            );
            wall_s = wall_s.min(t.elapsed().as_secs_f64());
            last = Some(out);
        }
        let out = last.expect("repeat >= 1");
        let identical =
            serde_json::to_string(&out.chains).expect("chains serialize") == reference_json;
        let work = out.memo_hits + out.expansions;
        variants.push(VariantResult {
            threads,
            tc_memo,
            wall_s,
            expansions: out.expansions,
            memo_hits: out.memo_hits,
            memo_hit_rate: if work == 0 {
                0.0
            } else {
                out.memo_hits as f64 / work as f64
            },
            ns_per_expansion: ns_per(wall_s, out.expansions),
            identical,
            speedup_vs_sequential: sequential_wall_s / wall_s.max(f64::EPSILON),
        });
    }

    let wall_of = |threads: usize| {
        variants
            .iter()
            .find(|v| v.threads == threads && !v.tc_memo)
            .map_or(f64::EPSILON, |v| v.wall_s)
    };
    let all_identical = variants.iter().all(|v| v.identical);
    SceneBench {
        scene: scene.component.name.clone(),
        classes: program.classes().len(),
        chains: reference.chains.len(),
        sequential_wall_s,
        sequential_expansions: reference.expansions,
        sequential_ns_per_expansion: ns_per(sequential_wall_s, reference.expansions),
        variants,
        speedup_8v1_no_memo: wall_of(1) / wall_of(8).max(f64::EPSILON),
        all_identical,
    }
}

/// Runs the whole battery per `config`.
pub fn run_search_bench(config: &SearchBenchConfig) -> SearchBenchReport {
    let scenes = if config.smoke {
        tabby_workloads::scenes::smoke()
    } else {
        tabby_workloads::scenes::all()
    };
    let keep = |name: &str| {
        config.only.is_empty()
            || config
                .only
                .iter()
                .any(|f| name.to_lowercase().contains(&f.to_lowercase()))
    };
    let results: Vec<SceneBench> = scenes
        .iter()
        .filter(|s| keep(&s.component.name))
        .map(|s| bench_scene(s, config.repeat))
        .collect();
    let all_identical = results.iter().all(|r| r.all_identical);
    SearchBenchReport {
        scenes: if config.smoke { "smoke" } else { "full" }.to_owned(),
        repeat: config.repeat,
        results,
        all_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_is_identical_across_engines() {
        let report = run_search_bench(&SearchBenchConfig {
            smoke: true,
            only: vec!["Jetty".to_owned()],
            repeat: 1,
        });
        assert_eq!(report.results.len(), 1);
        let scene = &report.results[0];
        assert_eq!(scene.scene, "Jetty");
        assert_eq!(scene.variants.len(), VARIANTS.len());
        assert!(scene.all_identical, "{scene:?}");
        // The memo fires on the scene's search web.
        assert!(scene.variants.iter().any(|v| v.tc_memo && v.memo_hits > 0));
        // Memo-off runs do exactly the reference engine's work, so the
        // per-expansion costs are directly comparable.
        for v in scene
            .variants
            .iter()
            .filter(|v| !v.tc_memo && v.threads == 1)
        {
            assert_eq!(v.expansions, scene.sequential_expansions);
            assert!(v.ns_per_expansion > 0.0);
        }
        assert!(scene.sequential_ns_per_expansion > 0.0);
    }

    #[test]
    fn only_filter_is_case_insensitive_substring() {
        let report = run_search_bench(&SearchBenchConfig {
            smoke: true,
            only: vec!["dubbo".to_owned()],
            repeat: 1,
        });
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].scene, "Apache Dubbo");
    }
}
