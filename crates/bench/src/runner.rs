//! Detector runners: apply each tool to a component and score it against
//! ground truth, the way §IV-C scores the three tools.

use std::time::Instant;
use tabby_baselines::{GadgetInspector, Serianalyzer};
use tabby_core::{AnalysisConfig, Cpg};
use tabby_pathfinder::{find_gadget_chains, GadgetChain, SearchConfig, SinkCatalog, SourceCatalog};
use tabby_workloads::{Component, EvalCounts};

/// The outcome of one (tool, component) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Scored counters (Formulas 5–6 inputs).
    pub counts: EvalCounts,
    /// The chains the tool reported, after the component filter.
    pub chains: Vec<GadgetChain>,
    /// Wall-clock seconds (CPG/graph build + search).
    pub seconds: f64,
    /// Whether the tool exhausted its work budget (the paper's `X`).
    pub timed_out: bool,
}

/// Runs Tabby end-to-end on a component: CPG build → sink/source
/// annotation → backward search → component filter → scoring.
pub fn run_tabby(component: &Component) -> CellResult {
    run_tabby_with(
        component,
        AnalysisConfig::default(),
        SearchConfig::default(),
    )
}

/// Runs Tabby with explicit configurations (used by the ablation bench).
pub fn run_tabby_with(
    component: &Component,
    analysis: AnalysisConfig,
    search: SearchConfig,
) -> CellResult {
    let start = Instant::now();
    let mut cpg = Cpg::build(&component.program, analysis);
    let chains = find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &search,
    );
    let chains = component.filter_chains(chains);
    let seconds = start.elapsed().as_secs_f64();
    let counts = component.truth.evaluate(&chains);
    CellResult {
        counts,
        chains,
        seconds,
        timed_out: false,
    }
}

/// Runs the GadgetInspector baseline.
pub fn run_gadget_inspector(component: &Component) -> CellResult {
    let start = Instant::now();
    let gi = GadgetInspector::default();
    let outcome = gi.run(&component.program);
    let chains = component.filter_chains(outcome.chains);
    let seconds = start.elapsed().as_secs_f64();
    let counts = component.truth.evaluate(&chains);
    CellResult {
        counts,
        chains,
        seconds,
        timed_out: outcome.timed_out,
    }
}

/// Runs the Serianalyzer baseline.
pub fn run_serianalyzer(component: &Component) -> CellResult {
    let start = Instant::now();
    let sl = Serianalyzer::default();
    let outcome = sl.run(&component.program);
    let chains = component.filter_chains(outcome.chains);
    let seconds = start.elapsed().as_secs_f64();
    let counts = component.truth.evaluate(&chains);
    CellResult {
        counts,
        chains,
        seconds,
        timed_out: outcome.timed_out,
    }
}

/// The outcome of one Table X scene run.
#[derive(Debug, Clone)]
pub struct SceneResult {
    /// Chains reported (after the scene's package filter).
    pub chains: Vec<GadgetChain>,
    /// "Result count".
    pub result: usize,
    /// "effective gadget chains" — judged by the PoC oracle.
    pub effective: usize,
    /// Search wall-clock seconds.
    pub search_s: f64,
    /// CPG build wall-clock seconds.
    pub build_s: f64,
}

impl SceneResult {
    /// The scene FPR: `(result − effective) / result × 100`.
    pub fn fpr(&self) -> f64 {
        if self.result == 0 {
            0.0
        } else {
            (self.result - self.effective) as f64 / self.result as f64 * 100.0
        }
    }
}

/// Runs Tabby on a Table X scene, scoring effectiveness with the oracle
/// (several effective routes share a (source, sink) pair, so manifests
/// cannot score scenes).
pub fn run_scene(scene: &tabby_workloads::scenes::Scene) -> SceneResult {
    let component = &scene.component;
    let build_start = Instant::now();
    let mut cpg = Cpg::build(&component.program, AnalysisConfig::default());
    let build_s = build_start.elapsed().as_secs_f64();
    let search_start = Instant::now();
    let chains = find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    );
    let chains = component.filter_chains(chains);
    let search_s = search_start.elapsed().as_secs_f64();
    let effective = chains
        .iter()
        .filter(|c| tabby_workloads::oracle::chain_is_effective(&component.program, &cpg, c))
        .count();
    SceneResult {
        result: chains.len(),
        effective,
        search_s,
        build_s,
        chains,
    }
}
