//! The differential-scanning benchmark: on each Sleeping-Giants activation
//! scene, compare answering "did the version bump activate a chain?" via
//! `tabby diff` (two registered snapshots, no re-scan) against the cold
//! full scan of v2 it replaces.
//!
//! Registration itself costs one scan per version — the point of the
//! registry is that every *subsequent* differential question (CI gating an
//! upgrade, the daemon's watch mode re-checking a corpus) is answered from
//! the snapshots alone. The report therefore times three things per scene:
//! the one-time snapshot cost of each version, the pure diff (load both
//! snapshots from disk, compute activations and near-chains), and the cold
//! scan baseline. Wall times are the minimum over `repeat` runs.
//!
//! Correctness is asserted alongside timing: the diff must report exactly
//! the scene's planted chain (zero false activations) and surface the
//! permanently dormant twin as a near-chain — a wrong answer makes the
//! timing meaningless.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;
use tabby_core::{AnalysisConfig, Cpg, ScanDiagnostics};
use tabby_ir::compile::compile_program;
use tabby_pathfinder::{
    find_gadget_chains, NearChainConfig, SearchConfig, SinkCatalog, SourceCatalog,
};
use tabby_registry::{diff_snapshots, hash_inputs, DiffReport, Registry, Snapshot};
use tabby_workloads::{activation_scenes, activation_scenes_smoke, ActivationScene, Component};

/// What to measure.
#[derive(Debug, Clone)]
pub struct DiffBenchConfig {
    /// Use the smoke-sized activation scenes (CI) instead of full size.
    pub smoke: bool,
    /// Restrict to these scene names (empty = all).
    pub only: Vec<String>,
    /// Timed runs per measurement; the minimum wall time is reported.
    pub repeat: usize,
}

impl Default for DiffBenchConfig {
    fn default() -> Self {
        DiffBenchConfig {
            smoke: false,
            only: Vec::new(),
            repeat: 3,
        }
    }
}

/// One scene's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneDiffBench {
    /// Scene name (also the registry corpus name).
    pub scene: String,
    /// Classes per version.
    pub classes: usize,
    /// Cold full scan of v2 (CPG build + annotate + search), seconds.
    pub cold_scan_v2_wall_s: f64,
    /// One-time cost of scanning + registering v1, seconds.
    pub snapshot_v1_wall_s: f64,
    /// One-time cost of scanning + registering v2, seconds.
    pub snapshot_v2_wall_s: f64,
    /// The differential question itself: load both snapshots from disk and
    /// diff them (activations + near-chains), seconds.
    pub diff_wall_s: f64,
    /// `cold_scan_v2_wall_s / diff_wall_s`.
    pub speedup_diff_vs_cold: f64,
    /// Newly activated chains the diff reported.
    pub activated: usize,
    /// Near-chains the diff reported.
    pub near_chains: usize,
    /// The diff reported exactly the planted chain and the dormant twin.
    pub correct: bool,
    /// The diff beat the cold scan.
    pub diff_faster_than_cold: bool,
}

/// The full report, serialized to `BENCH_diff.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffBenchReport {
    /// `"smoke"` or `"full"`.
    pub scenes: String,
    /// Timed runs per measurement.
    pub repeat: usize,
    /// Per-scene measurements.
    pub results: Vec<SceneDiffBench>,
    /// Every scene's diff reported exactly its planted activation.
    pub all_correct: bool,
    /// Every scene's diff beat its cold v2 scan.
    pub all_faster: bool,
}

fn scan_component(
    component: &Component,
    search: &SearchConfig,
) -> (Cpg, Vec<tabby_pathfinder::GadgetChain>) {
    let mut cpg = Cpg::build(&component.program, AnalysisConfig::default());
    let chains = find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        search,
    );
    (cpg, chains)
}

fn snapshot_component(
    scene: &ActivationScene,
    component: &Component,
    version: u32,
    search: &SearchConfig,
) -> Snapshot {
    let classes = compile_program(&component.program);
    let class_hashes = hash_inputs(
        classes
            .iter()
            .map(|(name, bytes)| (name.as_str(), bytes.as_slice())),
    );
    let (mut cpg, chains) = scan_component(component, search);
    Snapshot::from_cpg(
        &scene.name,
        version,
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &chains,
        &ScanDiagnostics::default(),
        class_hashes,
        search.max_depth,
    )
    .expect("activation scenes scan cleanly")
}

fn diff_is_correct(scene: &ActivationScene, report: &DiffReport) -> bool {
    let (source, sink) = &scene.activated;
    report.activated.len() == 1
        && report.activated[0].chain.source() == *source
        && report.activated[0].chain.sink() == *sink
        && report.near_chains.iter().any(|n| {
            n.signatures
                .first()
                .is_some_and(|s| *s == scene.dormant_source)
        })
}

/// Benchmarks one activation scene inside `registry_root`.
pub fn bench_diff_scene(
    scene: &ActivationScene,
    registry_root: &std::path::Path,
    repeat: usize,
) -> SceneDiffBench {
    let repeat = repeat.max(1);
    let search = SearchConfig::default();
    let classes = compile_program(&scene.v1.program).len();

    // One-time registration of both versions (timed once each — this is
    // amortized over every later diff, but reported honestly). Versions
    // are minted through the atomic `save_next` path, so the bench times
    // the same durable (fsync'd, envelope-wrapped) write the daemon pays.
    let registry = Registry::open(registry_root).expect("registry opens");
    let t = Instant::now();
    let mut v1 = snapshot_component(scene, &scene.v1, 1, &search);
    registry.save_next(&mut v1).expect("register v1");
    let snapshot_v1_wall_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut v2 = snapshot_component(scene, &scene.v2, 2, &search);
    registry.save_next(&mut v2).expect("register v2");
    let snapshot_v2_wall_s = t.elapsed().as_secs_f64();
    assert_eq!((v1.version, v2.version), (1, 2), "fresh corpus mints 1, 2");
    drop((v1, v2));

    // The baseline: a cold full scan of v2, as a non-differential pipeline
    // would run on every upgrade check.
    let mut cold_scan_v2_wall_s = f64::INFINITY;
    for _ in 0..repeat {
        let t = Instant::now();
        let (_cpg, chains) = scan_component(&scene.v2, &search);
        std::hint::black_box(chains);
        cold_scan_v2_wall_s = cold_scan_v2_wall_s.min(t.elapsed().as_secs_f64());
    }

    // The differential path: load both snapshots from disk, diff.
    let near = NearChainConfig {
        max_depth: search.max_depth,
        ..NearChainConfig::default()
    };
    let mut diff_wall_s = f64::INFINITY;
    let mut last: Option<DiffReport> = None;
    for _ in 0..repeat {
        let t = Instant::now();
        let old = registry.load(&scene.name, 1).expect("load v1");
        let new = registry.load(&scene.name, 2).expect("load v2");
        let report = diff_snapshots(&old, &new, &near);
        diff_wall_s = diff_wall_s.min(t.elapsed().as_secs_f64());
        last = Some(report);
    }
    let report = last.expect("repeat >= 1");

    let correct = diff_is_correct(scene, &report);
    SceneDiffBench {
        scene: scene.name.clone(),
        classes,
        cold_scan_v2_wall_s,
        snapshot_v1_wall_s,
        snapshot_v2_wall_s,
        diff_wall_s,
        speedup_diff_vs_cold: cold_scan_v2_wall_s / diff_wall_s.max(1e-9),
        activated: report.activated.len(),
        near_chains: report.near_chains.len(),
        correct,
        diff_faster_than_cold: diff_wall_s < cold_scan_v2_wall_s,
    }
}

/// Runs the configured scenes in a temporary registry and assembles the
/// report.
pub fn run_diff_bench(config: &DiffBenchConfig) -> DiffBenchReport {
    let scenes = if config.smoke {
        activation_scenes_smoke()
    } else {
        activation_scenes()
    };
    let root: PathBuf =
        std::env::temp_dir().join(format!("tabby-bench-diff-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut results = Vec::new();
    for scene in &scenes {
        if !config.only.is_empty() && !config.only.iter().any(|n| n == &scene.name) {
            continue;
        }
        results.push(bench_diff_scene(scene, &root, config.repeat));
    }
    let _ = std::fs::remove_dir_all(&root);
    DiffBenchReport {
        scenes: if config.smoke { "smoke" } else { "full" }.to_owned(),
        repeat: config.repeat,
        all_correct: results.iter().all(|r| r.correct),
        all_faster: results.iter().all(|r| r.diff_faster_than_cold),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenes_diff_correctly_and_beat_the_cold_scan() {
        let config = DiffBenchConfig {
            smoke: true,
            only: vec!["PivotExec".to_owned()],
            repeat: 1,
        };
        let report = run_diff_bench(&config);
        assert_eq!(report.results.len(), 1);
        let scene = &report.results[0];
        assert!(scene.correct, "diff misreported the activation: {scene:?}");
        assert_eq!(scene.activated, 1);
        assert!(scene.near_chains >= 1);
        assert!(
            scene.diff_faster_than_cold,
            "diff {}s vs cold scan {}s",
            scene.diff_wall_s, scene.cold_scan_v2_wall_s
        );
    }
}
