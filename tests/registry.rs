//! Registry round-trips: snapshots survive the disk, versions are
//! immutable, degraded scans are refused at snapshot time, and re-diffing
//! a reloaded snapshot against its in-memory original is a no-op.

use std::collections::BTreeMap;
use std::path::PathBuf;
use tabby::ir::compile::compile_program;
use tabby::pathfinder::NearChainConfig;
use tabby::registry::{diff_snapshots, hash_inputs, parse_corpus_ref, Registry, Snapshot};
use tabby::workloads::activation_scenes_smoke;
use tabby::{scan, snapshot_scan, ScanOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tabby-registry-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Scans one component of the first smoke activation scene and wraps it
/// into a snapshot.
fn scene_snapshot(corpus: &str, version: u32, v2: bool) -> Snapshot {
    let scenes = activation_scenes_smoke();
    let scene = &scenes[0];
    let component = if v2 { &scene.v2 } else { &scene.v1 };
    let classes = compile_program(&component.program);
    let class_hashes = hash_inputs(
        classes
            .iter()
            .map(|(name, bytes)| (name.as_str(), bytes.as_slice())),
    );
    let options = ScanOptions::default();
    let mut report = scan(&component.program, &options);
    snapshot_scan(corpus, version, &mut report, &options, class_hashes).expect("clean snapshot")
}

#[test]
fn snapshot_reload_rediff_is_a_no_op() {
    let root = temp_dir("round-trip");
    let registry = Registry::open(&root).unwrap();
    let v1 = scene_snapshot("rt", 1, false);
    let v2 = scene_snapshot("rt", 2, true);
    registry.save(&v1).unwrap();
    registry.save(&v2).unwrap();

    // Reload both and re-diff: the report must serialize byte-identically
    // to the in-memory diff — persistence loses nothing the diff reads.
    let near = NearChainConfig::default();
    let want = serde_json::to_string(&diff_snapshots(&v1, &v2, &near)).unwrap();
    let r1 = registry.load("rt", 1).unwrap();
    let r2 = registry.load("rt", 2).unwrap();
    let got = serde_json::to_string(&diff_snapshots(&r1, &r2, &near)).unwrap();
    assert_eq!(got, want, "reload changed the diff");

    // A version diffed against itself is clean and changeless.
    let self_diff = diff_snapshots(&r2, &r2, &near);
    assert!(self_diff.identical);
    assert!(self_diff.is_clean());
    assert!(self_diff.added_edges.is_empty());
    assert!(self_diff.activated.is_empty());

    // Versions list ascending; latest resolves.
    assert_eq!(registry.latest_version("rt"), Some(2));
    assert_eq!(registry.latest_version("missing"), None);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn registered_versions_are_immutable() {
    let root = temp_dir("immutable");
    let registry = Registry::open(&root).unwrap();
    let v1 = scene_snapshot("frozen", 1, false);
    registry.save(&v1).unwrap();
    let err = registry.save(&v1).unwrap_err();
    assert!(
        err.contains("frozen@v1"),
        "immutability error must name the version: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn degraded_scans_are_refused_at_snapshot_time() {
    let scenes = activation_scenes_smoke();
    let component = &scenes[0].v1;
    let options = ScanOptions::default();
    let mut report = scan(&component.program, &options);
    // Simulate a quarantined class: the scan survived, but its chain set
    // is not trustworthy enough to diff against.
    report
        .diagnostics
        .skipped_classes
        .push(tabby::core::SkippedClass {
            source: "blob[0]".to_owned(),
            class_name: Some("bad.Class".to_owned()),
            byte_hash: 0,
            error: "truncated constant pool".to_owned(),
        });
    let err = snapshot_scan("deg", 1, &mut report, &options, BTreeMap::new()).unwrap_err();
    assert!(
        err.contains("degraded") || err.contains("skipped"),
        "rejection must say why: {err}"
    );
}

#[test]
fn corpus_refs_parse_and_reject_clearly() {
    let bare = parse_corpus_ref("demo").unwrap();
    assert_eq!(bare.corpus, "demo");
    assert_eq!(bare.version, None);

    let pinned = parse_corpus_ref("demo@v12").unwrap();
    assert_eq!(pinned.corpus, "demo");
    assert_eq!(pinned.version, Some(12));

    for bad in ["", "@v1", "demo@", "demo@v", "demo@vx", "demo@1@v2"] {
        assert!(parse_corpus_ref(bad).is_err(), "{bad:?} must be rejected");
    }
}
