//! Black-box `tabby snapshot` / `tabby diff` exit-code contract, the one
//! CI pipelines gate library upgrades on:
//!
//! - `diff` exits 0 when no chain newly activates,
//! - 2 when one does,
//! - 1 on errors (unknown versions, malformed references),
//! - and `snapshot` refuses degraded corpora with exit 1.

use std::path::{Path, PathBuf};
use std::process::Command;
use tabby::ir::compile::compile_program;
use tabby::workloads::activation_scenes_smoke;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tabby-diff-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_classes(dir: &Path, program: &tabby::ir::Program) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let _ = std::fs::remove_file(entry.unwrap().path());
    }
    for (name, bytes) in compile_program(program) {
        let file = dir.join(format!("{}.class", name.replace('.', "_")));
        std::fs::write(file, bytes).unwrap();
    }
}

fn tabby(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(args)
        .output()
        .expect("run tabby")
}

#[test]
fn snapshot_then_diff_gates_on_the_planted_activation() {
    let corpus_dir = temp_dir("corpus");
    let registry = temp_dir("registry");
    let scenes = activation_scenes_smoke();
    let scene = &scenes[0];
    let reg = registry.to_str().unwrap();
    let dir = corpus_dir.to_str().unwrap();

    // Register both versions.
    write_classes(&corpus_dir, &scene.v1.program);
    let out = tabby(&["snapshot", "--as", "smoke", "--registry", reg, dir]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "snapshot v1: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    write_classes(&corpus_dir, &scene.v2.program);
    let out = tabby(&["snapshot", "--as", "smoke", "--registry", reg, dir]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "snapshot v2: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Upgrade direction: exactly the planted chain activates → exit 2.
    let out = tabby(&["diff", "--registry", reg, "smoke@v1", "smoke@v2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "stdout: {stdout}");
    let (source, sink) = &scene.activated;
    assert!(stdout.contains(source.as_str()), "stdout: {stdout}");
    assert!(stdout.contains(sink.as_str()), "stdout: {stdout}");
    // The near-chain section names the blocking TC position.
    assert!(stdout.contains("near-chain"), "stdout: {stdout}");
    assert!(stdout.contains("TC position"), "stdout: {stdout}");

    // Self-diff and downgrade direction are clean → exit 0.
    let out = tabby(&["diff", "--registry", reg, "smoke@v2", "smoke@v2"]);
    assert_eq!(out.status.code(), Some(0));
    let out = tabby(&["diff", "--registry", reg, "smoke@v2", "smoke@v1"]);
    assert_eq!(out.status.code(), Some(0));

    // Bare references resolve to the latest version (v2 here).
    let out = tabby(&["diff", "--registry", reg, "smoke@v1", "smoke"]);
    assert_eq!(out.status.code(), Some(2));

    // Errors → exit 1 with a reason.
    let out = tabby(&["diff", "--registry", reg, "smoke@v1", "smoke@v9"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!out.stderr.is_empty());
    let out = tabby(&["diff", "--registry", reg, "smoke@v1", "smoke@bogus"]);
    assert_eq!(out.status.code(), Some(1));
    let out = tabby(&["diff", "--registry", reg, "smoke@v1"]);
    assert_eq!(out.status.code(), Some(1), "one reference is an error");

    // JSON output parses and carries the activation.
    let out = tabby(&["diff", "--json", "--registry", reg, "smoke@v1", "smoke@v2"]);
    assert_eq!(out.status.code(), Some(2));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("diff JSON parses");
    assert_eq!(
        report["activated"].as_array().map(Vec::len),
        Some(1),
        "{report}"
    );

    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&registry);
}

#[test]
fn snapshot_refuses_a_degraded_corpus() {
    let corpus_dir = temp_dir("degraded");
    let registry = temp_dir("degraded-reg");
    let scenes = activation_scenes_smoke();
    write_classes(&corpus_dir, &scenes[0].v1.program);
    // One malformed class degrades the scan; the snapshot must refuse it
    // rather than persist a partial chain set that later diffs would
    // misread as activations.
    std::fs::write(corpus_dir.join("junk.class"), b"\xCA\xFE\xBA\xBEnope").unwrap();
    let out = tabby(&[
        "snapshot",
        "--as",
        "deg",
        "--registry",
        registry.to_str().unwrap(),
        corpus_dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "stderr: {stderr}");
    // Nothing was registered.
    let reopened = tabby(&[
        "diff",
        "--registry",
        registry.to_str().unwrap(),
        "deg@v1",
        "deg@v1",
    ]);
    assert_eq!(reopened.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&registry);
}
