//! Query smoke tests: every built-in named query must answer identically
//! through the one-shot CLI (`tabby query -e`) and the daemon round-trip
//! (`"cmd": "query"` against the cached CPG), and budgeted queries must
//! truncate instead of hanging.
//!
//! Rows are compared as sorted JSON strings: node numbering (and hence row
//! order) legitimately differs between the two paths, the projected cells
//! must not.

use std::path::{Path, PathBuf};
use std::process::Command;
use tabby::ir::compile::compile_program;
use tabby::ir::ProgramBuilder;
use tabby::query::builtins::{Builtin, BUILTINS};
use tabby::service::{self, Daemon, QueryRequestOptions, ServiceConfig};
use tabby::workloads::jdk::add_jdk_model;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tabby-query-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_jdk_corpus(dir: &Path) {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    for (name, bytes) in compile_program(&program) {
        let file = dir.join(format!("{}.class", name.replace('.', "_")));
        std::fs::write(file, bytes).unwrap();
    }
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServiceConfig::default()
    }
}

/// A fixed argument per builtin parameter; `readObject` exists in the JDK
/// model, so arg-taking builtins exercise non-empty matches too.
fn smoke_args(builtin: &Builtin) -> Vec<String> {
    builtin
        .args
        .iter()
        .map(|_| "readObject".to_owned())
        .collect()
}

/// Runs `tabby query -e <text>` over `dir` and returns its stdout rows,
/// sorted.
fn cli_rows(dir: &Path, text: &str) -> Vec<String> {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["query", "-e", text, dir.to_str().unwrap()])
        .output()
        .expect("run tabby query");
    assert_eq!(
        output.status.code(),
        Some(0),
        "query {text:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let mut rows: Vec<String> = String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|line| {
            let row: serde_json::Value = serde_json::from_str(line).expect("stdout row is JSON");
            assert!(row.is_array(), "row line is not a JSON array: {line}");
            row.to_string()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn every_builtin_agrees_between_cli_and_daemon() {
    let dir = temp_dir("builtins");
    write_jdk_corpus(&dir);
    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];

    for builtin in BUILTINS {
        let text = builtin.instantiate(&smoke_args(builtin)).unwrap();
        let one_shot = cli_rows(&dir, &text);
        let reply =
            service::query(&addr, paths.clone(), &text, &QueryRequestOptions::default()).unwrap();
        assert!(
            reply.header.ok,
            "builtin {} failed in the daemon: {:?}",
            builtin.name, reply.header.error
        );
        assert!(!reply.truncated, "builtin {} truncated", builtin.name);
        let mut daemon: Vec<String> = reply
            .rows
            .iter()
            .map(|row| serde_json::Value::Array(row.clone()).to_string())
            .collect();
        daemon.sort();
        assert_eq!(
            one_shot, daemon,
            "builtin {} diverged between `tabby query` and the daemon",
            builtin.name
        );
    }

    // The model is annotated the same way a scan would be, so the paper's
    // tagging builtins must actually match something.
    let sinks = cli_rows(&dir, &BUILTINS[0].instantiate(&[]).unwrap());
    assert!(!sinks.is_empty(), "the JDK model contains annotated sinks");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_expansion_budget_truncates_instead_of_hanging() {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let cpg = tabby::core::Cpg::build(&pb.build(), tabby::core::AnalysisConfig::default());

    let cfg = tabby::query::ExecConfig {
        max_rows: 10_000,
        max_expansions: 5,
        timeout: None,
    };
    let out = tabby::query::run_query(
        &cpg.graph,
        "MATCH (a:Method)-[:CALL*1..8]->(b:Method) RETURN a.NAME, b.NAME",
        &cfg,
    )
    .unwrap();
    assert!(out.truncated, "a 5-expansion budget must truncate");
    assert!(out.expansions <= 5, "the budget is a cap, not a hint");
}

#[test]
fn daemon_honors_query_budgets_end_to_end() {
    let dir = temp_dir("budget");
    write_jdk_corpus(&dir);
    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];

    let reply = service::query(
        &addr,
        paths,
        "MATCH (a:Method)-[:CALL*1..8]->(b:Method) RETURN a.NAME, b.NAME",
        &QueryRequestOptions {
            max_expansions: 5,
            ..QueryRequestOptions::default()
        },
    )
    .unwrap();
    assert!(
        reply.header.ok,
        "budgeted query failed: {:?}",
        reply.header.error
    );
    assert!(reply.truncated, "the trailer must surface the truncation");
    assert!(reply.expansions <= 5, "the budget is a cap, not a hint");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
