//! The Sleeping-Giants activation gate: on every activation scene,
//! `diff(v1, v2)` must report **exactly** the planted chain (zero false
//! activations, zero misses) and surface the permanently dormant twin as
//! a near-chain with its blocking Trigger_Condition position named.

use tabby::ir::compile::compile_program;
use tabby::pathfinder::NearChainConfig;
use tabby::registry::{diff_snapshots, hash_inputs, Snapshot};
use tabby::workloads::{activation_scenes_smoke, ActivationScene, Component};
use tabby::{scan, snapshot_scan, ScanOptions};

fn snapshot_of(scene: &ActivationScene, component: &Component, version: u32) -> Snapshot {
    let classes = compile_program(&component.program);
    let class_hashes = hash_inputs(
        classes
            .iter()
            .map(|(name, bytes)| (name.as_str(), bytes.as_slice())),
    );
    let options = ScanOptions::default();
    let mut report = scan(&component.program, &options);
    snapshot_scan(&scene.name, version, &mut report, &options, class_hashes)
        .expect("activation scenes scan cleanly")
}

#[test]
fn every_scene_diffs_to_exactly_the_planted_activation() {
    for scene in activation_scenes_smoke() {
        let v1 = snapshot_of(&scene, &scene.v1, 1);
        let v2 = snapshot_of(&scene, &scene.v2, 2);
        let report = diff_snapshots(&v1, &v2, &NearChainConfig::default());

        assert!(!report.identical, "{}: versions differ", scene.name);
        assert!(!report.is_clean(), "{}: the bump must activate", scene.name);

        // FPR gate: exactly one activation, and it is the planted chain.
        let (source, sink) = &scene.activated;
        assert_eq!(
            report.activated.len(),
            1,
            "{}: false activation(s): {:?}",
            scene.name,
            report.activated
        );
        let activated = &report.activated[0];
        assert_eq!(activated.chain.source(), *source, "{}", scene.name);
        assert_eq!(activated.chain.sink(), *sink, "{}", scene.name);
        // The activation is attributed to the change that completed it.
        assert!(
            !activated.completing_edges.is_empty(),
            "{}: activation without edge attribution",
            scene.name
        );
        assert!(
            report.resolved.is_empty(),
            "{}: nothing should deactivate: {:?}",
            scene.name,
            report.resolved
        );
        // The changed method belongs to the scene's own package.
        assert!(
            report
                .changed_methods
                .iter()
                .any(|m| m.starts_with(&scene.pkg)),
            "{}: changed methods {:?} outside {}",
            scene.name,
            report.changed_methods,
            scene.pkg
        );

        // FNR gate on the near-chain side: the dormant twin surfaces as a
        // near-chain rooted at its source, with the blocking TC position.
        let twin: Vec<_> = report
            .near_chains
            .iter()
            .filter(|n| {
                n.signatures
                    .first()
                    .is_some_and(|s| *s == scene.dormant_source)
            })
            .collect();
        assert!(
            !twin.is_empty(),
            "{}: dormant twin missing from near-chains: {:?}",
            scene.name,
            report.near_chains
        );
        for near in twin {
            assert!(
                !near.blocked.caller.is_empty() && !near.blocked.callee.is_empty(),
                "{}: near-chain must name the blocked edge",
                scene.name
            );
            let rendered = near.to_string();
            assert!(
                rendered.contains("TC position"),
                "{}: blocking Trigger_Condition position must be named: {rendered}",
                scene.name
            );
        }
    }
}

#[test]
fn reversing_the_diff_reports_the_chain_as_resolved() {
    let scenes = activation_scenes_smoke();
    let scene = &scenes[0];
    let v1 = snapshot_of(scene, &scene.v1, 1);
    let v2 = snapshot_of(scene, &scene.v2, 2);
    // Downgrade direction: the chain present in v2 disappears in v1.
    let report = diff_snapshots(&v2, &v1, &NearChainConfig::default());
    assert!(report.activated.is_empty(), "{:?}", report.activated);
    assert!(report.is_clean(), "a downgrade activates nothing");
    let (source, sink) = &scene.activated;
    assert!(
        report
            .resolved
            .iter()
            .any(|c| c.source() == *source && c.sink() == *sink),
        "the planted chain must show up as resolved: {:?}",
        report.resolved
    );
}
