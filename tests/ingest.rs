//! End-to-end archive ingestion: generated jar and war corpora must scan
//! byte-identically to their unpacked reference trees, through the CLI
//! binary and through the daemon engine with every cache tier live, and
//! the streaming lift must stay inside its batch budget.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};
use tabby::ingest::{generate, CorpusLayout, CorpusSpec, IngestLimits};
use tabby::service::{Engine, ScanRequestOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tabby-ingest-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn scan_json(path: &Path, extra: &[&str]) -> (Option<i32>, String, String) {
    let mut args = vec!["scan", "--json"];
    args.extend_from_slice(extra);
    args.push(path.to_str().unwrap());
    let out = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(&args)
        .output()
        .expect("run tabby scan --json");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn far_deadline() -> Instant {
    Instant::now() + Duration::from_secs(300)
}

#[test]
fn nested_jar_scans_byte_identically_to_its_tree_via_cli() {
    let dir = temp_dir("cli-nested");
    let corpus = generate(
        &dir,
        &CorpusSpec {
            classes: 120,
            chunk: 48,
            layout: CorpusLayout::NestedJar,
        },
    )
    .unwrap();
    let (jar_code, jar_chains, jar_log) = scan_json(&corpus.archive, &[]);
    let (tree_code, tree_chains, _) = scan_json(&corpus.tree, &[]);
    // The planted Fig.-1 gadget pair is found either way: exit 2.
    assert_eq!(jar_code, Some(2), "stderr: {jar_log}");
    assert_eq!(tree_code, Some(2));
    assert_eq!(
        jar_chains, tree_chains,
        "archive and tree scans must emit byte-identical chains"
    );
    // The archive path reports its streaming stats.
    assert!(jar_log.contains("ingest:"), "stderr: {jar_log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn war_scans_byte_identically_to_its_tree_via_cli() {
    let dir = temp_dir("cli-war");
    let corpus = generate(
        &dir,
        &CorpusSpec {
            classes: 60,
            chunk: 25,
            layout: CorpusLayout::War,
        },
    )
    .unwrap();
    assert!(corpus.archive.ends_with("corpus.war"));
    let (war_code, war_chains, war_log) = scan_json(&corpus.archive, &[]);
    let (tree_code, tree_chains, _) = scan_json(&corpus.tree, &[]);
    assert_eq!(war_code, Some(2), "stderr: {war_log}");
    assert_eq!(war_code, tree_code);
    assert_eq!(war_chains, tree_chains);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_loose_and_archive_inputs_scan_together() {
    let dir = temp_dir("cli-mixed");
    let corpus = generate(
        &dir,
        &CorpusSpec {
            classes: 20,
            chunk: 10,
            layout: CorpusLayout::NestedJar,
        },
    )
    .unwrap();
    // Naming the tree AND the jar feeds every class twice; JVM-style
    // first-wins dedup keeps the loose copies, shadows the archive
    // copies, and the chain output is identical to scanning either alone.
    let out = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args([
            "scan",
            "--json",
            corpus.tree.to_str().unwrap(),
            corpus.archive.to_str().unwrap(),
        ])
        .output()
        .expect("run tabby scan over tree + jar");
    assert_eq!(out.status.code(), Some(2));
    let (tree_code, tree_chains, _) = scan_json(&corpus.tree, &[]);
    assert_eq!(tree_code, Some(2));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        tree_chains,
        "duplicates must shadow, not duplicate chains"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_serves_archives_through_every_cache_tier() {
    let dir = temp_dir("daemon-tiers");
    let corpus = generate(
        &dir,
        &CorpusSpec {
            classes: 80,
            chunk: 32,
            layout: CorpusLayout::NestedJar,
        },
    )
    .unwrap();
    let cache = temp_dir("daemon-tiers-cache");
    let engine = Engine::new(Some(cache.clone()), 64, 1);
    let jar = [corpus.archive.to_string_lossy().into_owned()];
    let tree = [corpus.tree.to_string_lossy().into_owned()];

    // Cold scan of the jar: full pipeline, chains found.
    let cold = engine
        .run_scan(&jar, &ScanRequestOptions::default(), far_deadline())
        .expect("cold jar scan");
    assert!(!cold.chains.is_empty(), "planted gadget pair found");
    assert!(!cold.stats.job_cache_hit);
    assert!(!cold.diagnostics.is_degraded());

    // The unpacked tree carries the same bytes: content-keyed tier 1 hit
    // with byte-identical chains — the cache cannot tell packaging apart.
    let from_tree = engine
        .run_scan(&tree, &ScanRequestOptions::default(), far_deadline())
        .expect("tree scan");
    assert!(
        from_tree.stats.job_cache_hit,
        "same bytes, same content key"
    );
    assert_eq!(
        serde_json::to_string(&from_tree.chains).unwrap(),
        serde_json::to_string(&cold.chains).unwrap()
    );

    // Warm jar rescan: tier 1 again.
    let warm = engine
        .run_scan(&jar, &ScanRequestOptions::default(), far_deadline())
        .expect("warm jar scan");
    assert!(warm.stats.job_cache_hit);

    // Depth change: tier 1 misses, the CPG tier (in-memory or mapped)
    // serves without re-lifting the archive.
    let deep = engine
        .run_scan(
            &jar,
            &ScanRequestOptions {
                depth: 9,
                ..ScanRequestOptions::default()
            },
            far_deadline(),
        )
        .expect("depth-change scan");
    assert!(!deep.stats.job_cache_hit);
    assert!(
        deep.stats.cpg_cache_hit || deep.stats.cpg_map_hit,
        "depth change must reuse the cached CPG"
    );
    assert_eq!(deep.stats.classes_lifted, 0, "no archive re-lift on a hit");

    // Diff jobs: the registry content key covers archive entries, so the
    // same jar registers once and then short-circuits as identical.
    let reg = temp_dir("daemon-tiers-reg");
    let reg_root = reg.to_string_lossy().into_owned();
    let first = engine
        .run_diff(
            &jar,
            &reg_root,
            "archived",
            &ScanRequestOptions::default(),
            far_deadline(),
        )
        .expect("baseline diff");
    assert!(first.diff.baseline);
    assert_eq!(first.diff.new_ref, "archived@v1");
    let second = engine
        .run_diff(
            &jar,
            &reg_root,
            "archived",
            &ScanRequestOptions::default(),
            far_deadline(),
        )
        .expect("identical diff");
    assert!(second.diff.identical, "unchanged archive short-circuits");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_dir_all(&reg);
}

#[test]
fn streaming_lift_stays_inside_the_batch_budget() {
    let dir = temp_dir("bounded");
    let corpus = generate(
        &dir,
        &CorpusSpec {
            classes: 400,
            chunk: 100,
            layout: CorpusLayout::NestedJar,
        },
    )
    .unwrap();
    let budget = 64u64 << 10;
    let limits = IngestLimits {
        batch_bytes: budget,
        ..IngestLimits::default()
    };
    let inputs = tabby::core::collect_inputs(std::slice::from_ref(&corpus.archive), true).unwrap();
    let lifted = tabby::ingest::lift_corpus(&inputs, &limits, true).unwrap();
    assert_eq!(lifted.program.classes().len(), corpus.classes);
    assert!(
        lifted.stats.batches > 1,
        "a corpus larger than one batch must flush repeatedly: {:?}",
        lifted.stats
    );
    // The flush triggers on crossing the budget, so the peak can overshoot
    // by at most one class blob — a few hundred bytes here.
    assert!(
        lifted.stats.peak_batch_bytes <= budget + (16 << 10),
        "peak {} exceeds budget {budget}",
        lifted.stats.peak_batch_bytes
    );
    assert!(lifted.stats.bytes_inflated > lifted.stats.peak_batch_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
