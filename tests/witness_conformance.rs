//! Interpreter conformance over the gadget-kit component corpus.
//!
//! Every Table IX component is scanned standalone with the witness stage
//! on, and each reported chain's tier is checked against the component's
//! `truth.rs` manifest:
//!
//! - **effective** chains (dataset-known or planted-unknown) must execute
//!   all the way to their sink — tier `witnessed`;
//! - **fake** chains (guarded, sanitized, or otherwise ineffective) must
//!   NOT witness — the hard false-positive gate. `plan-found` is fine (a
//!   plan can exist without executing); `witnessed` is a bug.
//!
//! This is the executable-semantics twin of `ground_truth.rs`: that test
//! checks the *search* found the right chain set; this one checks the
//! *interpreter* agrees with the manifest about which of them actually
//! run.

use tabby::prelude::*;
use tabby::workloads::components;
use tabby::workloads::ChainClass;

/// Components above this size are left to the release-mode bench runner.
const MAX_CLASSES: usize = 100;

#[test]
fn effective_chains_witness_and_fake_chains_never_do() {
    let options = ScanOptions {
        witness: true,
        ..ScanOptions::default()
    };
    let mut checked_effective = 0;
    let mut checked_fake = 0;
    for component in components::all() {
        if component.program.classes().len() > MAX_CLASSES {
            continue;
        }
        let report = tabby::scan(&component.program, &options);
        assert!(
            !report.diagnostics.is_degraded(),
            "{}: degraded scan",
            component.name
        );
        assert_eq!(
            report.diagnostics.witness_failures, 0,
            "{}: interpreter panicked on some chain",
            component.name
        );
        let chains = component.filter_chains(report.chains);
        for chain in &chains {
            let tier = chain.tier.expect("witnessed scans tier every chain");
            match component.truth.classify(chain) {
                ChainClass::Known | ChainClass::Unknown => {
                    checked_effective += 1;
                    assert_eq!(
                        tier,
                        WitnessTier::Witnessed,
                        "{}: effective chain failed to witness: {chain}",
                        component.name
                    );
                }
                ChainClass::Fake => {
                    checked_fake += 1;
                    assert_ne!(
                        tier,
                        WitnessTier::Witnessed,
                        "{}: fake chain witnessed (interpreter false positive): {chain}",
                        component.name
                    );
                }
            }
        }
    }
    assert!(checked_effective > 0, "no effective chains were checked");
    assert!(checked_fake > 0, "no fake chains were checked");
}

/// The witness stage never changes the chain *set* — only annotates it.
/// Scanning with and without the stage must yield signature-identical
/// chains in identical order.
#[test]
fn witnessing_never_adds_or_removes_or_reorders_chains() {
    for component in components::all() {
        if component.program.classes().len() > MAX_CLASSES {
            continue;
        }
        let plain = tabby::scan(&component.program, &ScanOptions::default());
        let tiered = tabby::scan(
            &component.program,
            &ScanOptions {
                witness: true,
                ..ScanOptions::default()
            },
        );
        assert_eq!(
            plain.chains.len(),
            tiered.chains.len(),
            "{}",
            component.name
        );
        for (p, t) in plain.chains.iter().zip(&tiered.chains) {
            assert_eq!(p.signatures, t.signatures, "{}", component.name);
            assert_eq!(p.sink_category, t.sink_category, "{}", component.name);
            assert!(p.tier.is_none(), "{}", component.name);
            assert!(t.tier.is_some(), "{}", component.name);
        }
    }
}

/// Tier counters in the diagnostics must agree with the per-chain tiers.
#[test]
fn diagnostics_counters_match_the_tier_distribution() {
    for component in components::all() {
        if component.program.classes().len() > MAX_CLASSES {
            continue;
        }
        let report = tabby::scan(
            &component.program,
            &ScanOptions {
                witness: true,
                ..ScanOptions::default()
            },
        );
        let count = |tier: WitnessTier| {
            report
                .chains
                .iter()
                .filter(|c| c.tier == Some(tier))
                .count()
        };
        assert_eq!(
            report.diagnostics.chains_witnessed,
            count(WitnessTier::Witnessed),
            "{}",
            component.name
        );
        assert_eq!(
            report.diagnostics.chains_plan_found,
            count(WitnessTier::PlanFound),
            "{}",
            component.name
        );
    }
}
