//! Corruption harness: deterministic, seeded manglings of compiled class
//! bytes must never panic the scanner, and the degraded-mode diagnostics
//! must account for every class that was lost.
//!
//! The corpus is the workloads JDK model (the URLDNS chain lives in it)
//! plus a few `noise.*` leaf classes that no chain passes through —
//! quarantining those must leave the chain set bit-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tabby::prelude::*;
use tabby::workloads::jdk::add_jdk_model;

/// Fixed seed: the manglings are deterministic across runs and platforms.
const SEED: u64 = 0x7abb_5eed;

/// The JDK model plus three chain-irrelevant noise classes, compiled to
/// `.class` bytes.
fn corpus() -> Vec<(String, Vec<u8>)> {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    for i in 0..3 {
        let mut cb = pb.class(&format!("noise.Junk{i}")).serializable();
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("describe", vec![], string);
        mb.ret(mb.c_null());
        mb.finish();
        cb.finish();
    }
    tabby::ir::compile::compile_program(&pb.build())
}

fn bytes_of(corpus: &[(String, Vec<u8>)]) -> Vec<Vec<u8>> {
    corpus.iter().map(|(_, b)| b.clone()).collect()
}

fn chain_key(chains: &[GadgetChain]) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = chains.iter().map(|c| c.signatures.clone()).collect();
    v.sort();
    v
}

/// Truncation, a bit-flip in the magic word, and a zero-length blob — three
/// guaranteed-unparseable manglings — quarantine exactly the three victims
/// and leave every chain intact.
#[test]
fn mangled_corpus_scans_without_panic_and_accounts_for_every_loss() {
    let corpus = corpus();
    let clean_bytes = bytes_of(&corpus);
    let options = ScanOptions::default();
    let clean = tabby::scan_class_bytes(&clean_bytes, &options).unwrap();
    assert!(!clean.diagnostics.is_degraded());
    assert!(!clean.chains.is_empty());

    let victims: Vec<usize> = corpus
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| name.starts_with("noise."))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(victims.len(), 3);

    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut mangled = clean_bytes.clone();
    // Too short for even the magic + version header words.
    let cut = rng.random_range(1..8);
    mangled[victims[0]].truncate(cut);
    // Any single-bit flip in the 0xCAFEBABE magic fails the parse.
    let byte: usize = rng.random_range(0..4);
    let bit: u32 = rng.random_range(0..8);
    mangled[victims[1]][byte] ^= 1u8 << bit;
    mangled[victims[2]].clear();

    let report = tabby::scan_class_bytes(&mangled, &options).unwrap();
    assert!(report.diagnostics.is_degraded());
    assert_eq!(report.diagnostics.skipped_classes.len(), 3);
    for v in &victims {
        let entry = report
            .diagnostics
            .skipped_classes
            .iter()
            .find(|s| s.source == format!("blob[{v}]"))
            .unwrap_or_else(|| panic!("blob[{v}] missing from diagnostics"));
        assert!(!entry.error.is_empty());
    }
    // No chain passes through a noise class, so the chain set is unchanged.
    assert_eq!(chain_key(&report.chains), chain_key(&clean.chains));
    let summary = report.diagnostics.summary();
    assert!(summary.contains("3 classes skipped"), "{summary}");
}

/// Quarantining a class that chains *do* pass through drops exactly the
/// chains whose signatures touch it — graph removal is monotone, so nothing
/// else appears or disappears.
#[test]
fn quarantining_a_chain_class_drops_only_its_chains() {
    let corpus = corpus();
    let clean_bytes = bytes_of(&corpus);
    let options = ScanOptions::default();
    let clean = tabby::scan_class_bytes(&clean_bytes, &options).unwrap();
    assert!(clean
        .chains
        .iter()
        .any(|c| c.signatures.iter().any(|s| s.starts_with("java.net.URL."))));

    let url = corpus
        .iter()
        .position(|(name, _)| name == "java.net.URL")
        .expect("JDK model contains java.net.URL");
    let mut mangled = clean_bytes.clone();
    mangled[url].clear();

    let report = tabby::scan_class_bytes(&mangled, &options).unwrap();
    assert_eq!(report.diagnostics.skipped_classes.len(), 1);
    assert_eq!(
        report.diagnostics.skipped_classes[0].source,
        format!("blob[{url}]")
    );
    let expected: Vec<Vec<String>> = chain_key(&clean.chains)
        .into_iter()
        .filter(|sigs| !sigs.iter().any(|s| s.starts_with("java.net.URL.")))
        .collect();
    assert_eq!(chain_key(&report.chains), expected);
}

/// Strict mode restores fail-fast: the same corrupted corpus is an error,
/// not a degraded report.
#[test]
fn strict_mode_fails_fast_on_a_corrupt_blob() {
    let corpus = corpus();
    let mut bytes = bytes_of(&corpus);
    bytes[0][0] ^= 0xFF;
    let strict = ScanOptions {
        strict: true,
        ..ScanOptions::default()
    };
    assert!(tabby::scan_class_bytes(&bytes, &strict).is_err());
    // The untouched corpus still scans clean in strict mode.
    let clean = tabby::scan_class_bytes(&bytes_of(&corpus), &strict).unwrap();
    assert!(!clean.diagnostics.is_degraded());
}

/// Seeded fuzz rounds: arbitrary truncations and bit-flips anywhere in one
/// blob. The scan must always complete, and anything quarantined must be
/// the mangled blob — never an innocent bystander.
#[test]
fn random_manglings_never_panic_and_never_blame_bystanders() {
    let corpus = corpus();
    let clean_bytes = bytes_of(&corpus);
    let options = ScanOptions::default();
    let mut rng = SmallRng::seed_from_u64(SEED);
    for _round in 0..6 {
        let victim = rng.random_range(0..clean_bytes.len());
        let mut mangled = clean_bytes.clone();
        match rng.random_range(0..3) {
            0 => {
                let cut = rng.random_range(0..mangled[victim].len());
                mangled[victim].truncate(cut);
            }
            1 => {
                let i = rng.random_range(0..mangled[victim].len());
                let bit: u32 = rng.random_range(0..8);
                mangled[victim][i] ^= 1u8 << bit;
            }
            _ => mangled[victim].clear(),
        }
        let report = tabby::scan_class_bytes(&mangled, &options).unwrap();
        // A flip may still parse (no quarantine), but whatever *was*
        // skipped must be the blob we touched.
        for skipped in &report.diagnostics.skipped_classes {
            assert_eq!(skipped.source, format!("blob[{victim}]"));
        }
    }
}
