//! Corruption harness: deterministic, seeded manglings of compiled class
//! bytes must never panic the scanner, and the degraded-mode diagnostics
//! must account for every class that was lost.
//!
//! The corpus is the workloads JDK model (the URLDNS chain lives in it)
//! plus a few `noise.*` leaf classes that no chain passes through —
//! quarantining those must leave the chain set bit-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tabby::prelude::*;
use tabby::workloads::jdk::add_jdk_model;

/// Fixed seed: the manglings are deterministic across runs and platforms.
const SEED: u64 = 0x7abb_5eed;

/// The JDK model plus three chain-irrelevant noise classes, compiled to
/// `.class` bytes.
fn corpus() -> Vec<(String, Vec<u8>)> {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    for i in 0..3 {
        let mut cb = pb.class(&format!("noise.Junk{i}")).serializable();
        let string = cb.object_type("java.lang.String");
        let mut mb = cb.method("describe", vec![], string);
        mb.ret(mb.c_null());
        mb.finish();
        cb.finish();
    }
    tabby::ir::compile::compile_program(&pb.build())
}

fn bytes_of(corpus: &[(String, Vec<u8>)]) -> Vec<Vec<u8>> {
    corpus.iter().map(|(_, b)| b.clone()).collect()
}

fn chain_key(chains: &[GadgetChain]) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = chains.iter().map(|c| c.signatures.clone()).collect();
    v.sort();
    v
}

/// Truncation, a bit-flip in the magic word, and a zero-length blob — three
/// guaranteed-unparseable manglings — quarantine exactly the three victims
/// and leave every chain intact.
#[test]
fn mangled_corpus_scans_without_panic_and_accounts_for_every_loss() {
    let corpus = corpus();
    let clean_bytes = bytes_of(&corpus);
    let options = ScanOptions::default();
    let clean = tabby::scan_class_bytes(&clean_bytes, &options).unwrap();
    assert!(!clean.diagnostics.is_degraded());
    assert!(!clean.chains.is_empty());

    let victims: Vec<usize> = corpus
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| name.starts_with("noise."))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(victims.len(), 3);

    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut mangled = clean_bytes.clone();
    // Too short for even the magic + version header words.
    let cut = rng.random_range(1..8);
    mangled[victims[0]].truncate(cut);
    // Any single-bit flip in the 0xCAFEBABE magic fails the parse.
    let byte: usize = rng.random_range(0..4);
    let bit: u32 = rng.random_range(0..8);
    mangled[victims[1]][byte] ^= 1u8 << bit;
    mangled[victims[2]].clear();

    let report = tabby::scan_class_bytes(&mangled, &options).unwrap();
    assert!(report.diagnostics.is_degraded());
    assert_eq!(report.diagnostics.skipped_classes.len(), 3);
    for v in &victims {
        let entry = report
            .diagnostics
            .skipped_classes
            .iter()
            .find(|s| s.source == format!("blob[{v}]"))
            .unwrap_or_else(|| panic!("blob[{v}] missing from diagnostics"));
        assert!(!entry.error.is_empty());
    }
    // No chain passes through a noise class, so the chain set is unchanged.
    assert_eq!(chain_key(&report.chains), chain_key(&clean.chains));
    let summary = report.diagnostics.summary();
    assert!(summary.contains("3 classes skipped"), "{summary}");
}

/// Quarantining a class that chains *do* pass through drops exactly the
/// chains whose signatures touch it — graph removal is monotone, so nothing
/// else appears or disappears.
#[test]
fn quarantining_a_chain_class_drops_only_its_chains() {
    let corpus = corpus();
    let clean_bytes = bytes_of(&corpus);
    let options = ScanOptions::default();
    let clean = tabby::scan_class_bytes(&clean_bytes, &options).unwrap();
    assert!(clean
        .chains
        .iter()
        .any(|c| c.signatures.iter().any(|s| s.starts_with("java.net.URL."))));

    let url = corpus
        .iter()
        .position(|(name, _)| name == "java.net.URL")
        .expect("JDK model contains java.net.URL");
    let mut mangled = clean_bytes.clone();
    mangled[url].clear();

    let report = tabby::scan_class_bytes(&mangled, &options).unwrap();
    assert_eq!(report.diagnostics.skipped_classes.len(), 1);
    assert_eq!(
        report.diagnostics.skipped_classes[0].source,
        format!("blob[{url}]")
    );
    let expected: Vec<Vec<String>> = chain_key(&clean.chains)
        .into_iter()
        .filter(|sigs| !sigs.iter().any(|s| s.starts_with("java.net.URL.")))
        .collect();
    assert_eq!(chain_key(&report.chains), expected);
}

/// Strict mode restores fail-fast: the same corrupted corpus is an error,
/// not a degraded report.
#[test]
fn strict_mode_fails_fast_on_a_corrupt_blob() {
    let corpus = corpus();
    let mut bytes = bytes_of(&corpus);
    bytes[0][0] ^= 0xFF;
    let strict = ScanOptions {
        strict: true,
        ..ScanOptions::default()
    };
    assert!(tabby::scan_class_bytes(&bytes, &strict).is_err());
    // The untouched corpus still scans clean in strict mode.
    let clean = tabby::scan_class_bytes(&bytes_of(&corpus), &strict).unwrap();
    assert!(!clean.diagnostics.is_degraded());
}

/// Seeded fuzz rounds: arbitrary truncations and bit-flips anywhere in one
/// blob. The scan must always complete, and anything quarantined must be
/// the mangled blob — never an innocent bystander.
#[test]
fn random_manglings_never_panic_and_never_blame_bystanders() {
    let corpus = corpus();
    let clean_bytes = bytes_of(&corpus);
    let options = ScanOptions::default();
    let mut rng = SmallRng::seed_from_u64(SEED);
    for _round in 0..6 {
        let victim = rng.random_range(0..clean_bytes.len());
        let mut mangled = clean_bytes.clone();
        match rng.random_range(0..3) {
            0 => {
                let cut = rng.random_range(0..mangled[victim].len());
                mangled[victim].truncate(cut);
            }
            1 => {
                let i = rng.random_range(0..mangled[victim].len());
                let bit: u32 = rng.random_range(0..8);
                mangled[victim][i] ^= 1u8 << bit;
            }
            _ => mangled[victim].clear(),
        }
        let report = tabby::scan_class_bytes(&mangled, &options).unwrap();
        // A flip may still parse (no quarantine), but whatever *was*
        // skipped must be the blob we touched.
        for skipped in &report.diagnostics.skipped_classes {
            assert_eq!(skipped.source, format!("blob[{victim}]"));
        }
    }
}

// ---------------------------------------------------------------------------
// On-disk artifact corruption: the checksummed envelope must catch torn,
// bit-flipped, and format-skewed cache/registry files, quarantine them
// exactly once, and recompute — corruption never crashes and is never served.
// ---------------------------------------------------------------------------

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tabby::service::{Engine, ScanRequestOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tabby-corruption-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_corpus_dir(dir: &Path) {
    for (name, bytes) in corpus() {
        std::fs::write(dir.join(format!("{}.class", name.replace('.', "_"))), bytes).unwrap();
    }
}

fn far_deadline() -> Instant {
    Instant::now() + Duration::from_secs(300)
}

fn scan_chains(
    engine: &Engine,
    paths: &[String],
) -> (Vec<GadgetChain>, tabby::core::ScanDiagnostics) {
    let out = engine
        .run_scan(paths, &ScanRequestOptions::default(), far_deadline())
        .expect("scan succeeds");
    (out.chains, out.diagnostics)
}

/// Every regular file under `dir` (recursive), skipping quarantine dirs.
fn artifact_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "quarantine") {
                continue;
            }
            out.extend(artifact_files(&p));
        } else {
            out.push(p);
        }
    }
    out.sort();
    out
}

fn quarantined_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "quarantine") {
                let Ok(q) = std::fs::read_dir(&p) else {
                    continue;
                };
                out.extend(q.flatten().map(|e| e.path()).filter(|e| e.is_file()));
            } else {
                out.extend(quarantined_files(&p));
            }
        }
    }
    out
}

/// Bit-flipped, truncated, and version-skewed on-disk cache envelopes: each
/// corruption is detected on read, quarantined exactly once, and the scan
/// recomputes byte-identical chains.
#[test]
fn corrupt_disk_cache_envelopes_quarantine_once_and_recompute() {
    let classes = temp_dir("cache-classes");
    write_corpus_dir(&classes);
    let paths = vec![classes.to_string_lossy().into_owned()];

    // Corruption modes: payload bit-flip, torn write (truncation), and a
    // format-version skew (byte at the envelope's version offset).
    let corruptions: [(&str, fn(&mut Vec<u8>)); 3] = [
        ("bitflip", |b: &mut Vec<u8>| {
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
        }),
        ("truncate", |b: &mut Vec<u8>| {
            let keep = b.len() / 3;
            b.truncate(keep);
        }),
        ("version-skew", |b: &mut Vec<u8>| {
            // Envelope header: magic (0..4), format version u16 at offset 4.
            b[4] ^= 0xFF;
        }),
    ];
    for (tag, corrupt) in corruptions {
        let cache = temp_dir(&format!("cache-{tag}"));
        let cold_engine = Engine::new(Some(cache.clone()), 8, 1);
        let (cold_chains, cold_diag) = scan_chains(&cold_engine, &paths);
        assert!(!cold_chains.is_empty(), "{tag}: URLDNS chain expected");
        assert!(
            cold_diag.artifact_faults.is_empty(),
            "{tag}: clean cold scan"
        );
        let files = artifact_files(&cache);
        assert!(!files.is_empty(), "{tag}: scan persisted artifacts");
        for f in &files {
            let mut bytes = std::fs::read(f).unwrap();
            corrupt(&mut bytes);
            std::fs::write(f, bytes).unwrap();
        }

        // A fresh engine over the same cache dir: every read fails envelope
        // verification, quarantines the file, and recomputes.
        let warm_engine = Engine::new(Some(cache.clone()), 8, 1);
        let (warm_chains, warm_diag) = scan_chains(&warm_engine, &paths);
        assert_eq!(
            chain_key(&warm_chains),
            chain_key(&cold_chains),
            "{tag}: corruption must never change the served chains"
        );
        assert!(
            !warm_diag.artifact_faults.is_empty(),
            "{tag}: quarantine events surface as artifact faults"
        );
        assert!(
            !warm_diag.is_degraded(),
            "{tag}: recompute is not degradation"
        );
        let quarantined = quarantined_files(&cache);
        assert_eq!(
            quarantined.len(),
            files.len(),
            "{tag}: every corrupt artifact lands in quarantine/ exactly once"
        );

        // The recompute rewrote valid envelopes: a third engine serves the
        // cache cleanly and nothing new is quarantined.
        let third_engine = Engine::new(Some(cache.clone()), 8, 1);
        let (again_chains, again_diag) = scan_chains(&third_engine, &paths);
        assert_eq!(chain_key(&again_chains), chain_key(&cold_chains), "{tag}");
        assert!(
            again_diag.artifact_faults.is_empty(),
            "{tag}: second pass is clean — quarantined exactly once"
        );
        assert_eq!(quarantined_files(&cache).len(), quarantined.len(), "{tag}");
        let _ = std::fs::remove_dir_all(&cache);
    }
    let _ = std::fs::remove_dir_all(&classes);
}

/// The memory-mapped flat tier: truncation, a payload bit-flip, and a
/// flat-header version skew (a *valid* envelope whose payload declares a
/// newer flat format) each quarantine the flat artifact exactly once and
/// fall back to the serde twin, which serves byte-identical chains.
#[test]
fn corrupt_flat_artifact_falls_back_to_serde_twin_and_quarantines_once() {
    use tabby::core::envelope::{kind, read_envelope, write_envelope, Publish};
    use tabby::graph::FLAT_FORMAT_VERSION;

    let classes = temp_dir("flat-classes");
    write_corpus_dir(&classes);
    let paths = vec![classes.to_string_lossy().into_owned()];

    fn clear_chains(cache: &Path) {
        for f in artifact_files(&cache.join("chains")) {
            std::fs::remove_file(f).unwrap();
        }
    }

    let corruptions: [(&str, fn(&Path)); 3] = [
        ("truncate", |f: &Path| {
            let mut b = std::fs::read(f).unwrap();
            let keep = b.len() / 3;
            b.truncate(keep);
            std::fs::write(f, b).unwrap();
        }),
        ("bitflip", |f: &Path| {
            let mut b = std::fs::read(f).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= 0x20;
            std::fs::write(f, b).unwrap();
        }),
        ("version-skew", |f: &Path| {
            // The envelope checksum passes; the flat header's format
            // version (first u64 of the payload) is from the future.
            let mut payload = read_envelope(f, kind::FLAT_CPG).unwrap();
            payload[..8].copy_from_slice(&(FLAT_FORMAT_VERSION + 1).to_le_bytes());
            write_envelope(f, kind::FLAT_CPG, &payload, Publish::Overwrite).unwrap();
        }),
    ];

    for (tag, corrupt) in corruptions {
        let cache = temp_dir(&format!("flat-{tag}"));
        let cold_engine = Engine::new(Some(cache.clone()), 8, 1);
        let (cold_chains, _) = scan_chains(&cold_engine, &paths);
        assert!(!cold_chains.is_empty(), "{tag}: URLDNS chain expected");

        // Drop the chain-cache entries so a repeat scan reaches the mapped
        // tier, and confirm the intact flat artifact serves it.
        clear_chains(&cache);
        let mapped_engine = Engine::new(Some(cache.clone()), 8, 1);
        let mapped = mapped_engine
            .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
            .expect("mapped scan succeeds");
        assert!(
            mapped.stats.cpg_map_hit,
            "{tag}: intact flat artifact serves the scan"
        );
        assert_eq!(chain_key(&mapped.chains), chain_key(&cold_chains), "{tag}");

        // Corrupt only the flat artifact; the serde twin stays valid.
        let flats = artifact_files(&cache.join("flat"));
        assert_eq!(flats.len(), 1, "{tag}: one flat artifact per corpus");
        corrupt(&flats[0]);
        clear_chains(&cache);

        let warm_engine = Engine::new(Some(cache.clone()), 8, 1);
        let warm = warm_engine
            .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
            .expect("fallback scan succeeds");
        assert!(
            !warm.stats.cpg_map_hit,
            "{tag}: a corrupt mapping must never serve"
        );
        assert_eq!(
            chain_key(&warm.chains),
            chain_key(&cold_chains),
            "{tag}: the serde twin serves byte-identical chains"
        );
        assert!(
            !warm.diagnostics.artifact_faults.is_empty(),
            "{tag}: the quarantine surfaces as an artifact fault"
        );
        assert!(!warm.diagnostics.is_degraded(), "{tag}");
        assert_eq!(
            quarantined_files(&cache).len(),
            1,
            "{tag}: the flat artifact lands in quarantine/ exactly once"
        );

        // A third engine serves the rewritten chain cache cleanly: the
        // fault does not repeat and nothing new is quarantined.
        let third = Engine::new(Some(cache.clone()), 8, 1);
        let (again, diag) = scan_chains(&third, &paths);
        assert_eq!(chain_key(&again), chain_key(&cold_chains), "{tag}");
        assert!(
            diag.artifact_faults.is_empty(),
            "{tag}: quarantined exactly once, never re-reported"
        );
        assert_eq!(quarantined_files(&cache).len(), 1, "{tag}");
        let _ = std::fs::remove_dir_all(&cache);
    }
    let _ = std::fs::remove_dir_all(&classes);
}

/// A bit-rotted registry snapshot fails envelope verification on the next
/// open: the version is quarantined, `latest` rolls back, and the next diff
/// job re-registers cleanly against the surviving baseline.
#[test]
fn corrupt_registry_snapshot_rolls_back_latest_and_quarantines() {
    let classes = temp_dir("reg-classes");
    write_corpus_dir(&classes);
    let reg = temp_dir("reg-root");
    let paths = vec![classes.to_string_lossy().into_owned()];
    let reg_root = reg.to_string_lossy().into_owned();
    let engine = Engine::new(None, 8, 1);
    let diff = |engine: &Engine| {
        engine
            .run_diff(
                &paths,
                &reg_root,
                "rotted",
                &ScanRequestOptions::default(),
                far_deadline(),
            )
            .expect("diff succeeds")
    };

    let baseline = diff(&engine);
    assert!(baseline.diff.baseline);
    assert_eq!(baseline.diff.new_ref, "rotted@v1");
    // Grow the corpus with a fresh noise class so v2 registers.
    let mut pb = ProgramBuilder::new();
    let mut cb = pb.class("noise.Extra").serializable();
    let string = cb.object_type("java.lang.String");
    let mut mb = cb.method("describe", vec![], string);
    mb.ret(mb.c_null());
    mb.finish();
    cb.finish();
    for (name, bytes) in tabby::ir::compile::compile_program(&pb.build()) {
        std::fs::write(
            classes.join(format!("{}.class", name.replace('.', "_"))),
            bytes,
        )
        .unwrap();
    }
    let second = diff(&engine);
    assert!(!second.diff.baseline && !second.diff.identical);
    assert_eq!(second.diff.new_ref, "rotted@v2");

    // Bit-rot v2's version file. The next registry open detects it,
    // quarantines it, and latest rolls back to v1.
    let v2 = reg.join("rotted").join("v2.json");
    let mut bytes = std::fs::read(&v2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&v2, bytes).unwrap();
    let registry = tabby::registry::Registry::open(&reg).unwrap();
    assert_eq!(registry.latest_version("rotted"), Some(1));
    assert!(!v2.exists(), "the corrupt file is moved, not served");
    let quarantined = quarantined_files(&reg);
    assert_eq!(quarantined.len(), 1, "{quarantined:?}");

    // The next diff of the same content re-registers v2 against v1 — the
    // rolled-back baseline — instead of crashing or serving rot.
    let recovered = diff(&engine);
    assert!(!recovered.diff.baseline);
    assert_eq!(recovered.diff.old_ref.as_deref(), Some("rotted@v1"));
    assert_eq!(recovered.diff.new_ref, "rotted@v2");
    assert!(recovered.diff.report.is_some());
    let _ = std::fs::remove_dir_all(&classes);
    let _ = std::fs::remove_dir_all(&reg);
}

// ---------------------------------------------------------------------------
// Hostile and corrupt archives: every shape is a structured error that names
// the archive, nothing lands in any cache tier, and the same path scans
// cleanly once the archive is repaired — no negative caching.
// ---------------------------------------------------------------------------

/// Truncated central directory, a bad entry CRC, a zip-slip name, a
/// nested-jar depth bomb, and a compression-ratio bomb, each served to the
/// engine as a real on-disk jar.
#[test]
fn hostile_archives_fail_structured_and_are_never_cached() {
    use tabby::ingest::crc::crc32;
    use tabby::ingest::deflate::{deflate_run, deflate_stored};
    use tabby::ingest::zip::{build_zip, ZipWriter};

    // A legitimate payload class, for cases that need plausible contents.
    let class = corpus()
        .into_iter()
        .find(|(name, _)| name == "noise.Junk0")
        .map(|(_, bytes)| bytes)
        .expect("corpus has noise classes");

    // (tag, archive bytes, substring the structured error must contain)
    let mut cases: Vec<(&str, Vec<u8>, &str)> = Vec::new();

    // Truncated central directory: first directory byte mangled.
    let mut truncated = build_zip(&[("noise/Junk0.class", &class)]).unwrap();
    let eocd = truncated.len() - 22;
    let cd_offset =
        u32::from_le_bytes(truncated[eocd + 16..eocd + 20].try_into().unwrap()) as usize;
    truncated[cd_offset] ^= 0xff;
    cases.push(("truncated-cd", truncated, "truncated central directory"));

    // Entry whose data does not hash to the directory's CRC-32.
    let mut w = ZipWriter::new(Vec::new());
    w.add_deflate_raw(
        "noise/Junk0.class",
        &deflate_stored(&class),
        class.len() as u64,
        0xdead_beef,
    )
    .unwrap();
    cases.push(("bad-crc", w.finish().unwrap(), "CRC mismatch"));

    // Path-traversal entry name.
    cases.push((
        "zip-slip",
        build_zip(&[("../../evil.class", b"boom")]).unwrap(),
        "path-traversal (zip-slip)",
    ));

    // jar-in-jar-in-jar-in-jar-in-jar: depth 5 over the default limit of 4.
    let mut deep = build_zip(&[("noise/Junk0.class", class.as_slice())]).unwrap();
    for level in 0..4 {
        deep = build_zip(&[(&format!("lib/l{level}.jar"), deep.as_slice())]).unwrap();
    }
    cases.push(("depth-bomb", deep, "nesting depth"));

    // A 16 MiB run of zeros deflating from a few hundred bytes: the
    // declared ratio alone trips the budget before any inflation.
    let inflated = 16usize << 20;
    let zeros = vec![0u8; inflated];
    let mut w = ZipWriter::new(Vec::new());
    w.add_deflate_raw(
        "bomb.class",
        &deflate_run(0, inflated),
        inflated as u64,
        crc32(&zeros),
    )
    .unwrap();
    cases.push(("ratio-bomb", w.finish().unwrap(), "ratio budget"));

    for (tag, bytes, needle) in cases {
        let dir = temp_dir(&format!("hostile-{tag}"));
        let cache = temp_dir(&format!("hostile-cache-{tag}"));
        let jar = dir.join("evil.jar");
        std::fs::write(&jar, &bytes).unwrap();
        let paths = vec![jar.to_string_lossy().into_owned()];
        let engine = Engine::new(Some(cache.clone()), 8, 1);

        let err = engine
            .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
            .expect_err("hostile archive must be rejected");
        assert!(err.contains(needle), "{tag}: {err}");
        assert!(
            err.contains("evil.jar"),
            "{tag}: error names the archive: {err}"
        );
        // The rejection happened before any cache tier was touched.
        assert!(
            artifact_files(&cache).is_empty(),
            "{tag}: a rejected archive must never persist artifacts"
        );

        // Deterministic: the retry fails identically (nothing was poisoned,
        // nothing was negatively cached).
        let again = engine
            .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
            .expect_err("still rejected");
        assert_eq!(err, again, "{tag}");

        // Repair the archive in place: the same path now scans cleanly.
        std::fs::write(&jar, build_zip(&[("noise/Junk0.class", &class)]).unwrap()).unwrap();
        let ok = engine
            .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
            .expect("repaired archive scans");
        assert!(ok.chains.is_empty(), "{tag}: noise class has no chains");
        assert!(!ok.diagnostics.is_degraded(), "{tag}");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cache);
    }
}

/// The same hostile shapes through the library entry point: `scan_corpus`
/// returns the structured [`tabby::ingest::IngestError`], never a panic and
/// never a degraded report.
#[test]
fn hostile_archives_error_through_the_library_entry_point() {
    use tabby::ingest::zip::build_zip;

    let dir = temp_dir("hostile-lib");
    let jar = dir.join("slip.jar");
    std::fs::write(&jar, build_zip(&[("../../evil.class", b"x")]).unwrap()).unwrap();
    let inputs = tabby::core::collect_inputs(std::slice::from_ref(&jar), true).unwrap();
    assert_eq!(inputs.archives.len(), 1);
    let err = tabby::scan_corpus(
        &inputs,
        &tabby::ingest::IngestLimits::default(),
        &ScanOptions::default(),
    )
    .expect_err("zip-slip rejected");
    let message = err.to_string();
    assert!(message.contains("path-traversal"), "{message}");
    assert!(message.contains("slip.jar"), "{message}");
    let _ = std::fs::remove_dir_all(&dir);
}
