//! Parallel-search determinism: on every Table X smoke scene, the
//! work-sharded engine must return a chain set that serializes to the
//! *byte-identical* JSON of the sequential reference walk — at 1, 2, and 8
//! threads, memo on and off.
//!
//! This is the contract that lets `tabby serve` cache chain sets without
//! keying on thread count or memo setting, and lets `BENCH_search.json`
//! compare engine configurations on timing alone.

use std::collections::HashSet;
use tabby::core::{
    canonical_summary_dump, summarize_program_contained, summarize_program_sharded_contained,
    AnalysisConfig, Cpg,
};
use tabby::graph::NodeId;
use tabby::pathfinder::{
    find_chains_raw_detailed, find_chains_reference_detailed, SearchConfig, SinkCatalog,
    SourceCatalog, TriggerCondition,
};
use tabby::workloads::scenes;

#[test]
fn parallel_search_is_byte_identical_on_every_smoke_scene() {
    for scene in scenes::smoke() {
        let program = &scene.component.program;
        let mut cpg = Cpg::build(program, AnalysisConfig::default());
        let sink_nodes = SinkCatalog::paper().annotate(&mut cpg);
        let sources: HashSet<NodeId> = SourceCatalog::native_serialization().annotate(&mut cpg);
        let sinks: Vec<(NodeId, TriggerCondition)> = sink_nodes
            .iter()
            .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
            .collect();
        let categories: Vec<(NodeId, String)> = sink_nodes
            .iter()
            .map(|(n, s)| (*n, s.category.as_str().to_owned()))
            .collect();
        // Unbounded budget: a truncated run is allowed to differ, so the
        // determinism claim is only over complete searches.
        let base = SearchConfig {
            max_expansions: usize::MAX,
            ..SearchConfig::default()
        };
        let reference = find_chains_reference_detailed(
            &cpg.graph,
            &cpg.schema,
            sinks.clone(),
            categories.clone(),
            &sources,
            &base,
        );
        assert!(!reference.truncated, "{}", scene.component.name);
        assert!(
            !reference.chains.is_empty(),
            "{}: smoke scene finds no chains at all",
            scene.component.name
        );
        let want = serde_json::to_string(&reference.chains).expect("chains serialize");
        for threads in [1, 2, 8] {
            for tc_memo in [true, false] {
                let cfg = SearchConfig {
                    search_threads: threads,
                    tc_memo,
                    ..base.clone()
                };
                let got = find_chains_raw_detailed(
                    &cpg.graph,
                    &cpg.schema,
                    sinks.clone(),
                    categories.clone(),
                    &sources,
                    &cfg,
                );
                assert!(
                    !got.truncated,
                    "{}: {threads} threads, memo {tc_memo}",
                    scene.component.name
                );
                assert_eq!(
                    serde_json::to_string(&got.chains).expect("chains serialize"),
                    want,
                    "{}: {threads} threads, memo {tc_memo} diverged from the \
                     sequential reference",
                    scene.component.name
                );
            }
        }
    }
}

/// The SCC-wave summarizer side of the same contract: on every smoke scene
/// the wave scheduler's summary table must serialize byte-identically to
/// the single-shard sequential run at 1, 2, and 8 threads — and must have
/// computed each summary exactly once (duplicated-work ratio 1.0), even
/// though every scene now carries multi-method recursion SCCs.
#[test]
fn wave_summaries_are_byte_identical_on_every_smoke_scene() {
    for scene in scenes::smoke() {
        let program = &scene.component.program;
        let config = AnalysisConfig::default();
        let reference = summarize_program_sharded_contained(program, &config, 1, None);
        let want = canonical_summary_dump(program, &reference.summaries);
        for threads in [1usize, 2, 8] {
            let outcome = summarize_program_contained(program, &config, threads, None);
            assert_eq!(
                canonical_summary_dump(program, &outcome.summaries),
                want,
                "{}: wave scheduler at {threads} threads diverged from the \
                 sequential shard reference",
                scene.component.name
            );
            let stats = &outcome.scheduler;
            assert_eq!(
                stats.summaries_computed, stats.methods_with_bodies,
                "{}: {threads} threads computed a summary more or less than \
                 once per method",
                scene.component.name
            );
            assert_eq!(
                stats.methods_analyzed,
                stats.summaries_computed,
                "{}: {threads} threads re-analyzed a method (ratio {})",
                scene.component.name,
                stats.duplicated_work_ratio()
            );
            assert!(
                stats.largest_scc >= 4,
                "{}: recursion web should give every scene a multi-method SCC",
                scene.component.name
            );
            assert!(stats.waves > 0, "{}", scene.component.name);
        }
    }
}

/// The differential scanner inherits the same contract: the serialized
/// diff report between two snapshot versions is byte-identical whether
/// the underlying chain searches ran at 1, 2, or 8 threads. This is what
/// lets `tabby diff` output gate CI without keying on the search
/// configuration that produced the snapshots.
#[test]
fn diff_reports_are_byte_identical_across_search_thread_counts() {
    use tabby::pathfinder::NearChainConfig;
    use tabby::registry::{diff_snapshots, hash_inputs};
    use tabby::workloads::activation_scenes_smoke;

    let scenes = activation_scenes_smoke();
    let scene = &scenes[0];
    let snapshot = |component: &tabby::workloads::Component, version, threads| {
        let classes = tabby::ir::compile::compile_program(&component.program);
        let class_hashes = hash_inputs(
            classes
                .iter()
                .map(|(name, bytes)| (name.as_str(), bytes.as_slice())),
        );
        let mut options = tabby::ScanOptions::default();
        options.search.search_threads = threads;
        let mut report = tabby::scan(&component.program, &options);
        tabby::snapshot_scan(&scene.name, version, &mut report, &options, class_hashes)
            .expect("clean snapshot")
    };
    let mut want: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let v1 = snapshot(&scene.v1, 1, threads);
        let v2 = snapshot(&scene.v2, 2, threads);
        let report = diff_snapshots(&v1, &v2, &NearChainConfig::default());
        let got = serde_json::to_string(&report).expect("diff report serializes");
        match &want {
            None => {
                assert!(!report.is_clean(), "the scene must activate");
                want = Some(got);
            }
            Some(want) => assert_eq!(
                &got, want,
                "{threads} search threads changed the diff output"
            ),
        }
    }
}

/// The witness stage inherits the same contract: chain tiers — and the
/// whole serialized chain list that carries them — are byte-identical
/// whether the underlying search ran at 1, 2, or 8 threads, memo on or
/// off. Witnessing is a pure function of (program, chain signatures), so
/// any divergence here means the search fed it different chains or the
/// planner/interpreter picked up nondeterministic state.
#[test]
fn witness_tiers_are_byte_identical_across_search_configs() {
    for scene in scenes::smoke() {
        let program = &scene.component.program;
        let mut want: Option<String> = None;
        for threads in [1usize, 2, 8] {
            for tc_memo in [true, false] {
                let mut options = tabby::ScanOptions::default();
                options.search.search_threads = threads;
                options.search.tc_memo = tc_memo;
                options.witness = true;
                let report = tabby::scan(program, &options);
                assert!(
                    report.chains.iter().all(|c| c.tier.is_some()),
                    "{}: {threads} threads, memo {tc_memo}: untiered chain",
                    scene.component.name
                );
                let got = serde_json::to_string(&report.chains).expect("chains serialize");
                match &want {
                    None => {
                        assert!(
                            !report.chains.is_empty(),
                            "{}: smoke scene finds no chains",
                            scene.component.name
                        );
                        want = Some(got);
                    }
                    Some(want) => assert_eq!(
                        &got, want,
                        "{}: {threads} threads, memo {tc_memo} changed witness output",
                        scene.component.name
                    ),
                }
            }
        }
    }
}

/// The memo only ever *removes* work: with it on, a complete single-thread
/// search expands no more states than the reference walk, and on scenes
/// with a search web it prunes a strictly positive number of states.
#[test]
fn memo_reduces_work_without_changing_chains() {
    // JDK8 has the widest smoke web (most shared substructure).
    let scene = scenes::smoke()
        .into_iter()
        .find(|s| s.component.name == "JDK8");
    let scene = scene.expect("JDK8 smoke scene exists");
    let mut cpg = Cpg::build(&scene.component.program, AnalysisConfig::default());
    let sink_nodes = SinkCatalog::paper().annotate(&mut cpg);
    let sources: HashSet<NodeId> = SourceCatalog::native_serialization().annotate(&mut cpg);
    let sinks: Vec<(NodeId, TriggerCondition)> = sink_nodes
        .iter()
        .map(|(n, s)| (*n, s.trigger_condition.iter().copied().collect()))
        .collect();
    let categories: Vec<(NodeId, String)> = sink_nodes
        .iter()
        .map(|(n, s)| (*n, s.category.as_str().to_owned()))
        .collect();
    let run = |tc_memo: bool| {
        find_chains_raw_detailed(
            &cpg.graph,
            &cpg.schema,
            sinks.clone(),
            categories.clone(),
            &sources,
            &SearchConfig {
                max_expansions: usize::MAX,
                search_threads: 1,
                tc_memo,
                ..SearchConfig::default()
            },
        )
    };
    let with_memo = run(true);
    let without = run(false);
    assert_eq!(with_memo.chains, without.chains);
    assert!(
        with_memo.memo_hits > 0,
        "web gives the memo something to prune"
    );
    assert!(
        with_memo.expansions < without.expansions,
        "memo on: {} expansions, off: {}",
        with_memo.expansions,
        without.expansions
    );
    assert_eq!(without.memo_hits, 0);
}
