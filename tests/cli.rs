//! Black-box tests of the `tabby` CLI binary: scan a directory of real
//! `.class` files written to disk.

use std::process::Command;
use tabby::ir::compile::compile_program;
use tabby::ir::ProgramBuilder;
use tabby::workloads::jdk::add_jdk_model;

fn write_corpus(dir: &std::path::Path) {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    std::fs::create_dir_all(dir).unwrap();
    for (name, bytes) in compile_program(&program) {
        let file = dir.join(format!("{}.class", name.replace('.', "_")));
        std::fs::write(file, bytes).unwrap();
    }
}

#[test]
fn scan_directory_of_class_files() {
    let dir = std::env::temp_dir().join("tabby-cli-test-corpus");
    write_corpus(&dir);
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", dir.to_str().unwrap()])
        .output()
        .expect("run tabby scan");
    let stdout = String::from_utf8_lossy(&output.stdout);
    // Chains found → exit code 2 (the CI-gating convention).
    assert_eq!(output.status.code(), Some(2), "stdout: {stdout}");
    assert!(stdout.contains("java.net.InetAddress.getByName"));
    assert!(stdout.contains("(source)java.util.HashMap.readObject()"));
}

#[test]
fn scan_json_output_parses() {
    let dir = std::env::temp_dir().join("tabby-cli-test-corpus-json");
    write_corpus(&dir);
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", "--json", dir.to_str().unwrap()])
        .output()
        .expect("run tabby scan --json");
    let chains: serde_json::Value =
        serde_json::from_slice(&output.stdout).expect("valid JSON chains");
    assert!(chains.as_array().map(|a| !a.is_empty()).unwrap_or(false));
}

#[test]
fn demo_with_depth_limit_finds_nothing() {
    // URLDNS needs 6 hops; a depth budget of 2 must cut it (Algorithm 3).
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["demo", "--depth", "2"])
        .output()
        .expect("run tabby demo");
    assert_eq!(output.status.code(), Some(0));
}

#[test]
fn sinks_prints_the_catalog() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .arg("sinks")
        .output()
        .expect("run tabby sinks");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("java.lang.Runtime.exec()"));
    assert!(stdout.contains("javax.naming.Context.lookup()"));
    // All 38 catalog rows plus the header.
    assert_eq!(stdout.lines().count(), 39);
}

#[test]
fn scan_nonexistent_path_is_a_clear_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", "/no/such/tabby-path"])
        .output()
        .expect("run tabby scan on a missing path");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("/no/such/tabby-path"), "stderr: {stderr}");
}

#[test]
fn scan_accepts_explicit_job_count() {
    let dir = std::env::temp_dir().join("tabby-cli-test-corpus-jobs");
    write_corpus(&dir);
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", "--jobs", "2", dir.to_str().unwrap()])
        .output()
        .expect("run tabby scan --jobs 2");
    // Parallel summarization is bit-identical: same chains, same exit code.
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("java.net.InetAddress.getByName"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .arg("bogus")
        .output()
        .expect("run tabby bogus");
    assert_ne!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stderr).contains("USAGE"));
}

#[test]
fn dot_export_writes_graphviz() {
    let out_file = std::env::temp_dir().join("tabby-cli-demo.dot");
    let _ = std::fs::remove_file(&out_file);
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["demo", "--dot", out_file.to_str().unwrap()])
        .output()
        .expect("run tabby demo --dot");
    assert!(output.status.code().is_some());
    let dot = std::fs::read_to_string(&out_file).expect("dot file written");
    assert!(dot.starts_with("digraph cpg {"));
    assert!(dot.contains("CALL"));
    assert!(dot.contains("ALIAS"));
}

#[test]
fn custom_sink_catalog_from_json() {
    // `tabby sinks --json` output must round-trip as a `--sinks` input.
    let catalog = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["sinks", "--json"])
        .output()
        .expect("run tabby sinks --json");
    let file = std::env::temp_dir().join("tabby-cli-sinks.json");
    std::fs::write(&file, &catalog.stdout).unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["demo", "--sinks", file.to_str().unwrap()])
        .output()
        .expect("run tabby demo --sinks");
    // Same catalog => same result as the plain demo (chains found: exit 2).
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn scan_corrupt_jar_is_a_structured_archive_error() {
    let dir = std::env::temp_dir().join("tabby-cli-test-jar-only");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("app.jar"), b"PK\x03\x04not really").unwrap();
    // Archives are first-class inputs now: a broken one fails with the zip
    // reader's diagnosis, not a "go unpack it" hint.
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", dir.to_str().unwrap()])
        .output()
        .expect("run tabby scan on a jar-only directory");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("end-of-central-directory"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("app.jar"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_no_archives_restores_the_unpacking_hint() {
    let dir = std::env::temp_dir().join("tabby-cli-test-jar-noarch");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("app.jar"), b"PK\x03\x04not really").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", "--no-archives", dir.to_str().unwrap()])
        .output()
        .expect("run tabby scan --no-archives on a jar-only directory");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("jars are unsupported and must be unpacked"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("app.jar"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_jar_matches_the_unpacked_tree() {
    let root = std::env::temp_dir().join("tabby-cli-test-jar-eq");
    let _ = std::fs::remove_dir_all(&root);
    let tree = root.join("tree");
    write_corpus(&tree);
    // Pack the identical bytes into a jar and scan both ways.
    let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
    for f in std::fs::read_dir(&tree).unwrap() {
        let f = f.unwrap();
        entries.push((
            f.file_name().to_string_lossy().into_owned(),
            std::fs::read(f.path()).unwrap(),
        ));
    }
    entries.sort();
    let refs: Vec<(&str, &[u8])> = entries
        .iter()
        .map(|(n, b)| (n.as_str(), b.as_slice()))
        .collect();
    let jar = root.join("corpus.jar");
    std::fs::write(&jar, tabby::ingest::zip::build_zip(&refs).unwrap()).unwrap();
    let from_tree = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", "--json", tree.to_str().unwrap()])
        .output()
        .expect("scan the unpacked tree");
    let from_jar = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["scan", "--json", jar.to_str().unwrap()])
        .output()
        .expect("scan the jar");
    assert_eq!(from_jar.status.code(), from_tree.status.code());
    assert_eq!(
        String::from_utf8_lossy(&from_jar.stdout),
        String::from_utf8_lossy(&from_tree.stdout),
        "jar scan must emit byte-identical chains"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn query_demo_one_shot_streams_json_rows() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args([
            "query",
            "--demo",
            "-e",
            "MATCH (m:Method {NAME: \"readObject\"}) RETURN m.CLASS_NAME",
        ])
        .output()
        .expect("run tabby query --demo");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let rows: Vec<serde_json::Value> = stdout
        .lines()
        .map(|l| serde_json::from_str(l).expect("each stdout line is a JSON row"))
        .collect();
    assert!(
        rows.iter().any(|r| r[0] == "java.util.HashMap"),
        "stdout: {stdout}"
    );
    // The accounting goes to stderr, keeping stdout pipeable.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("row(s)"), "stderr: {stderr}");
}

#[test]
fn query_builtin_by_name_runs() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["query", "--demo", "--builtin", "sources"])
        .output()
        .expect("run tabby query --builtin sources");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("readObject"), "stdout: {stdout}");
}

#[test]
fn query_parse_error_prints_a_caret() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["query", "--demo", "-e", "MATCH m RETURN m"])
        .output()
        .expect("run tabby query with a bad query");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error: "), "stderr: {stderr}");
    assert!(stderr.contains('^'), "stderr: {stderr}");
}

#[test]
fn query_builtins_lists_named_queries() {
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["query", "--builtins"])
        .output()
        .expect("run tabby query --builtins");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("sinks"), "stdout: {stdout}");
    assert!(stdout.contains("alias-fanout"), "stdout: {stdout}");
}

#[test]
fn bad_sink_catalog_is_rejected() {
    let file = std::env::temp_dir().join("tabby-cli-bad-sinks.json");
    std::fs::write(&file, b"{not json").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_tabby"))
        .args(["demo", "--sinks", file.to_str().unwrap()])
        .output()
        .expect("run tabby demo --sinks bad");
    assert_eq!(output.status.code(), Some(1));
}
