//! Ground-truth regression gate over the Table IX component corpus.
//!
//! The bench crate's `table9_cells` test checks *exact* cell equality in
//! release mode; this test is the debug-mode `cargo test -q` smoke version
//! of the same contract, restricted to the small components: every
//! known-true chain in the manifest is still found, and the false-positive
//! count never exceeds the paper row — the recorded baseline. It runs the
//! search both sequentially and with the parallel engine (8 threads, memo
//! on) so a soundness bug in the memo or the work sharding fails the
//! ordinary test suite, not just the benchmarks.

use tabby::core::{AnalysisConfig, Cpg};
use tabby::pathfinder::{find_gadget_chains, SearchConfig, SinkCatalog, SourceCatalog};
use tabby::prelude::{ScanOptions, WitnessTier};
use tabby::workloads::components;
use tabby::workloads::ChainClass;

/// Components above this size are left to the release-mode bench tests.
const MAX_CLASSES: usize = 100;

#[test]
fn every_known_chain_is_found_and_fps_stay_at_baseline() {
    let mut scored = 0;
    for component in components::all() {
        if component.program.classes().len() > MAX_CLASSES {
            continue;
        }
        let Some(paper) = component.paper else {
            continue;
        };
        scored += 1;
        for (label, config) in [
            ("sequential", SearchConfig::default()),
            (
                "parallel",
                SearchConfig {
                    search_threads: 8,
                    tc_memo: true,
                    ..SearchConfig::default()
                },
            ),
        ] {
            let mut cpg = Cpg::build(&component.program, AnalysisConfig::default());
            let chains = find_gadget_chains(
                &mut cpg,
                &SinkCatalog::paper(),
                &SourceCatalog::native_serialization(),
                &config,
            );
            let chains = component.filter_chains(chains);
            let counts = component.truth.evaluate(&chains);
            assert_eq!(
                counts.known, paper.tb.known,
                "{} ({label}): found {} of {} known-true chains",
                component.name, counts.known, paper.tb.known
            );
            assert!(
                counts.fake <= paper.tb.fake,
                "{} ({label}): {} false positives exceed the recorded baseline {}",
                component.name,
                counts.fake,
                paper.tb.fake
            );
        }
    }
    assert!(scored > 0, "no small components with paper rows to score");
}

/// The exploitability gate over the same corpus: every dataset-known
/// (Table IX) chain must come back tier `witnessed` — the interpreter
/// drives it all the way to its sink with the polluted argument — and no
/// manifest-fake chain may ever witness. This is a *hard* false-positive
/// bound: the static search is allowed `fake <= paper.tb.fake` above, but
/// the witness stage must score those fakes below `witnessed` without
/// exception.
#[test]
fn known_chains_witness_and_planted_fakes_never_witness() {
    let options = ScanOptions {
        witness: true,
        ..ScanOptions::default()
    };
    let mut known_witnessed = 0;
    let mut fakes_demoted = 0;
    for component in components::all() {
        if component.program.classes().len() > MAX_CLASSES {
            continue;
        }
        if component.paper.is_none() {
            continue;
        }
        let report = tabby::scan(&component.program, &options);
        for chain in component.filter_chains(report.chains) {
            let tier = chain.tier.expect("witness scan tiers every chain");
            match component.truth.classify(&chain) {
                ChainClass::Known => {
                    known_witnessed += 1;
                    assert_eq!(
                        tier,
                        WitnessTier::Witnessed,
                        "{}: Table IX chain not witnessed: {chain}",
                        component.name
                    );
                }
                ChainClass::Unknown => {
                    assert_eq!(
                        tier,
                        WitnessTier::Witnessed,
                        "{}: planted effective chain not witnessed: {chain}",
                        component.name
                    );
                }
                ChainClass::Fake => {
                    fakes_demoted += 1;
                    assert_ne!(
                        tier,
                        WitnessTier::Witnessed,
                        "{}: fake chain witnessed: {chain}",
                        component.name
                    );
                }
            }
        }
    }
    assert!(known_witnessed > 0, "no known chains were scored");
    assert!(fakes_demoted > 0, "no fake chains were scored");
}
