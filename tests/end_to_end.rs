//! Cross-crate integration tests through the public `tabby` facade.

use tabby::prelude::*;
use tabby::workloads::jdk::add_jdk_model;

/// Fig. 3 / Fig. 4: the URLDNS chain must be found through the whole
/// pipeline, and its CPG must have the shape the paper draws.
#[test]
fn urldns_end_to_end() {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    let report = tabby::scan(&program, &ScanOptions::default());
    let urldns = report
        .chains
        .iter()
        .find(|c| {
            c.source() == "java.util.HashMap.readObject"
                && c.sink() == "java.net.InetAddress.getByName"
        })
        .expect("URLDNS found");
    // The paper's method-call stack (Fig. 3): readObject -> hash ->
    // (Object.hashCode ~ URL.hashCode) -> URLStreamHandler.hashCode ->
    // getHostAddress -> getByName.
    let expected = [
        "java.util.HashMap.readObject",
        "java.util.HashMap.hash",
        "java.lang.Object.hashCode",
        "java.net.URL.hashCode",
        "java.net.URLStreamHandler.hashCode",
        "java.net.URLStreamHandler.getHostAddress",
        "java.net.InetAddress.getByName",
    ];
    assert_eq!(urldns.signatures, expected);
}

/// The CPG of Fig. 4 has the three sub-graph layers: HAS/EXTEND/INTERFACE
/// (ORG), CALL with Polluted_Position (PCG), and ALIAS (MAG).
#[test]
fn cpg_has_all_five_edge_kinds() {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    let report = tabby::scan(&program, &ScanOptions::default());
    let histogram = report.cpg.graph.edge_type_histogram();
    for kind in ["HAS", "EXTEND", "INTERFACE", "CALL", "ALIAS"] {
        assert!(
            histogram.iter().any(|(k, n)| k == kind && *n > 0),
            "missing {kind} edges: {histogram:?}"
        );
    }
}

/// The class-file pipeline preserves detection: author IR, compile to
/// bytes, lift, scan — the same chains are found (the Soot-role round
/// trip).
#[test]
fn scan_from_class_bytes_equals_scan_from_ir() {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    let direct = tabby::scan(&program, &ScanOptions::default());
    let blobs: Vec<Vec<u8>> = tabby::ir::compile::compile_program(&program)
        .into_iter()
        .map(|(_, b)| b)
        .collect();
    let lifted = tabby::scan_class_bytes(&blobs, &ScanOptions::default()).unwrap();
    let key = |chains: &[GadgetChain]| {
        let mut pairs: Vec<(String, String)> = chains
            .iter()
            .map(|c| (c.source().to_owned(), c.sink().to_owned()))
            .collect();
        pairs.sort();
        pairs.dedup();
        pairs
    };
    assert_eq!(key(&direct.chains), key(&lifted.chains));
    assert!(!lifted.chains.is_empty());
}

/// Persisting the CPG and re-querying it finds the same chains — the
/// "analyze once, query many times" workflow of §II-B.
#[test]
fn persisted_cpg_supports_requery() {
    use std::collections::HashSet;
    use tabby::core::CpgSchema;
    use tabby::graph::Graph;
    use tabby::pathfinder::{find_chains_raw, TriggerCondition};

    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    let report = tabby::scan(&program, &ScanOptions::default());
    let direct_count = report.chains.len();

    let json = serde_json::to_string(&report.cpg.graph).unwrap();
    let mut graph: Graph = serde_json::from_str(&json).unwrap();
    graph.rebuild_after_deserialize();
    let schema = CpgSchema::install(&mut graph);
    // Re-derive sinks/sources from the annotations persisted in the graph.
    let is_sink = graph.get_prop_key("IS_SINK").unwrap();
    let is_source = graph.get_prop_key("IS_SOURCE").unwrap();
    let tc_key = graph.get_prop_key("TRIGGER_CONDITION").unwrap();
    let mut sinks = Vec::new();
    let mut categories = Vec::new();
    let mut sources = HashSet::new();
    for node in graph.node_ids() {
        if graph.node_prop(node, is_sink).and_then(|v| v.as_bool()) == Some(true) {
            let tc: TriggerCondition = graph
                .node_prop(node, tc_key)
                .and_then(|v| v.as_int_list())
                .unwrap_or(&[])
                .iter()
                .map(|&p| p as u16)
                .collect();
            sinks.push((node, tc));
            categories.push((node, "?".to_owned()));
        }
        if graph.node_prop(node, is_source).and_then(|v| v.as_bool()) == Some(true) {
            sources.insert(node);
        }
    }
    let chains = find_chains_raw(
        &graph,
        &schema,
        sinks,
        categories,
        &sources,
        &SearchConfig::default(),
    );
    assert_eq!(chains.len(), direct_count);
}

/// A transient field cannot carry the payload in reality, but the paper's
/// analysis is field-kind-agnostic; both detect — the guard-honouring
/// oracle and manifest classification are what separate effective chains.
/// This test pins the *whole-corpus* invariant instead: every chain the
/// manifests call Known or Unknown is accepted by the oracle, and every
/// Fake is rejected.
#[test]
fn oracle_agrees_with_manifests_across_the_corpus() {
    use tabby::workloads::{components, oracle, ChainClass};
    for component in components::all() {
        let report = tabby::scan(&component.program, &ScanOptions::default());
        let chains = component.filter_chains(report.chains);
        for chain in &chains {
            let class = component.truth.classify(chain);
            let effective = oracle::chain_is_effective(&component.program, &report.cpg, chain);
            match class {
                ChainClass::Known | ChainClass::Unknown => assert!(
                    effective,
                    "{}: manifest says effective, oracle disagrees: {} -> {}",
                    component.name,
                    chain.source(),
                    chain.sink()
                ),
                ChainClass::Fake => assert!(
                    !effective,
                    "{}: manifest says fake, oracle disagrees: {} -> {}",
                    component.name,
                    chain.source(),
                    chain.sink()
                ),
            }
        }
    }
}

/// The parallel CPG build is bit-identical to the sequential one, down to
/// the chains found.
#[test]
fn parallel_cpg_build_matches_sequential() {
    use tabby::core::Cpg;
    use tabby::pathfinder::find_gadget_chains;

    let component = tabby::workloads::components::by_name("Hibernate").unwrap();
    let sequential = tabby::scan(&component.program, &ScanOptions::default());
    let mut cpg = Cpg::build_parallel(&component.program, Default::default(), 4);
    let chains = find_gadget_chains(
        &mut cpg,
        &SinkCatalog::paper(),
        &SourceCatalog::native_serialization(),
        &SearchConfig::default(),
    );
    assert_eq!(cpg.stats.class_nodes, sequential.cpg.stats.class_nodes);
    assert_eq!(cpg.stats.method_nodes, sequential.cpg.stats.method_nodes);
    assert_eq!(
        cpg.stats.relationship_edges,
        sequential.cpg.stats.relationship_edges
    );
    let key = |chains: &[GadgetChain]| {
        let mut v: Vec<Vec<String>> = chains.iter().map(|c| c.signatures.clone()).collect();
        v.sort();
        v
    };
    assert_eq!(key(&chains), key(&sequential.chains));
}

/// C-SEND-SYNC: the long-lived artifacts must cross threads (scan reports
/// are produced on worker threads in batch audits).
#[test]
fn public_types_are_send_and_sync() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<tabby::ir::Program>();
    assert_sync::<tabby::ir::Program>();
    assert_send::<tabby::graph::Graph>();
    assert_sync::<tabby::graph::Graph>();
    assert_send::<tabby::core::Cpg>();
    assert_sync::<tabby::core::Cpg>();
    assert_send::<GadgetChain>();
    assert_sync::<GadgetChain>();
    assert_send::<ScanReport>();
    assert_sync::<ScanReport>();
}
