//! Chaos harness: injected persistence faults (torn writes, ENOSPC) and
//! daemon restarts must never lose correctness — a post-crash restart
//! serves byte-identical chains, corrupt or partial artifacts are swept
//! or quarantined, and a load-shed client that honors the backoff hint
//! eventually succeeds.
//!
//! Fault injection goes through `tabby::core::envelope`'s process-global
//! plan; every fault here is scoped to a test-unique temp-dir substring so
//! parallel tests cannot trip each other's plans.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tabby::core::envelope::{clear_write_faults, inject_write_fault, Fault};
use tabby::ir::compile::compile_program;
use tabby::ir::ProgramBuilder;
use tabby::service::{
    self, Daemon, Engine, Request, RetryPolicy, ScanRequestOptions, ServiceConfig,
};
use tabby::workloads::jdk::add_jdk_model;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tabby-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_jdk_corpus(dir: &Path) {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    for (name, bytes) in compile_program(&pb.build()) {
        std::fs::write(dir.join(format!("{}.class", name.replace('.', "_"))), bytes).unwrap();
    }
}

fn far_deadline() -> Instant {
    Instant::now() + Duration::from_secs(300)
}

fn chain_key(chains: &[tabby::pathfinder::GadgetChain]) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = chains.iter().map(|c| c.signatures.clone()).collect();
    v.sort();
    v
}

/// Files under `dir` whose name marks them as envelope temp files.
fn orphan_tmps(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            out.extend(orphan_tmps(&p));
        } else if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.starts_with('.') && n.contains(".tmp"))
        {
            out.push(p);
        }
    }
    out
}

/// A write "crash" mid-artifact (power loss simulation): the job still
/// succeeds and reports the failed persist as an artifact fault, the
/// partial temp file is left behind, and a restart sweeps it and
/// recomputes byte-identical chains.
#[test]
fn torn_write_survives_restart_with_identical_chains() {
    let classes = temp_dir("torn-classes");
    write_jdk_corpus(&classes);
    let cache = temp_dir("torn-cache");
    let tag = cache.to_string_lossy().into_owned();
    let paths = vec![classes.to_string_lossy().into_owned()];

    // One scan persists a CPG and a chains artifact; kill both writes a
    // few bytes in.
    inject_write_fault(&tag, Fault::TornWrite { at_byte: 9 });
    inject_write_fault(&tag, Fault::TornWrite { at_byte: 9 });
    let crashed = Engine::new(Some(cache.clone()), 8, 1)
        .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
        .expect("a failed persist must not fail the job");
    clear_write_faults(&tag);
    assert!(!crashed.chains.is_empty());
    assert!(
        !crashed.diagnostics.artifact_faults.is_empty(),
        "torn writes surface as artifact faults"
    );
    let partials = orphan_tmps(&cache);
    assert!(!partials.is_empty(), "the torn write leaves a partial temp");

    // Restart: the orphan sweep removes the partials, the scan recomputes
    // (nothing valid was published), and this time the persist lands.
    let restarted = Engine::new(Some(cache.clone()), 8, 1)
        .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
        .expect("restart scan");
    assert_eq!(chain_key(&restarted.chains), chain_key(&crashed.chains));
    assert!(
        orphan_tmps(&cache).is_empty(),
        "restart sweeps orphan temps"
    );

    // Second restart: now the artifacts are on disk and valid — the job
    // cache serves them with zero faults.
    let warm = Engine::new(Some(cache.clone()), 8, 1)
        .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
        .expect("warm scan");
    assert_eq!(chain_key(&warm.chains), chain_key(&crashed.chains));
    assert!(warm.diagnostics.artifact_faults.is_empty());
    assert!(
        warm.stats.job_cache_hit,
        "restart serves from the disk cache"
    );

    let _ = std::fs::remove_dir_all(&classes);
    let _ = std::fs::remove_dir_all(&cache);
}

/// A full disk (ENOSPC) degrades persistence, never the answer: the scan
/// succeeds with the write failure on record, and once space is back a
/// restarted engine heals the cache.
#[test]
fn enospc_is_reported_and_healed_after_restart() {
    let classes = temp_dir("enospc-classes");
    write_jdk_corpus(&classes);
    let cache = temp_dir("enospc-cache");
    let tag = cache.to_string_lossy().into_owned();
    let paths = vec![classes.to_string_lossy().into_owned()];

    inject_write_fault(&tag, Fault::Enospc);
    inject_write_fault(&tag, Fault::Enospc);
    let engine = Engine::new(Some(cache.clone()), 8, 1);
    let full = engine
        .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
        .expect("ENOSPC must not fail the job");
    clear_write_faults(&tag);
    assert!(!full.chains.is_empty());
    assert!(full
        .diagnostics
        .artifact_faults
        .iter()
        .any(|f| f.detail.contains("ENOSPC") || f.detail.contains("No space")));
    let (_, write_failures, _) = engine.persistence_stats();
    assert!(write_failures >= 1, "the daemon-visible counter moved");
    assert!(
        orphan_tmps(&cache).is_empty(),
        "ENOSPC cleanup leaves no temp"
    );

    // Space is back: a restarted engine recomputes and persists; the one
    // after that serves the healed cache.
    let healed = Engine::new(Some(cache.clone()), 8, 1)
        .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
        .expect("healing scan");
    assert_eq!(chain_key(&healed.chains), chain_key(&full.chains));
    let warm = Engine::new(Some(cache.clone()), 8, 1)
        .run_scan(&paths, &ScanRequestOptions::default(), far_deadline())
        .expect("warm scan");
    assert!(warm.stats.job_cache_hit);
    assert!(warm.diagnostics.artifact_faults.is_empty());

    let _ = std::fs::remove_dir_all(&classes);
    let _ = std::fs::remove_dir_all(&cache);
}

/// ENOSPC while minting a registry version fails that diff job with a
/// clear error — a snapshot is never half-registered — and the next
/// attempt registers cleanly.
#[test]
fn enospc_during_snapshot_registration_fails_cleanly_then_recovers() {
    let classes = temp_dir("regspc-classes");
    write_jdk_corpus(&classes);
    let reg = temp_dir("regspc-root");
    let tag = reg.to_string_lossy().into_owned();
    let paths = vec![classes.to_string_lossy().into_owned()];
    let reg_root = reg.to_string_lossy().into_owned();
    let engine = Engine::new(None, 8, 1);

    inject_write_fault(&tag, Fault::Enospc);
    let failed = engine.run_diff(
        &paths,
        &reg_root,
        "spc",
        &ScanRequestOptions::default(),
        far_deadline(),
    );
    clear_write_faults(&tag);
    let error = failed.expect_err("registration must fail, not half-register");
    assert!(
        error.contains("No space") || error.contains("ENOSPC"),
        "{error}"
    );
    assert!(!reg.join("spc").join("v1.json").exists());

    let recovered = engine
        .run_diff(
            &paths,
            &reg_root,
            "spc",
            &ScanRequestOptions::default(),
            far_deadline(),
        )
        .expect("retry registers cleanly");
    assert!(recovered.diff.baseline);
    assert_eq!(recovered.diff.new_ref, "spc@v1");
    assert!(reg.join("spc").join("v1.json").exists());

    let _ = std::fs::remove_dir_all(&classes);
    let _ = std::fs::remove_dir_all(&reg);
}

/// A daemon restart over the same cache directory serves byte-identical
/// chains from disk — persistence survives the process.
#[test]
fn daemon_restart_serves_byte_identical_chains_from_disk() {
    let classes = temp_dir("restart-classes");
    write_jdk_corpus(&classes);
    let cache = temp_dir("restart-cache");
    let paths = vec![classes.to_string_lossy().into_owned()];

    let config = || ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        cache_dir: Some(cache.clone()),
        ..ServiceConfig::default()
    };
    let first = Daemon::spawn(config()).expect("spawn daemon");
    let cold = service::submit(
        &first.addr().to_string(),
        paths.clone(),
        ScanRequestOptions::default(),
    )
    .unwrap();
    assert!(cold.ok, "{:?}", cold.error);
    let cold_chains = cold.chains.expect("cold chains");
    first.stop();

    let second = Daemon::spawn(config()).expect("respawn daemon");
    let warm = service::submit(
        &second.addr().to_string(),
        paths,
        ScanRequestOptions::default(),
    )
    .unwrap();
    assert!(warm.ok, "{:?}", warm.error);
    assert_eq!(
        warm.chains.expect("warm chains"),
        cold_chains,
        "the restarted daemon serves the identical chain set"
    );
    assert!(
        warm.stats.expect("warm stats").job_cache_hit,
        "the restarted daemon hits the persisted cache, not a recompute"
    );
    second.stop();

    let _ = std::fs::remove_dir_all(&classes);
    let _ = std::fs::remove_dir_all(&cache);
}

/// An overloaded daemon sheds a client with `busy` + `retry_after_ms`; a
/// client that honors the hint through `submit_with_retry` eventually
/// succeeds once the backlog drains.
#[test]
fn shed_client_that_retries_eventually_succeeds() {
    let classes = temp_dir("shed-classes");
    write_jdk_corpus(&classes);
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_capacity: 1,
        job_timeout: Duration::from_secs(10),
        ..ServiceConfig::default()
    };
    let handle = Daemon::spawn(config).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let path = classes.to_string_lossy().into_owned();

    // Two slow jobs: one occupies the single worker, one fills the queue's
    // only slot. The raw streams stay open but unread so the submissions
    // stand while we hammer the daemon from the well-behaved client.
    let mut held = Vec::new();
    for i in 0..2 {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let req = service::encode_request(&Request::Scan {
            id: Some(format!("slow-{i}")),
            paths: vec![path.clone()],
            options: ScanRequestOptions {
                inject_fault: Some("sleep:700".to_owned()),
                ..ScanRequestOptions::default()
            },
        })
        .unwrap();
        stream.write_all(format!("{req}\n").as_bytes()).unwrap();
        held.push(stream);
        std::thread::sleep(Duration::from_millis(150));
    }

    // The first attempt is shed (queue full, busy, hint). Retrying with
    // backoff rides out the ~1.4s backlog and completes.
    let policy = RetryPolicy {
        attempts: 10,
        base_delay: Duration::from_millis(100),
        max_delay: Duration::from_secs(1),
    };
    let reply =
        service::submit_with_retry(&addr, vec![path], ScanRequestOptions::default(), &policy)
            .expect("the retrying client eventually gets through");
    assert!(reply.ok, "{:?}", reply.error);
    assert!(!reply.busy);
    assert!(!reply.chains.expect("chains").is_empty());

    let stats = service::request(&addr, &Request::Stats { id: None }).unwrap();
    let daemon = stats.daemon.expect("daemon info");
    assert!(daemon.jobs_rejected >= 1, "at least one attempt was shed");
    drop(held);
    handle.stop();
    let _ = std::fs::remove_dir_all(&classes);
}
