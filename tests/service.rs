//! Integration tests of the scan daemon over real TCP: spawn on an
//! ephemeral port, submit jobs through the JSON-lines protocol, and check
//! the cache behavior reported in the per-job stats.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;
use tabby::ir::compile::compile_program;
use tabby::ir::{JType, ProgramBuilder};
use tabby::service::{self, Daemon, Request, Response, ScanRequestOptions, ServiceConfig};
use tabby::workloads::jdk::add_jdk_model;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tabby-service-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_jdk_corpus(dir: &Path) {
    let mut pb = ProgramBuilder::new();
    add_jdk_model(&mut pb);
    let program = pb.build();
    for (name, bytes) in compile_program(&program) {
        let file = dir.join(format!("{}.class", name.replace('.', "_")));
        std::fs::write(file, bytes).unwrap();
    }
}

/// `t.A.m1 → t.B.m1 → t.C.m1`; `with_extra` grows `t.A` by one method so
/// only A's bytes change between the two corpus versions.
fn write_chain_corpus(dir: &Path, with_extra: bool) {
    let mut pb = ProgramBuilder::new();
    for (class, callee) in [("t.A", Some("t.B")), ("t.B", Some("t.C")), ("t.C", None)] {
        let mut cb = pb.class(class);
        cb.serializable_in_place();
        let obj = cb.object_type("java.lang.Object");
        let mut mb = cb.method("m1", vec![obj.clone()], JType::Void);
        let p0 = mb.param(0);
        if let Some(peer) = callee {
            let sig = mb.sig(peer, "m1", &[obj.clone()], JType::Void);
            let v = mb.fresh();
            mb.copy(v, p0);
            let recv = mb.fresh();
            mb.new_with_ctor(recv, peer, &[], &[]);
            mb.call_virtual(None, recv, sig, &[v.into()]);
        }
        mb.ret_void();
        mb.finish();
        if class == "t.A" && with_extra {
            let mut extra = cb.method("m2", vec![], JType::Void);
            extra.ret_void();
            extra.finish();
        }
        cb.finish();
    }
    for (name, bytes) in compile_program(&pb.build()) {
        std::fs::write(dir.join(format!("{name}.class")), bytes).unwrap();
    }
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServiceConfig::default()
    }
}

#[test]
fn warm_rescan_hits_cache_with_identical_chains() {
    let dir = temp_dir("warm");
    write_jdk_corpus(&dir);
    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];

    let cold = service::submit(&addr, paths.clone(), ScanRequestOptions::default()).unwrap();
    assert!(cold.ok, "cold scan failed: {:?}", cold.error);
    let cold_chains = cold.chains.expect("cold chains");
    let cold_stats = cold.stats.expect("cold stats");
    assert!(!cold_chains.is_empty(), "the JDK model contains URLDNS");
    assert!(!cold_stats.job_cache_hit);
    assert_eq!(cold_stats.classes_lifted, cold_stats.classes);

    let warm = service::submit(&addr, paths, ScanRequestOptions::default()).unwrap();
    assert!(warm.ok, "warm scan failed: {:?}", warm.error);
    let warm_stats = warm.stats.expect("warm stats");
    assert!(
        warm_stats.job_cache_hit,
        "second scan must hit the job cache"
    );
    assert!(
        warm_stats.cache_hit_ratio >= 0.9,
        "cache hit ratio {} below 90%",
        warm_stats.cache_hit_ratio
    );
    assert_eq!(
        warm.chains.expect("warm chains"),
        cold_chains,
        "cached scan must return the identical chain set"
    );

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn depth_change_reuses_the_cached_cpg() {
    let dir = temp_dir("depth");
    write_jdk_corpus(&dir);
    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];

    let cold = service::submit(&addr, paths.clone(), ScanRequestOptions::default()).unwrap();
    assert!(cold.ok, "cold scan failed: {:?}", cold.error);

    // Same component, different search depth: the chain cache misses but
    // the assembled CPG is reused — only the search runs.
    let shallow = service::submit(
        &addr,
        paths,
        ScanRequestOptions {
            depth: 2,
            ..ScanRequestOptions::default()
        },
    )
    .unwrap();
    assert!(shallow.ok, "shallow scan failed: {:?}", shallow.error);
    let stats = shallow.stats.expect("stats");
    assert!(!stats.job_cache_hit);
    assert!(
        stats.cpg_cache_hit,
        "depth change must reuse the cached CPG"
    );
    assert_eq!(stats.cache_hit_ratio, 1.0);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_class_rescan_is_incremental() {
    let dir = temp_dir("incremental");
    write_chain_corpus(&dir, false);
    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];

    let cold = service::submit(&addr, paths.clone(), ScanRequestOptions::default()).unwrap();
    assert!(cold.ok, "cold scan failed: {:?}", cold.error);
    let cold_chains = cold.chains.expect("cold chains");

    // Grow t.A by one method: only A's bytes change, B and C recompile
    // byte-identically, and nothing references A.
    write_chain_corpus(&dir, true);
    let incr = service::submit(&addr, paths, ScanRequestOptions::default()).unwrap();
    assert!(incr.ok, "incremental scan failed: {:?}", incr.error);
    let stats = incr.stats.expect("stats");
    assert!(!stats.job_cache_hit);
    assert_eq!(stats.classes_lifted, 1, "only the changed class re-lifts");
    assert!(
        stats.cache_hit_ratio > 0.0,
        "unchanged classes' summaries must be reused"
    );
    assert!(stats.methods_summarized < stats.methods);
    assert_eq!(incr.chains.expect("chains"), cold_chains);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chains_cache_persists_across_daemon_restarts() {
    let dir = temp_dir("persist-corpus");
    let cache_dir = temp_dir("persist-cache");
    write_jdk_corpus(&dir);
    let paths = vec![dir.to_string_lossy().into_owned()];
    let config = || ServiceConfig {
        cache_dir: Some(cache_dir.clone()),
        ..test_config()
    };

    let first = Daemon::spawn(config()).expect("spawn daemon");
    let cold = service::submit(
        &first.addr().to_string(),
        paths.clone(),
        ScanRequestOptions::default(),
    )
    .unwrap();
    assert!(cold.ok, "cold scan failed: {:?}", cold.error);
    let cold_chains = cold.chains.expect("cold chains");
    first.stop();

    // A fresh daemon process state, same cache directory: the chain set
    // comes back from disk without any analysis.
    let second = Daemon::spawn(config()).expect("respawn daemon");
    let warm = service::submit(
        &second.addr().to_string(),
        paths,
        ScanRequestOptions::default(),
    )
    .unwrap();
    assert!(warm.ok, "warm scan failed: {:?}", warm.error);
    assert!(warm.stats.expect("stats").job_cache_hit);
    assert_eq!(warm.chains.expect("chains"), cold_chains);
    second.stop();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn raw_json_lines_protocol_round_trips() {
    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    stream
        .write_all(b"{\"v\":4,\"cmd\":\"ping\",\"id\":\"p-1\"}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let reply: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(reply.ok);
    assert_eq!(reply.id.as_deref(), Some("p-1"));

    // A v2 client against a v4 daemon gets a structured version-mismatch
    // error naming both versions, not a guess.
    line.clear();
    stream
        .write_all(b"{\"v\":2,\"cmd\":\"ping\",\"id\":\"old\"}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let reply: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.id.as_deref(), Some("old"));
    let error = reply.error.unwrap();
    assert!(error.contains("request is v2"), "{error}");
    assert!(error.contains("daemon speaks v4"), "{error}");

    // Malformed input gets an error reply; the connection stays usable.
    line.clear();
    stream.write_all(b"definitely not json\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let reply: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(!reply.ok);
    assert!(reply.error.unwrap().contains("malformed"));

    // An unversioned request (the pre-v2 protocol) is rejected with
    // guidance, not guessed at.
    line.clear();
    stream.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let reply: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(!reply.ok);
    assert!(reply.error.unwrap().contains("unversioned request"));

    line.clear();
    stream.write_all(b"{\"v\":4,\"cmd\":\"stats\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let reply: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(reply.ok);
    let daemon = reply.daemon.expect("daemon info");
    assert_eq!(daemon.workers, 2);

    handle.stop();
}

#[test]
fn daemon_diff_reports_exactly_the_planted_activation() {
    let dir = temp_dir("diff-corpus");
    let reg = temp_dir("diff-registry");
    let scenes = tabby::workloads::activation_scenes_smoke();
    let scene = &scenes[0];
    let write = |program: &tabby::ir::Program| {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let _ = std::fs::remove_file(entry.unwrap().path());
        }
        for (name, bytes) in compile_program(program) {
            let file = dir.join(format!("{}.class", name.replace('.', "_")));
            std::fs::write(file, bytes).unwrap();
        }
    };
    write(&scene.v1.program);

    let handle = Daemon::spawn(test_config()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let paths = vec![dir.to_string_lossy().into_owned()];
    let reg_root = reg.to_string_lossy().into_owned();
    let diff = |watch| {
        service::diff(
            &addr,
            paths.clone(),
            &reg_root,
            &scene.name,
            watch,
            ScanRequestOptions::default(),
        )
        .unwrap()
    };

    // First diff registers the baseline; there is nothing to compare yet.
    let reply = diff(false);
    assert!(reply.ok, "baseline diff failed: {:?}", reply.error);
    let outcome = reply.diff.expect("diff payload");
    assert!(outcome.baseline);
    assert_eq!(outcome.new_ref, format!("{}@v1", scene.name));
    assert!(outcome.report.is_none());

    // Unchanged content short-circuits before any scan work.
    let reply = diff(false);
    assert!(reply.ok, "{:?}", reply.error);
    let outcome = reply.diff.expect("diff payload");
    assert!(outcome.identical, "re-diff of identical content");
    assert_eq!(outcome.new_ref, format!("{}@v1", scene.name));

    // The version bump: only the pivot's sanitizing callee changes.
    write(&scene.v2.program);
    let reply = diff(false);
    assert!(reply.ok, "post-bump diff failed: {:?}", reply.error);
    let outcome = reply.diff.expect("diff payload");
    assert!(!outcome.baseline && !outcome.identical);
    assert_eq!(
        outcome.old_ref.as_deref(),
        Some(format!("{}@v1", scene.name).as_str())
    );
    assert_eq!(outcome.new_ref, format!("{}@v2", scene.name));
    let report = outcome.report.expect("diff report");
    let (source, sink) = &scene.activated;
    assert_eq!(
        report.activated.len(),
        1,
        "exactly the planted chain must activate: {:?}",
        report.activated
    );
    assert_eq!(report.activated[0].chain.source(), *source);
    assert_eq!(report.activated[0].chain.sink(), *sink);
    assert!(
        !report.activated[0].completing_edges.is_empty(),
        "the activation must be attributed to the completing edge(s)"
    );
    assert!(
        report.near_chains.iter().any(|n| n
            .signatures
            .first()
            .is_some_and(|s| *s == scene.dormant_source)),
        "the dormant twin must surface as a near-chain: {:?}",
        report.near_chains
    );

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reg);
}

#[test]
fn full_queue_rejects_and_stalled_jobs_time_out() {
    let dir = temp_dir("queue");
    write_chain_corpus(&dir, false);
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 0,
        queue_capacity: 1,
        job_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    };
    let handle = Daemon::spawn(config).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let path = dir.to_string_lossy().into_owned();

    // With no workers the first job occupies the queue's only slot.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let req = service::encode_request(&Request::Scan {
        id: Some("stalled".to_owned()),
        paths: vec![path.clone()],
        options: ScanRequestOptions::default(),
    })
    .unwrap();
    stream.write_all(format!("{req}\n").as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The second submission is rejected immediately, not queued behind it —
    // and under the v4 overload contract the rejection is structured: the
    // busy flag plus a retry_after_ms backoff hint, same error text.
    let rejected = service::submit(&addr, vec![path], ScanRequestOptions::default()).unwrap();
    assert!(!rejected.ok);
    assert_eq!(rejected.error.as_deref(), Some("queue full"));
    assert!(rejected.busy, "queue-full rejection sets busy");
    assert!(
        rejected.retry_after_ms.is_some_and(|ms| ms > 0),
        "busy rejection carries a backoff hint: {:?}",
        rejected.retry_after_ms
    );

    // The stalled job's connection gets a timeout reply, not a hang.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply: Response = serde_json::from_str(line.trim()).unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.id.as_deref(), Some("stalled"));
    assert!(reply.error.unwrap().contains("timed out"));

    // Daemon-wide counters saw the rejection.
    let stats = service::request(&addr, &Request::Stats { id: None }).unwrap();
    assert_eq!(stats.daemon.expect("daemon info").jobs_rejected, 1);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn job_timeout_returns_structured_error_and_worker_survives() {
    let dir = temp_dir("timeout");
    write_chain_corpus(&dir, false);
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        job_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    };
    let handle = Daemon::spawn(config).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let path = dir.to_string_lossy().into_owned();

    // A job stalled well past its deadline (the injected sleep checks the
    // deadline in slices) gets a structured timeout error, not a hang and
    // not a dead worker.
    let stalled = service::submit(
        &addr,
        vec![path.clone()],
        ScanRequestOptions {
            inject_fault: Some("sleep:10000".to_owned()),
            ..ScanRequestOptions::default()
        },
    )
    .unwrap();
    assert!(!stalled.ok);
    let error = stalled.error.expect("timeout error");
    assert!(error.contains("timed out"), "{error}");
    assert!(!stalled.busy, "a timeout is a failure, not load shedding");

    // The single worker survived and serves the next job normally.
    let next = service::submit(&addr, vec![path], ScanRequestOptions::default()).unwrap();
    assert!(next.ok, "worker survived the timeout: {:?}", next.error);
    let stats = service::request(&addr, &Request::Stats { id: None }).unwrap();
    let daemon = stats.daemon.expect("daemon info");
    assert_eq!(daemon.jobs_failed, 1);
    assert_eq!(daemon.jobs_done, 1);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
