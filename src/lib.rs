//! # tabby — automated gadget-chain detection for Java deserialization
//!
//! A from-scratch Rust reproduction of *Tabby: Automated Gadget Chain
//! Detection for Java Deserialization Vulnerabilities* (DSN 2023): a code
//! property graph is built from Java classes (lifted from `.class` bytes or
//! authored in the bundled IR), enriched by a field-sensitive
//! interprocedural controllability analysis, stored in an embedded property
//! graph, and searched backwards from sink methods with
//! Trigger_Condition-guided traversal.
//!
//! The workspace crates are re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`classfile`] | `.class` parsing, writing, assembly (Soot front-end role) |
//! | [`ir`] | Jimple-like IR, CFGs, builder DSL, lifter/compiler |
//! | [`graph`] | embedded property graph + traversal (Neo4j role) |
//! | [`core`] | controllability analysis + CPG construction (§III-B/C) |
//! | [`pathfinder`] | sink/source catalogs + chain search (§III-D) |
//! | [`witness`] | post-search witness synthesis + IR interpreter (exploitability tiers) |
//! | [`query`] | TQL, a textual CPG query language (Cypher role, §III-E) |
//! | [`baselines`] | GadgetInspector / Serianalyzer comparison detectors |
//! | [`workloads`] | synthetic evaluation corpora with ground truth |
//! | [`service`] | persistent scan daemon with content-addressed caching |
//! | [`registry`] | versioned snapshot store + differential chain detection |
//!
//! # Quick start
//!
//! ```
//! use tabby::prelude::*;
//!
//! // Build the paper's Fig. 1 program: EvilObjectA.readObject ->
//! // val1.toString ~> EvilObjectB.toString -> Runtime.exec.
//! let mut pb = ProgramBuilder::new();
//! let mut cb = pb.class("example.EvilObjectA").serializable();
//! let object = cb.object_type("java.lang.Object");
//! let string = cb.object_type("java.lang.String");
//! let ois = cb.object_type("java.io.ObjectInputStream");
//! cb.field("val1", object.clone());
//! let mut mb = cb.method("readObject", vec![ois], JType::Void);
//! let this = mb.this();
//! let val = mb.fresh();
//! mb.get_field(val, this, "example.EvilObjectA", "val1", object.clone());
//! let to_string = mb.sig("java.lang.Object", "toString", &[], string.clone());
//! mb.call_virtual(None, val, to_string, &[]);
//! mb.finish();
//! cb.finish();
//! let mut cb = pb.class("example.EvilObjectB").serializable();
//! let object = cb.object_type("java.lang.Object");
//! let string = cb.object_type("java.lang.String");
//! let runtime = cb.object_type("java.lang.Runtime");
//! let process = cb.object_type("java.lang.Process");
//! cb.field("val2", object.clone());
//! let mut mb = cb.method("toString", vec![], string.clone());
//! let this = mb.this();
//! let val2 = mb.fresh();
//! mb.get_field(val2, this, "example.EvilObjectB", "val2", object.clone());
//! let ts = mb.sig("java.lang.Object", "toString", &[], string.clone());
//! let cmd = mb.fresh();
//! mb.call_virtual(Some(cmd), val2, ts, &[]);
//! let rt = mb.fresh();
//! let get_rt = mb.sig("java.lang.Runtime", "getRuntime", &[], runtime);
//! mb.call_static(Some(rt), get_rt, &[]);
//! let exec = mb.sig("java.lang.Runtime", "exec", &[string.clone()], process);
//! mb.call_virtual(None, rt, exec, &[cmd.into()]);
//! mb.ret(mb.c_null());
//! mb.finish();
//! cb.finish();
//! let program = pb.build();
//!
//! let report = tabby::scan(&program, &ScanOptions::default());
//! assert_eq!(report.chains.len(), 1);
//! assert_eq!(report.chains[0].source(), "example.EvilObjectA.readObject");
//! assert_eq!(report.chains[0].sink(), "java.lang.Runtime.exec");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tabby_baselines as baselines;
pub use tabby_classfile as classfile;
pub use tabby_core as core;
pub use tabby_graph as graph;
pub use tabby_ingest as ingest;
pub use tabby_ir as ir;
pub use tabby_pathfinder as pathfinder;
pub use tabby_query as query;
pub use tabby_registry as registry;
pub use tabby_service as service;
pub use tabby_witness as witness;
pub use tabby_workloads as workloads;

use tabby_core::{summarize_program_contained, AnalysisConfig, Cpg, ScanDiagnostics, SkippedClass};
use tabby_ir::Program;
use tabby_pathfinder::{
    find_gadget_chains_detailed, GadgetChain, SearchConfig, SinkCatalog, SourceCatalog,
};
use tabby_witness::WitnessConfig;

/// Commonly used items for building programs and scanning them.
pub mod prelude {
    pub use crate::{scan, scan_class_bytes, ScanOptions, ScanReport};
    pub use tabby_core::{AnalysisConfig, Cpg, ScanDiagnostics};
    pub use tabby_ir::{JType, ProgramBuilder};
    pub use tabby_pathfinder::{
        GadgetChain, SearchConfig, SinkCatalog, SourceCatalog, WitnessTier,
    };
    pub use tabby_witness::{WitnessConfig, WitnessPlan, WitnessStats};
}

/// End-to-end scan configuration.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Controllability-analysis knobs (§III-C).
    pub analysis: AnalysisConfig,
    /// Chain-search knobs (§III-D).
    pub search: SearchConfig,
    /// Sink catalog (Table VII by default).
    pub sinks: SinkCatalog,
    /// Source catalog (native serialization callbacks by default).
    pub sources: SourceCatalog,
    /// Worker threads for the per-method controllability analysis
    /// (`1` = sequential; output is bit-identical either way).
    pub jobs: usize,
    /// Fail fast on the first malformed class or analysis fault instead of
    /// quarantining it and continuing in degraded mode.
    pub strict: bool,
    /// Run the post-search witness stage: synthesize a concrete plan per
    /// chain, execute it in the IR interpreter, and tier every chain
    /// (`witnessed` > `plan-found` > `static-only`).
    pub witness: bool,
    /// Interpreter limits for the witness stage.
    pub witness_config: WitnessConfig,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            analysis: AnalysisConfig::default(),
            search: SearchConfig::default(),
            sinks: SinkCatalog::default(),
            sources: SourceCatalog::default(),
            jobs: 1,
            strict: false,
            witness: false,
            witness_config: WitnessConfig::default(),
        }
    }
}

/// The result of one scan.
#[derive(Debug)]
pub struct ScanReport {
    /// The gadget chains found, source-first.
    pub chains: Vec<GadgetChain>,
    /// The code property graph (kept for custom follow-up queries —
    /// the paper's "researchers can re-use the graph" workflow, §II-B).
    pub cpg: Cpg,
    /// What (if anything) was skipped, quarantined, or truncated along the
    /// way. Empty (`!is_degraded()`) for a clean, complete scan.
    pub diagnostics: ScanDiagnostics,
}

/// Builds the CPG for `program` and searches it for gadget chains.
///
/// Every phase is fault-isolated: a panic while summarizing one method
/// quarantines that method (it gets the conservative identity summary), and
/// phase budgets ([`AnalysisConfig::max_fixpoint_steps`],
/// [`SearchConfig::max_expansions`] / [`SearchConfig::deadline`]) convert
/// runaway analyses into partial results. The [`ScanReport::diagnostics`]
/// field records everything that was degraded.
pub fn scan(program: &Program, options: &ScanOptions) -> ScanReport {
    let mut diagnostics = ScanDiagnostics::default();
    let outcome = summarize_program_contained(
        program,
        &options.analysis,
        options.jobs.max(1),
        options.search.deadline,
    );
    diagnostics.fixpoint_truncations = outcome.fixpoint_truncations();
    diagnostics.summarize_waves = outcome.scheduler.waves;
    diagnostics.summarize_largest_scc = outcome.scheduler.largest_scc;
    diagnostics.summaries_computed = outcome.scheduler.summaries_computed;
    diagnostics.methods_with_bodies = outcome.scheduler.methods_with_bodies;
    diagnostics.quarantined_methods = outcome.quarantined;
    let mut cpg = Cpg::build_with_summaries(program, options.analysis.clone(), outcome.summaries);
    let search =
        find_gadget_chains_detailed(&mut cpg, &options.sinks, &options.sources, &options.search);
    diagnostics.search_truncated = search.truncated;
    diagnostics.search_expansions = search.expansions;
    diagnostics.search_memo_hits = search.memo_hits;
    let mut chains = search.chains;
    if options.witness {
        let stats = tabby_witness::witness_chains(
            program,
            &options.sinks,
            &mut chains,
            &options.witness_config,
        );
        diagnostics.chains_witnessed = stats.witnessed;
        diagnostics.chains_plan_found = stats.plan_found;
        diagnostics.witness_failures = stats.failures;
    }
    ScanReport {
        chains,
        cpg,
        diagnostics,
    }
}

/// Wraps a finished [`ScanReport`] into a [`registry::Snapshot`] using the
/// scan's own catalogs and search depth, ready for [`registry::Registry::save`].
///
/// # Errors
///
/// Refuses degraded scans (see [`registry::Snapshot::build`]): a truncated
/// or quarantined chain set would make later diffs report phantom
/// activations.
pub fn snapshot_scan(
    corpus: &str,
    version: u32,
    report: &mut ScanReport,
    options: &ScanOptions,
    class_hashes: std::collections::BTreeMap<String, u64>,
) -> Result<registry::Snapshot, String> {
    registry::Snapshot::from_cpg(
        corpus,
        version,
        &mut report.cpg,
        &options.sinks,
        &options.sources,
        &report.chains,
        &report.diagnostics,
        class_hashes,
        options.search.max_depth,
    )
}

/// Lifts `.class` byte blobs and scans the resulting program.
///
/// With [`ScanOptions::strict`] unset (the default), malformed blobs are
/// quarantined — recorded in [`ScanReport::diagnostics`] as
/// `blob[<index>]` entries — and the scan continues over the survivors.
///
/// # Errors
///
/// In strict mode, returns a [`classfile::ClassFileError`] when any blob
/// fails to parse or lift.
pub fn scan_class_bytes(
    classes: &[Vec<u8>],
    options: &ScanOptions,
) -> Result<ScanReport, classfile::ClassFileError> {
    if options.strict {
        let program = ir::lift::lift_program(classes)?;
        return Ok(scan(&program, options));
    }
    let outcome = ir::lift::lift_program_tolerant(classes);
    let mut report = scan(&outcome.program, options);
    report.diagnostics.skipped_classes = outcome
        .skipped
        .into_iter()
        .map(|d| SkippedClass {
            source: format!("blob[{}]", d.index),
            class_name: d.class_name,
            byte_hash: d.byte_hash,
            error: d.error,
        })
        .collect();
    Ok(report)
}

/// Lifts a mixed corpus — loose `.class` files plus jars/wars — with the
/// streaming bounded-memory ingest driver, then scans it.
///
/// Archives are never unpacked to disk: entries are inflated in batches
/// of at most [`ingest::IngestLimits::batch_bytes`], so peak blob memory
/// is O(batch), not O(corpus). Duplicate classes across the assembled
/// classpath resolve JVM-style first-wins; the shadowed copies are
/// reported in [`ScanReport::diagnostics`] (informational, not
/// degradation). Malformed classes quarantine with their full
/// `archive!/entry` provenance unless [`ScanOptions::strict`] is set.
///
/// # Errors
///
/// Structured [`ingest::IngestError`]s: hostile archives (zip-slip names,
/// compression-ratio / total-size / nesting-depth bombs, bad CRCs), I/O
/// failures, and — in strict mode — the first class that fails to lift.
pub fn scan_corpus(
    inputs: &core::CollectedInputs,
    limits: &ingest::IngestLimits,
    options: &ScanOptions,
) -> Result<(ScanReport, ingest::IngestStats), ingest::IngestError> {
    let lifted = ingest::lift_corpus(inputs, limits, options.strict)?;
    let stats = lifted.stats.clone();
    let mut report = scan(&lifted.program, options);
    report.diagnostics.skipped_classes = lifted.skipped;
    report.diagnostics.shadowed_classes = lifted.shadowed;
    Ok((report, stats))
}
