//! The `tabby` command-line scanner.
//!
//! ```text
//! tabby scan <path>...        scan .class files, jars/wars, or directories
//! tabby demo                  scan the bundled JDK model (finds URLDNS)
//! tabby query [<path>...]     run TQL queries against a CPG (-e, REPL, --demo)
//! tabby sinks                 print the sink catalog (Table VII)
//! tabby serve                 run the persistent scan daemon
//! tabby submit <path>...      submit a scan (or --query) to a running daemon
//! tabby snapshot <path>...    scan and register a versioned corpus snapshot
//! tabby diff <old> <new>      diff two snapshots (activated + near-chains)
//! ```
//!
//! Options for `scan`/`demo`:
//!
//! ```text
//! --depth <n>           maximum chain length (default 12)
//! --extended            use the extended source catalog (XStream-style entry points)
//! --jobs <n>            analysis worker threads (default: available parallelism)
//! --search-threads <n>  chain-search worker threads (0 = one per core)
//! --no-tc-memo          disable the TC-dominance search memo
//! --witness             execute a synthesized witness per chain and rank by tier
//! --sinks <file>        custom sink catalog (JSON; `tabby sinks --json` emits one)
//! --json                emit the chains as JSON
//! --save-cpg <file>     persist the code property graph as JSON
//! --dot <file>          export the code property graph as Graphviz DOT
//! ```
//!
//! The daemon protocol, its options, and the cache layout are documented in
//! the repository README under "Running as a service".

use std::path::PathBuf;
use std::process::ExitCode;
use tabby::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "scan" => cmd_scan(rest),
        "demo" => cmd_demo(rest),
        "query" => cmd_query(rest),
        "sinks" => cmd_sinks(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "snapshot" => cmd_snapshot(rest),
        "diff" => cmd_diff(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tabby — automated gadget-chain detection for Java deserialization

USAGE:
    tabby scan [OPTIONS] <path>...   scan .class files, archives (.jar/.war/
                                     .zip, including nested fat jars and
                                     wars), or directories of either
    tabby demo [OPTIONS]             scan the bundled JDK model
    tabby query [OPTIONS] [<path>...] run TQL queries against a CPG
    tabby sinks                      print the sink catalog (Table VII)
    tabby serve [OPTIONS]            run the persistent scan daemon
    tabby submit [OPTIONS] <path>... submit a scan (or --query) to a daemon
    tabby snapshot --as <corpus[@vN]> [OPTIONS] <path>...
                                     scan .class files and register the result
                                     as a versioned snapshot
    tabby diff [OPTIONS] <corpus[@vN]> <corpus[@vM]>
                                     diff two registered snapshots

OPTIONS (scan/demo):
    --depth <n>           maximum chain length (default 12)
    --extended            extended source catalog (hashCode/equals/compare/toString)
    --jobs <n>            analysis worker threads (default: available parallelism)
    --search-threads <n>  chain-search worker threads (default 1; 0 = one per
                          core; the chain set is identical at any count)
    --no-tc-memo          disable the TC-dominance search memo (same chains,
                          more expansions — for benchmarking)
    --witness             run the post-search witness stage: synthesize a
                          concrete plan per chain, execute it in the IR
                          interpreter, and tier every chain
                          (witnessed > plan-found > static-only); the exit
                          code becomes 3 when any chain is witnessed
    --sinks <file>        custom sink catalog (JSON; see `tabby sinks --json`)
    --strict              fail on the first malformed class instead of
                          quarantining it and scanning the survivors
    --no-archives         reject jar/war/zip inputs with the pre-ingestion
                          error instead of streaming them (scan/snapshot/
                          query/submit)
    --json                emit chains as JSON
    --save-cpg <file>     persist the code property graph as JSON
    --dot <file>          export the code property graph as Graphviz DOT

OPTIONS (snapshot/diff):
    --registry <dir>      registry root (default .tabby-registry)
    --as <corpus[@vN]>    (snapshot) corpus name and optional version; a bare
                          name registers the next version (v1 for a new corpus),
                          atomically even against concurrent writers
    --pin                 (snapshot) pin the registered version: size-budget
                          GC never removes it
    --registry-budget-bytes <n>
                          (snapshot) after registering, garbage-collect the
                          registry down to <n> bytes (newest versions and
                          pinned versions are kept)
    --witness             (snapshot) tier chains before registering, so later
                          diffs can report tier *promotions* (a chain going
                          plan-found -> witnessed across versions)
    --json                (diff) emit the diff report as JSON

    `snapshot` refuses degraded scans (skipped/quarantined classes or a
    truncated search): diffing a partial chain set would fabricate
    activations. Fix the corpus or raise the budgets, then re-snapshot.

    `diff` exit codes, for CI gating of library upgrades:
        0   no newly activated chains
        2   newly activated chain(s) reported
        1   error (unknown corpus/version, malformed reference, I/O)
    A bare corpus reference resolves to its latest registered version.

OPTIONS (query):
    -e <query>            run one TQL query and exit (default: read queries
                          from stdin, one per line)
    --builtin <name>      run a built-in named query (`--arg` supplies its
                          arguments, in order)
    --arg <value>         argument for --builtin (repeatable)
    --builtins            list the built-in queries and exit
    --demo                query the bundled JDK model instead of class files
    --extended            extended source catalog for IS_SOURCE tagging
    --strict              fail on the first malformed class
    --jobs <n>            analysis worker threads (default: available parallelism)
    --max-rows <n>        row budget (default 10000; overflow sets truncated)
    --max-expansions <n>  edge-expansion budget (default 2000000)
    --timeout-ms <n>      wall-clock budget for one query

    Rows stream to stdout as JSON lines; columns, warnings, and the
    truncation footer go to stderr.

OPTIONS (serve):
    --addr <ip:port>      listen address (default 127.0.0.1:7433)
    --workers <n>         scan worker threads (default: available parallelism)
    --search-threads <n>  default per-job chain-search threads (default 1)
    --cache-dir <dir>     persist chain/CPG cache entries under <dir>
    --cache-budget-bytes <n>
                          evict the oldest on-disk cache entries once their
                          total size exceeds <n> bytes
    --registry-budget-bytes <n>
                          garbage-collect diff-job registries down to <n>
                          bytes after each snapshot (keeps the newest and
                          pinned versions)
    --map-budget-bytes <n>
                          drop the oldest memory-mapped flat CPG artifacts
                          once the live mappings exceed <n> bytes
                          (default 1 GiB)
    --per-client-inflight <n>
                          ceiling on queued+running jobs per client IP
                          (default 8); under load each client is further
                          capped at its fair share of the queue
    --watch-poll-ms <n>   watched-corpus re-fingerprint cadence (default 500)

OPTIONS (submit):
    --addr <ip:port>      daemon address (default 127.0.0.1:7433)
    --stats               print daemon-wide statistics (queue depth, cache
                          hit rates, mapped bytes, map ages, ns/expansion)
                          and exit; takes no paths
    --depth <n>           maximum chain length (default 12)
    --extended            extended source catalog
    --fresh               bypass daemon cache reads (results are still cached)
    --strict              fail the job on the first malformed class
    --search-threads <n>  chain-search threads for this job (0 = one per core)
    --no-tc-memo          disable the TC-dominance search memo
    --witness             run the witness stage on the daemon: each chain
                          comes back tiered; exit 3 when any is witnessed
    --no-archives         reject jar/war/zip inputs (checked client-side and
                          enforced by the daemon) instead of streaming them
    --no-retry            fail immediately on connection refused / queue full
                          instead of retrying with backoff
    --json                emit chains as JSON
    --query <tql>         run a TQL query against the daemon's cached CPG for
                          <path>... instead of a scan (rows stream as JSON lines)
    --builtin <name>      like --query, but a built-in named query (`--arg`
                          supplies its arguments; `tabby query --builtins` lists)
    --arg <value>         argument for --builtin (repeatable)
    --max-rows <n>        query row budget (default 10000)
    --max-expansions <n>  query edge-expansion budget (default 2000000)
    --timeout-ms <n>      query wall-clock budget
    --diff <corpus>       differential scan: the daemon registers the result
                          as the next version of <corpus> and replies with the
                          diff against the previous one (exit codes as `diff`;
                          identical content short-circuits without scanning)
    --registry <dir>      registry root for --diff (default .tabby-registry,
                          resolved client-side to an absolute path)
    --watch               with --diff: the daemon keeps watching the paths and
                          re-diffs whenever the corpus content changes";

#[derive(Default)]
struct CliOptions {
    depth: Option<usize>,
    extended: bool,
    json: bool,
    jobs: Option<usize>,
    search_threads: Option<usize>,
    no_tc_memo: bool,
    strict: bool,
    no_archives: bool,
    witness: bool,
    save_cpg: Option<PathBuf>,
    dot: Option<PathBuf>,
    sinks: Option<PathBuf>,
    registry: Option<PathBuf>,
    corpus: Option<String>,
    pin: bool,
    registry_budget: Option<u64>,
    paths: Vec<PathBuf>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                options.depth = Some(v.parse().map_err(|_| format!("bad depth {v:?}"))?);
            }
            "--extended" => options.extended = true,
            "--json" => options.json = true,
            "--strict" => options.strict = true,
            "--no-archives" => options.no_archives = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                options.jobs = Some(n.max(1));
            }
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a value")?;
                options.search_threads =
                    Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--no-tc-memo" => options.no_tc_memo = true,
            "--witness" => options.witness = true,
            "--save-cpg" => {
                let v = it.next().ok_or("--save-cpg needs a path")?;
                options.save_cpg = Some(PathBuf::from(v));
            }
            "--dot" => {
                let v = it.next().ok_or("--dot needs a path")?;
                options.dot = Some(PathBuf::from(v));
            }
            "--sinks" => {
                let v = it.next().ok_or("--sinks needs a path")?;
                options.sinks = Some(PathBuf::from(v));
            }
            "--registry" => {
                let v = it.next().ok_or("--registry needs a path")?;
                options.registry = Some(PathBuf::from(v));
            }
            "--as" => {
                let v = it.next().ok_or("--as needs a corpus reference")?;
                options.corpus = Some(v.clone());
            }
            "--pin" => options.pin = true,
            "--registry-budget-bytes" => {
                let v = it.next().ok_or("--registry-budget-bytes needs a value")?;
                options.registry_budget =
                    Some(v.parse().map_err(|_| format!("bad byte budget {v:?}"))?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

fn scan_options(cli: &CliOptions) -> Result<ScanOptions, String> {
    let mut options = ScanOptions::default();
    if let Some(depth) = cli.depth {
        options.search.max_depth = depth;
    }
    if let Some(threads) = cli.search_threads {
        options.search.search_threads = threads;
    }
    options.search.tc_memo = !cli.no_tc_memo;
    options.jobs = cli.jobs.unwrap_or_else(default_jobs);
    options.strict = cli.strict;
    options.witness = cli.witness;
    if cli.extended {
        options.sources = SourceCatalog::extended();
    }
    if let Some(path) = &cli.sinks {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--sinks {}: {e}", path.display()))?;
        options.sinks =
            serde_json::from_str(&text).map_err(|e| format!("--sinks {}: {e}", path.display()))?;
    }
    Ok(options)
}

/// Walks `paths` into the shared `(class files, archives)` split
/// ([`tabby::core::collect_inputs`]) with a clear error for nonexistent
/// inputs, for walks that find nothing scannable, and — under
/// `--no-archives` — the legacy pre-ingestion jar rejection.
fn gather_inputs(
    command: &str,
    paths: &[PathBuf],
    no_archives: bool,
) -> Result<tabby::core::CollectedInputs, String> {
    let inputs =
        tabby::core::collect_inputs(paths, false).map_err(|e| format!("{command}: {e}"))?;
    if no_archives && !inputs.archives.is_empty() {
        return Err(format!(
            "{command}: {}",
            tabby::core::archives_unsupported_error(&inputs.archives)
        ));
    }
    if inputs.is_empty() {
        let searched: Vec<String> = paths.iter().map(|p| p.display().to_string()).collect();
        return Err(format!(
            "{command}: no .class files or archives (.jar/.war/.zip) found under: {}",
            searched.join(", ")
        ));
    }
    Ok(inputs)
}

/// Reads every collected file into memory.
fn read_blobs(command: &str, files: &[PathBuf]) -> Result<Vec<Vec<u8>>, String> {
    let mut blobs = Vec::with_capacity(files.len());
    for file in files {
        match std::fs::read(file) {
            Ok(bytes) => blobs.push(bytes),
            Err(e) => return Err(format!("{command}: {}: {e}", file.display())),
        }
    }
    Ok(blobs)
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if cli.paths.is_empty() {
        eprintln!("scan: no input paths\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let inputs = match gather_inputs("scan", &cli.paths, cli.no_archives) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = if inputs.archives.is_empty() {
        // Pure `.class` corpora keep the historical in-memory path (and
        // its `blob[i]` quarantine labels).
        eprintln!("loading {} class file(s)…", inputs.class_files.len());
        let blobs = match read_blobs("scan", &inputs.class_files) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match tabby::scan_class_bytes(&blobs, &options) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scan: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!(
            "streaming {} class file(s) and {} archive(s)…",
            inputs.class_files.len(),
            inputs.archives.len()
        );
        match tabby::scan_corpus(&inputs, &tabby::ingest::IngestLimits::default(), &options) {
            Ok((report, stats)) => {
                eprintln!(
                    "ingest: {} class(es) from {} archive(s) in {} batch(es); \
                     peak batch {} bytes, {} shadowed duplicate(s)",
                    stats.classes_planned,
                    stats.archives_opened,
                    stats.batches,
                    stats.peak_batch_bytes,
                    stats.shadowed_classes
                );
                report
            }
            Err(e) => {
                eprintln!("scan: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    emit(&cli, report)
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut pb = tabby::ir::ProgramBuilder::new();
    tabby::workloads::jdk::add_jdk_model(&mut pb);
    let program = pb.build();
    eprintln!(
        "scanning the bundled JDK model ({} classes)…",
        program.classes().len()
    );
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = tabby::scan(&program, &options);
    emit(&cli, report)
}

/// `tabby snapshot --as <corpus[@vN]> <path>...` — scan and register.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(corpus_ref) = cli.corpus.clone() else {
        eprintln!("snapshot: --as <corpus[@vN]> is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let reference = match tabby::registry::parse_corpus_ref(&corpus_ref) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.paths.is_empty() {
        eprintln!("snapshot: no input paths\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let registry_root = cli
        .registry
        .clone()
        .unwrap_or_else(|| PathBuf::from(".tabby-registry"));
    let registry = match tabby::registry::Registry::open(&registry_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    let version = reference.version.unwrap_or_else(|| {
        registry
            .latest_version(&reference.corpus)
            .map_or(1, |v| v + 1)
    });
    let inputs = match gather_inputs("snapshot", &cli.paths, cli.no_archives) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut report, class_hashes) = if inputs.archives.is_empty() {
        eprintln!(
            "snapshotting {} class file(s) as {}@v{version}…",
            inputs.class_files.len(),
            reference.corpus
        );
        let blobs = match read_blobs("snapshot", &inputs.class_files) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let names: Vec<String> = inputs
            .class_files
            .iter()
            .map(|f| f.to_string_lossy().into_owned())
            .collect();
        let class_hashes = tabby::registry::hash_inputs(
            names
                .iter()
                .map(String::as_str)
                .zip(blobs.iter().map(Vec::as_slice)),
        );
        let report = match tabby::scan_class_bytes(&blobs, &options) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("snapshot: {e}");
                return ExitCode::FAILURE;
            }
        };
        (report, class_hashes)
    } else {
        eprintln!(
            "snapshotting {} class file(s) and {} archive(s) as {}@v{version}…",
            inputs.class_files.len(),
            inputs.archives.len(),
            reference.corpus
        );
        // Stream the archives; each class hashes under its full
        // `archive!/entry` provenance, so the snapshot's content key
        // tracks archive content exactly like a loose tree's.
        let lifted = match tabby::ingest::lift_corpus(
            &inputs,
            &tabby::ingest::IngestLimits::default(),
            options.strict,
        ) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("snapshot: {e}");
                return ExitCode::FAILURE;
            }
        };
        let class_hashes: std::collections::BTreeMap<String, u64> =
            lifted.class_hashes.iter().cloned().collect();
        let mut report = tabby::scan(&lifted.program, &options);
        report.diagnostics.skipped_classes = lifted.skipped;
        report.diagnostics.shadowed_classes = lifted.shadowed;
        (report, class_hashes)
    };
    if report.diagnostics.is_degraded() {
        print_degradation(&report.diagnostics);
    }
    let mut snapshot = match tabby::snapshot_scan(
        &reference.corpus,
        version,
        &mut report,
        &options,
        class_hashes,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    // An explicit `@vN` means exactly that version (and fails on a taken
    // slot); a bare name takes the next free version atomically, so two
    // concurrent snapshot runs can never mint the same reference.
    let saved = if reference.version.is_some() {
        registry.save(&snapshot)
    } else {
        registry.save_next(&mut snapshot)
    };
    match saved {
        Ok(path) => {
            eprintln!(
                "registered {} ({} chain(s), {} method(s), content key {}) at {}",
                snapshot.reference(),
                snapshot.chains.len(),
                snapshot.methods.len(),
                snapshot.content_key,
                path.display()
            );
        }
        Err(e) => {
            eprintln!("snapshot: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cli.pin {
        if let Err(e) = registry.pin(&snapshot.corpus, snapshot.version) {
            eprintln!("snapshot: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("pinned {} (exempt from GC)", snapshot.reference());
    }
    if let Some(budget) = cli.registry_budget {
        match registry.gc(&tabby::registry::GcPolicy {
            budget_bytes: budget,
            keep_latest: 2,
        }) {
            Ok(report) => {
                if !report.removed.is_empty() {
                    eprintln!(
                        "gc removed {} snapshot(s) ({} bytes freed, {} kept)",
                        report.removed.len(),
                        report.bytes_freed,
                        report.bytes_kept
                    );
                }
            }
            Err(e) => {
                eprintln!("snapshot: gc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `tabby diff <old> <new>` — pure snapshot comparison; exit 0 = no new
/// chains, 2 = newly activated chains, 1 = error.
fn cmd_diff(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let refs: Vec<String> = cli
        .paths
        .iter()
        .map(|p| p.to_string_lossy().into_owned())
        .collect();
    let [old_text, new_text] = refs.as_slice() else {
        eprintln!("diff: expected exactly two corpus references (e.g. demo@v1 demo@v2)\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let registry_root = cli
        .registry
        .clone()
        .unwrap_or_else(|| PathBuf::from(".tabby-registry"));
    let registry = match tabby::registry::Registry::open(&registry_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let load = |text: &str| -> Result<tabby::registry::Snapshot, String> {
        let reference = tabby::registry::parse_corpus_ref(text)?;
        registry.load_ref(&reference)
    };
    let (old, new) = match (load(old_text), load(new_text)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let near = tabby::pathfinder::NearChainConfig {
        max_depth: cli.depth.unwrap_or(new.depth),
        ..tabby::pathfinder::NearChainConfig::default()
    };
    let report = tabby::registry::diff_snapshots(&old, &new, &near);
    if cli.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("diff report serializes")
        );
    } else {
        println!("{report}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

#[derive(Default)]
struct QueryCli {
    query: Option<String>,
    builtin: Option<String>,
    builtin_args: Vec<String>,
    list_builtins: bool,
    demo: bool,
    extended: bool,
    strict: bool,
    no_archives: bool,
    jobs: Option<usize>,
    max_rows: Option<usize>,
    max_expansions: Option<usize>,
    timeout_ms: Option<u64>,
    paths: Vec<PathBuf>,
}

fn parse_query_options(args: &[String]) -> Result<QueryCli, String> {
    let mut options = QueryCli::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-e" | "--query" => {
                options.query = Some(it.next().ok_or("-e needs a query")?.clone());
            }
            "--builtin" => {
                options.builtin = Some(it.next().ok_or("--builtin needs a name")?.clone());
            }
            "--arg" => {
                options
                    .builtin_args
                    .push(it.next().ok_or("--arg needs a value")?.clone());
            }
            "--builtins" => options.list_builtins = true,
            "--demo" => options.demo = true,
            "--extended" => options.extended = true,
            "--strict" => options.strict = true,
            "--no-archives" => options.no_archives = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                options.jobs = Some(n.max(1));
            }
            "--max-rows" => {
                let v = it.next().ok_or("--max-rows needs a value")?;
                options.max_rows = Some(v.parse().map_err(|_| format!("bad row budget {v:?}"))?);
            }
            "--max-expansions" => {
                let v = it.next().ok_or("--max-expansions needs a value")?;
                options.max_expansions = Some(
                    v.parse()
                        .map_err(|_| format!("bad expansion budget {v:?}"))?,
                );
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                options.timeout_ms = Some(v.parse().map_err(|_| format!("bad timeout {v:?}"))?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown query option {other:?}"));
            }
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

fn print_builtins() {
    println!("{:<14} {:<18} description", "builtin", "args");
    for b in tabby::query::builtins::BUILTINS {
        println!("{:<14} {:<18} {}", b.name, b.args.join(", "), b.description);
    }
}

/// Resolves `--builtin`/`-e` into query text; `None` means REPL mode.
fn resolve_query_text(cli: &QueryCli) -> Result<Option<String>, String> {
    if let Some(name) = &cli.builtin {
        let builtin = tabby::query::builtins::find(name).ok_or_else(|| {
            format!("unknown builtin {name:?} (`tabby query --builtins` lists them)")
        })?;
        return builtin.instantiate(&cli.builtin_args).map(Some);
    }
    if !cli.builtin_args.is_empty() {
        return Err("--arg without --builtin".to_owned());
    }
    Ok(cli.query.clone())
}

/// Builds the annotated CPG a query session runs against: the bundled JDK
/// model with `--demo`, otherwise the lifted `.class` inputs. Sink and
/// source tagging matches what a scan would apply, so the `sinks` /
/// `sources` builtins answer the same way here and in `tabby scan` output.
fn build_query_cpg(cli: &QueryCli) -> Result<Cpg, String> {
    let program = if cli.demo {
        if !cli.paths.is_empty() {
            return Err("query: --demo takes no paths".to_owned());
        }
        let mut pb = tabby::ir::ProgramBuilder::new();
        tabby::workloads::jdk::add_jdk_model(&mut pb);
        pb.build()
    } else {
        if cli.paths.is_empty() {
            return Err("query: no input paths (scan a directory of .class files \
                 or a jar/war, or pass --demo for the bundled JDK model)"
                .to_owned());
        }
        let inputs = gather_inputs("query", &cli.paths, cli.no_archives)?;
        if inputs.archives.is_empty() {
            let blobs = read_blobs("query", &inputs.class_files)?;
            if cli.strict {
                tabby::ir::lift::lift_program(&blobs).map_err(|e| format!("query: {e}"))?
            } else {
                let outcome = tabby::ir::lift::lift_program_tolerant(&blobs);
                if !outcome.skipped.is_empty() {
                    eprintln!(
                        "warning: skipped {} malformed class(es); query runs over the survivors",
                        outcome.skipped.len()
                    );
                }
                outcome.program
            }
        } else {
            let lifted = tabby::ingest::lift_corpus(
                &inputs,
                &tabby::ingest::IngestLimits::default(),
                cli.strict,
            )
            .map_err(|e| format!("query: {e}"))?;
            if !lifted.skipped.is_empty() {
                eprintln!(
                    "warning: skipped {} malformed class(es); query runs over the survivors",
                    lifted.skipped.len()
                );
            }
            lifted.program
        }
    };
    let jobs = cli.jobs.unwrap_or_else(default_jobs);
    let mut cpg = Cpg::build_parallel(&program, AnalysisConfig::default(), jobs);
    SinkCatalog::paper().annotate(&mut cpg);
    let sources = if cli.extended {
        SourceCatalog::extended()
    } else {
        SourceCatalog::default()
    };
    sources.annotate(&mut cpg);
    Ok(cpg)
}

/// Runs one query and streams its rows: JSON lines on stdout, everything
/// else (columns, warnings, truncation accounting) on stderr.
fn run_and_print_query(
    graph: &tabby::graph::Graph,
    text: &str,
    cfg: &tabby::query::ExecConfig,
) -> Result<(), String> {
    let out = tabby::query::run_query(graph, text, cfg).map_err(|e| e.render(text))?;
    for warning in &out.warnings {
        eprintln!("warning: {warning}");
    }
    eprintln!(
        "columns: {} (anchor: {})",
        out.columns.join(", "),
        out.anchor
    );
    for row in &out.rows {
        println!("{}", serde_json::Value::Array(row.clone()));
    }
    eprintln!(
        "{} row(s), {} expansion(s){}",
        out.rows.len(),
        out.expansions,
        if out.truncated {
            " — truncated by budget"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> ExitCode {
    let cli = match parse_query_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if cli.list_builtins {
        print_builtins();
        return ExitCode::SUCCESS;
    }
    let text = match resolve_query_text(&cli) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("query: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cpg = match build_query_cpg(&cli) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = tabby::query::ExecConfig {
        max_rows: cli.max_rows.unwrap_or(10_000),
        max_expansions: cli.max_expansions.unwrap_or(2_000_000),
        timeout: cli.timeout_ms.map(std::time::Duration::from_millis),
    };
    if let Some(text) = text {
        // One-shot: a parse/plan error is a failing exit code.
        return match run_and_print_query(&cpg.graph, &text, &cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    // REPL: one query per stdin line; errors are printed and the loop
    // continues, so an interactive typo never ends the session.
    use std::io::{BufRead, IsTerminal, Write};
    let interactive = std::io::stdin().is_terminal();
    if interactive {
        eprintln!(
            "{} nodes, {} edges; one TQL query per line (:builtins lists named \
             queries, :quit exits)",
            cpg.graph.node_count(),
            cpg.graph.edge_count()
        );
    }
    let stdin = std::io::stdin();
    loop {
        if interactive {
            eprint!("tql> ");
            let _ = std::io::stderr().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("query: stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" | ":exit" => break,
            ":builtins" => {
                print_builtins();
                continue;
            }
            _ => {}
        }
        let text = if let Some(rest) = line.strip_prefix(":builtin ") {
            let mut words = rest.split_whitespace().map(str::to_owned);
            let Some(name) = words.next() else {
                eprintln!("query: :builtin needs a name");
                continue;
            };
            let args: Vec<String> = words.collect();
            match tabby::query::builtins::find(&name)
                .ok_or_else(|| format!("unknown builtin {name:?}"))
                .and_then(|b| b.instantiate(&args))
            {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("query: {e}");
                    continue;
                }
            }
        } else {
            line.to_owned()
        };
        if let Err(e) = run_and_print_query(&cpg.graph, &text, &cfg) {
            eprintln!("{e}");
        }
    }
    ExitCode::SUCCESS
}

/// Prints a human-readable account of everything the scan skipped,
/// quarantined, or truncated.
fn print_degradation(diagnostics: &tabby::core::ScanDiagnostics) {
    eprintln!("warning: scan {}", diagnostics.summary());
    for s in &diagnostics.skipped_classes {
        let name = s.class_name.as_deref().unwrap_or("<unparsed>");
        eprintln!("  skipped class {name} from {}: {}", s.source, s.error);
    }
    for q in &diagnostics.quarantined_methods {
        eprintln!("  quarantined method {}: {}", q.method, q.error);
    }
    if diagnostics.fixpoint_truncations > 0 {
        eprintln!(
            "  {} method fixpoint(s) hit their step budget (partial summaries kept)",
            diagnostics.fixpoint_truncations
        );
    }
    if diagnostics.search_truncated {
        eprintln!("  chain search hit its budget — the chain list may be incomplete");
    }
}

fn emit(cli: &CliOptions, report: ScanReport) -> ExitCode {
    if report.diagnostics.is_degraded() {
        if cli.strict {
            eprintln!("scan: degraded result in strict mode");
            print_degradation(&report.diagnostics);
            return ExitCode::FAILURE;
        }
        print_degradation(&report.diagnostics);
    }
    if let Some(path) = &cli.dot {
        let dot = report.cpg.graph.to_dot(Some(report.cpg.schema.signature));
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("dot: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("DOT graph saved to {}", path.display());
    }
    if let Some(path) = &cli.save_cpg {
        match serde_json::to_string(&report.cpg.graph)
            .map_err(|e| e.to_string())
            .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("CPG saved to {}", path.display()),
            Err(e) => {
                eprintln!("save-cpg: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cli.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.chains).expect("chains serialize")
        );
    } else {
        eprintln!(
            "CPG: {} nodes, {} edges; summarized {}/{} methods in {} wave(s) \
             (largest SCC {}); {} chain(s) found\n",
            report.cpg.graph.node_count(),
            report.cpg.graph.edge_count(),
            report.diagnostics.summaries_computed,
            report.diagnostics.methods_with_bodies,
            report.diagnostics.summarize_waves,
            report.diagnostics.summarize_largest_scc,
            report.chains.len()
        );
        if cli.witness {
            eprintln!(
                "witness: {} witnessed, {} plan-found, {} static-only\n",
                report.diagnostics.chains_witnessed,
                report.diagnostics.chains_plan_found,
                report
                    .chains
                    .len()
                    .saturating_sub(report.diagnostics.chains_witnessed)
                    .saturating_sub(report.diagnostics.chains_plan_found)
            );
        }
        for (i, chain) in report.chains.iter().enumerate() {
            print_chain(i, chain);
        }
    }
    chain_exit_code(&report.chains)
}

/// Prints one chain in the human format, with its witness tier (when the
/// witness stage ran) appended to the header line.
fn print_chain(i: usize, chain: &GadgetChain) {
    match chain.tier {
        Some(tier) => println!(
            "--- chain #{} [{}] [{}] ---",
            i + 1,
            chain.sink_category,
            tier
        ),
        None => println!("--- chain #{} [{}] ---", i + 1, chain.sink_category),
    }
    println!("{chain}\n");
}

/// Exit-code policy shared by `scan`/`demo`/`submit`: 0 = no chains,
/// 2 = chains found, 3 = at least one chain *witnessed* (interpreter
/// confirmed the sink is reached with the polluted argument) — the
/// strongest signal, for CI gates that only block on executable chains.
fn chain_exit_code(chains: &[GadgetChain]) -> ExitCode {
    if chains.is_empty() {
        ExitCode::SUCCESS
    } else if chains
        .iter()
        .any(|c| c.tier == Some(WitnessTier::Witnessed))
    {
        ExitCode::from(3)
    } else {
        ExitCode::from(2)
    }
}

fn parse_serve_config(args: &[String]) -> Result<tabby::service::ServiceConfig, String> {
    let mut config = tabby::service::ServiceConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                config.workers = n.max(1);
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                config.cache_dir = Some(PathBuf::from(v));
            }
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a value")?;
                config.search_threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--watch-poll-ms" => {
                let v = it.next().ok_or("--watch-poll-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad poll interval {v:?}"))?;
                config.watch_poll = std::time::Duration::from_millis(ms.max(1));
            }
            "--cache-budget-bytes" => {
                let v = it.next().ok_or("--cache-budget-bytes needs a value")?;
                config.cache_budget_bytes =
                    Some(v.parse().map_err(|_| format!("bad byte budget {v:?}"))?);
            }
            "--registry-budget-bytes" => {
                let v = it.next().ok_or("--registry-budget-bytes needs a value")?;
                config.registry_budget_bytes =
                    Some(v.parse().map_err(|_| format!("bad byte budget {v:?}"))?);
            }
            "--per-client-inflight" => {
                let v = it.next().ok_or("--per-client-inflight needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job cap {v:?}"))?;
                config.per_client_inflight = n.max(1);
            }
            "--map-budget-bytes" => {
                let v = it.next().ok_or("--map-budget-bytes needs a value")?;
                config.map_budget_bytes =
                    Some(v.parse().map_err(|_| format!("bad byte budget {v:?}"))?);
            }
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }
    Ok(config)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let config = match parse_serve_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    tabby::service::install_handlers();
    let daemon = match tabby::service::Daemon::bind(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Ok(addr) = daemon.local_addr() {
        eprintln!("tabby daemon listening on {addr} (ctrl-c or a shutdown request stops it)");
    }
    daemon.run();
    eprintln!("tabby daemon stopped");
    ExitCode::SUCCESS
}

struct SubmitOptions {
    addr: String,
    scan: tabby::service::ScanRequestOptions,
    json: bool,
    retry: bool,
    stats: bool,
    query: Option<String>,
    builtin: Option<String>,
    builtin_args: Vec<String>,
    max_rows: Option<usize>,
    max_expansions: Option<usize>,
    timeout_ms: Option<u64>,
    diff: Option<String>,
    registry: Option<PathBuf>,
    watch: bool,
    paths: Vec<PathBuf>,
}

fn parse_submit_options(args: &[String]) -> Result<SubmitOptions, String> {
    let mut options = SubmitOptions {
        addr: "127.0.0.1:7433".to_owned(),
        scan: tabby::service::ScanRequestOptions::default(),
        json: false,
        retry: true,
        stats: false,
        query: None,
        builtin: None,
        builtin_args: Vec::new(),
        max_rows: None,
        max_expansions: None,
        timeout_ms: None,
        diff: None,
        registry: None,
        watch: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                options.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                options.scan.depth = v.parse().map_err(|_| format!("bad depth {v:?}"))?;
            }
            "--extended" => options.scan.extended = true,
            "--fresh" => options.scan.fresh = true,
            "--strict" => options.scan.strict = true,
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a value")?;
                options.scan.search_threads =
                    Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--no-tc-memo" => options.scan.tc_memo = false,
            "--witness" => options.scan.witness = true,
            "--no-archives" => options.scan.no_archives = true,
            "--no-retry" => options.retry = false,
            "--stats" => options.stats = true,
            "--json" => options.json = true,
            "--query" => {
                options.query = Some(it.next().ok_or("--query needs a query")?.clone());
            }
            "--builtin" => {
                options.builtin = Some(it.next().ok_or("--builtin needs a name")?.clone());
            }
            "--arg" => {
                options
                    .builtin_args
                    .push(it.next().ok_or("--arg needs a value")?.clone());
            }
            "--max-rows" => {
                let v = it.next().ok_or("--max-rows needs a value")?;
                options.max_rows = Some(v.parse().map_err(|_| format!("bad row budget {v:?}"))?);
            }
            "--max-expansions" => {
                let v = it.next().ok_or("--max-expansions needs a value")?;
                options.max_expansions = Some(
                    v.parse()
                        .map_err(|_| format!("bad expansion budget {v:?}"))?,
                );
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                options.timeout_ms = Some(v.parse().map_err(|_| format!("bad timeout {v:?}"))?);
            }
            "--diff" => {
                options.diff = Some(it.next().ok_or("--diff needs a corpus name")?.clone());
            }
            "--registry" => {
                options.registry = Some(PathBuf::from(it.next().ok_or("--registry needs a path")?));
            }
            "--watch" => options.watch = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown submit option {other:?}"));
            }
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let options = match parse_submit_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if options.stats {
        return submit_stats(&options);
    }
    if options.paths.is_empty() {
        eprintln!("submit: no input paths\n{USAGE}");
        return ExitCode::FAILURE;
    }
    // Resolve client-side: the daemon may run in another directory, and a
    // typo'd path should fail here, not inside the daemon.
    let mut paths = Vec::with_capacity(options.paths.len());
    for p in &options.paths {
        match std::fs::canonicalize(p) {
            Ok(abs) => paths.push(abs.to_string_lossy().into_owned()),
            Err(e) => {
                eprintln!("submit: {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }
    // Classify client-side with the same helper the daemon uses, so a bad
    // input (or an archive under --no-archives) fails here with the same
    // wording instead of a round trip.
    let path_bufs: Vec<PathBuf> = paths.iter().map(PathBuf::from).collect();
    match tabby::core::collect_inputs(&path_bufs, false) {
        Ok(inputs) => {
            if options.scan.no_archives && !inputs.archives.is_empty() {
                eprintln!(
                    "submit: {}",
                    tabby::core::archives_unsupported_error(&inputs.archives)
                );
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    }
    if options.query.is_some() || options.builtin.is_some() {
        if options.diff.is_some() {
            eprintln!("submit: --diff and --query/--builtin are mutually exclusive");
            return ExitCode::FAILURE;
        }
        return submit_query(&options, paths);
    }
    if let Some(corpus) = options.diff.clone() {
        return submit_diff(&options, paths, &corpus);
    }
    if options.watch {
        eprintln!("submit: --watch requires --diff <corpus>");
        return ExitCode::FAILURE;
    }
    if !options.builtin_args.is_empty() {
        eprintln!("submit: --arg without --builtin");
        return ExitCode::FAILURE;
    }
    let policy = if options.retry {
        tabby::service::RetryPolicy::default()
    } else {
        tabby::service::RetryPolicy::none()
    };
    let response =
        match tabby::service::submit_with_retry(&options.addr, paths, options.scan, &policy) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("submit: {e}");
                return ExitCode::FAILURE;
            }
        };
    if !response.ok {
        eprintln!(
            "submit: {}",
            response.error.as_deref().unwrap_or("unknown daemon error")
        );
        return ExitCode::FAILURE;
    }
    if let Some(diagnostics) = &response.diagnostics {
        print_degradation(diagnostics);
    }
    let chains = response.chains.unwrap_or_default();
    let stats = response.stats.unwrap_or_default();
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&chains).expect("chains serialize")
        );
    } else {
        eprintln!(
            "{} chain(s); queue {} ms, lift {} ms, summarize {} ms, build {} ms, \
             search {} ms, total {} ms; cache hit {:.0}%{}",
            chains.len(),
            stats.queue_ms,
            stats.lift_ms,
            stats.summarize_ms,
            stats.build_ms,
            stats.search_ms,
            stats.total_ms,
            stats.cache_hit_ratio * 100.0,
            if stats.job_cache_hit {
                " (chains cached)"
            } else if stats.cpg_map_hit {
                " (CPG mapped)"
            } else if stats.cpg_cache_hit {
                " (CPG cached)"
            } else {
                ""
            }
        );
        if stats.cpg_map_hit {
            eprintln!(
                "search ran zero-copy off a {} byte mapping (open {} ms)",
                stats.map_bytes, stats.map_age_ms
            );
        }
        if stats.summarize_waves > 0 {
            eprintln!(
                "summarized {} of {} method(s) in {} wave(s) (largest SCC {})",
                stats.summaries_computed,
                stats.methods,
                stats.summarize_waves,
                stats.summarize_largest_scc
            );
        }
        for (i, chain) in chains.iter().enumerate() {
            print_chain(i, chain);
        }
    }
    chain_exit_code(&chains)
}

/// The `tabby submit --stats` path: fetch and print daemon-wide
/// statistics — queue and worker occupancy, per-tier cache hit rates,
/// mapped-artifact health, and search throughput.
fn submit_stats(options: &SubmitOptions) -> ExitCode {
    let reply = match tabby::service::request(
        &options.addr,
        &tabby::service::Request::Stats { id: None },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(daemon) = reply.daemon else {
        eprintln!("submit: stats reply carried no daemon payload");
        return ExitCode::FAILURE;
    };
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&daemon).expect("daemon info serializes")
        );
        return ExitCode::SUCCESS;
    }
    let ratio = |hits: u64, misses: u64| -> String {
        let total = hits + misses;
        if total == 0 {
            "n/a".to_owned()
        } else {
            format!("{:.0}%", hits as f64 * 100.0 / total as f64)
        }
    };
    println!(
        "uptime {} ms; {} worker(s); queue {}/{}; jobs {} done, {} failed, {} rejected",
        daemon.uptime_ms,
        daemon.workers,
        daemon.queue_depth,
        daemon.queue_capacity,
        daemon.jobs_done,
        daemon.jobs_failed,
        daemon.jobs_rejected
    );
    println!(
        "cache: {} class(es), {} chain set(s), {} CPG(s); hit rates: chains {} ({}H/{}M), \
         CPGs {} ({}H/{}M)",
        daemon.cached_classes,
        daemon.cached_jobs,
        daemon.cached_cpgs,
        ratio(daemon.chain_cache_hits, daemon.chain_cache_misses),
        daemon.chain_cache_hits,
        daemon.chain_cache_misses,
        ratio(daemon.cpg_cache_hits, daemon.cpg_cache_misses),
        daemon.cpg_cache_hits,
        daemon.cpg_cache_misses
    );
    println!(
        "maps: {} open, {} bytes mapped, hit rate {} ({}H/{}M), {} evicted",
        daemon.open_maps,
        daemon.bytes_mapped,
        ratio(daemon.map_hits, daemon.map_misses),
        daemon.map_hits,
        daemon.map_misses,
        daemon.maps_evicted
    );
    for (key, age_ms) in &daemon.map_ages_ms {
        println!("  map {key}: open {age_ms} ms");
    }
    println!(
        "persistence: {} quarantined, {} write failure(s), {} disk eviction(s)",
        daemon.artifacts_quarantined, daemon.artifact_write_failures, daemon.cache_disk_evictions
    );
    println!(
        "search: {} ns/expansion; watch: {} corpora, {} diffs",
        daemon.ns_per_expansion, daemon.watched_corpora, daemon.watch_diffs
    );
    ExitCode::SUCCESS
}

/// The `tabby submit --diff <corpus>` path: the daemon scans the paths,
/// registers the result as the next version of `corpus` in the registry,
/// and replies with the diff against the previous version. Exit codes
/// mirror `tabby diff`: 0 = no newly activated chains (including the
/// baseline and identical-content cases), 2 = activation(s), 1 = error.
fn submit_diff(options: &SubmitOptions, paths: Vec<String>, corpus: &str) -> ExitCode {
    let registry_root = options
        .registry
        .clone()
        .unwrap_or_else(|| PathBuf::from(".tabby-registry"));
    // The daemon may run in another working directory: make the registry
    // path absolute client-side so both sides agree on where it lives.
    if let Err(e) = std::fs::create_dir_all(&registry_root) {
        eprintln!("submit: create registry {}: {e}", registry_root.display());
        return ExitCode::FAILURE;
    }
    let registry_root = match std::fs::canonicalize(&registry_root) {
        Ok(abs) => abs.to_string_lossy().into_owned(),
        Err(e) => {
            eprintln!("submit: {}: {e}", registry_root.display());
            return ExitCode::FAILURE;
        }
    };
    let response = match tabby::service::diff(
        &options.addr,
        paths,
        &registry_root,
        corpus,
        options.watch,
        options.scan.clone(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !response.ok {
        eprintln!(
            "submit: {}",
            response.error.as_deref().unwrap_or("unknown daemon error")
        );
        return ExitCode::FAILURE;
    }
    let Some(outcome) = response.diff else {
        eprintln!("submit: daemon reply carried no diff payload");
        return ExitCode::FAILURE;
    };
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome).expect("diff outcome serializes")
        );
    } else if outcome.baseline {
        println!(
            "registered baseline {} — nothing to diff against yet",
            outcome.new_ref
        );
    } else if outcome.identical {
        println!(
            "{} is identical to {} — no new version registered",
            outcome.new_ref,
            outcome.old_ref.as_deref().unwrap_or("the previous version")
        );
    } else if let Some(report) = &outcome.report {
        println!("{report}");
    }
    if options.watch {
        eprintln!("daemon is watching this corpus; it re-diffs on content change");
    }
    let activated = outcome.report.as_ref().is_some_and(|r| !r.is_clean());
    if activated {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// The `tabby submit --query` / `--builtin` path: one TQL query against
/// the daemon's cached CPG for the given component, rows streamed to
/// stdout as JSON lines.
fn submit_query(options: &SubmitOptions, paths: Vec<String>) -> ExitCode {
    if options.query.is_some() && options.builtin.is_some() {
        eprintln!("submit: --query and --builtin are mutually exclusive");
        return ExitCode::FAILURE;
    }
    let text = if let Some(name) = &options.builtin {
        match tabby::query::builtins::find(name)
            .ok_or_else(|| {
                format!("unknown builtin {name:?} (`tabby query --builtins` lists them)")
            })
            .and_then(|b| b.instantiate(&options.builtin_args))
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("submit: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if !options.builtin_args.is_empty() {
        eprintln!("submit: --arg without --builtin");
        return ExitCode::FAILURE;
    } else {
        options
            .query
            .clone()
            .expect("caller checked query presence")
    };
    let qopts = tabby::service::QueryRequestOptions {
        extended: options.scan.extended,
        fresh: options.scan.fresh,
        max_rows: options.max_rows.unwrap_or(10_000),
        max_expansions: options.max_expansions.unwrap_or(2_000_000),
        timeout_ms: options.timeout_ms,
    };
    let reply = match tabby::service::query(&options.addr, paths, &text, &qopts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !reply.header.ok {
        eprintln!(
            "submit: {}",
            reply
                .header
                .error
                .as_deref()
                .unwrap_or("unknown daemon error")
        );
        return ExitCode::FAILURE;
    }
    for warning in reply.header.warnings.as_deref().unwrap_or_default() {
        eprintln!("warning: {warning}");
    }
    eprintln!(
        "columns: {} (anchor: {})",
        reply
            .header
            .columns
            .as_deref()
            .unwrap_or_default()
            .join(", "),
        reply.header.anchor.as_deref().unwrap_or("?")
    );
    for row in &reply.rows {
        println!("{}", serde_json::Value::Array(row.clone()));
    }
    let stats = reply.header.stats.clone().unwrap_or_default();
    eprintln!(
        "{} row(s), {} expansion(s){}; queue {} ms, search {} ms, total {} ms{}",
        reply.rows.len(),
        reply.expansions,
        if reply.truncated {
            " — truncated by budget"
        } else {
            ""
        },
        stats.queue_ms,
        stats.search_ms,
        stats.total_ms,
        if stats.cpg_cache_hit {
            " (CPG cached)"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

fn cmd_sinks(args: &[String]) -> ExitCode {
    let catalog = SinkCatalog::paper();
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&catalog).expect("catalog serializes")
        );
        return ExitCode::SUCCESS;
    }
    println!("{:<62} {:<6} TC", "Sink method", "Type");
    for sink in catalog.entries() {
        println!(
            "{:<62} {:<6} {:?}",
            format!("{}.{}()", sink.class, sink.method),
            sink.category.as_str(),
            sink.trigger_condition
        );
    }
    ExitCode::SUCCESS
}
