//! The `tabby` command-line scanner.
//!
//! ```text
//! tabby scan <path>...        scan .class files (or directories of them)
//! tabby demo                  scan the bundled JDK model (finds URLDNS)
//! tabby sinks                 print the sink catalog (Table VII)
//! ```
//!
//! Options for `scan`/`demo`:
//!
//! ```text
//! --depth <n>        maximum chain length (default 12)
//! --extended         use the extended source catalog (XStream-style entry points)
//! --sinks <file>     custom sink catalog (JSON; `tabby sinks --json` emits one)
//! --json             emit the chains as JSON
//! --save-cpg <file>  persist the code property graph as JSON
//! --dot <file>       export the code property graph as Graphviz DOT
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tabby::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "scan" => cmd_scan(rest),
        "demo" => cmd_demo(rest),
        "sinks" => cmd_sinks(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tabby — automated gadget-chain detection for Java deserialization

USAGE:
    tabby scan [OPTIONS] <path>...   scan .class files / directories
    tabby demo [OPTIONS]             scan the bundled JDK model
    tabby sinks                      print the sink catalog (Table VII)

OPTIONS:
    --depth <n>        maximum chain length (default 12)
    --extended         extended source catalog (hashCode/equals/compare/toString)
    --sinks <file>     custom sink catalog (JSON; see `tabby sinks --json`)
    --json             emit chains as JSON
    --save-cpg <file>  persist the code property graph as JSON
    --dot <file>       export the code property graph as Graphviz DOT";

#[derive(Default)]
struct CliOptions {
    depth: Option<usize>,
    extended: bool,
    json: bool,
    save_cpg: Option<PathBuf>,
    dot: Option<PathBuf>,
    sinks: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                options.depth = Some(v.parse().map_err(|_| format!("bad depth {v:?}"))?);
            }
            "--extended" => options.extended = true,
            "--json" => options.json = true,
            "--save-cpg" => {
                let v = it.next().ok_or("--save-cpg needs a path")?;
                options.save_cpg = Some(PathBuf::from(v));
            }
            "--dot" => {
                let v = it.next().ok_or("--dot needs a path")?;
                options.dot = Some(PathBuf::from(v));
            }
            "--sinks" => {
                let v = it.next().ok_or("--sinks needs a path")?;
                options.sinks = Some(PathBuf::from(v));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

fn scan_options(cli: &CliOptions) -> Result<ScanOptions, String> {
    let mut options = ScanOptions::default();
    if let Some(depth) = cli.depth {
        options.search.max_depth = depth;
    }
    if cli.extended {
        options.sources = SourceCatalog::extended();
    }
    if let Some(path) = &cli.sinks {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--sinks {}: {e}", path.display()))?;
        options.sinks = serde_json::from_str(&text)
            .map_err(|e| format!("--sinks {}: {e}", path.display()))?;
    }
    Ok(options)
}

fn collect_class_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        for entry in std::fs::read_dir(path)? {
            collect_class_files(&entry?.path(), out)?;
        }
    } else if path.extension().and_then(|e| e.to_str()) == Some("class") {
        out.push(path.to_owned());
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if cli.paths.is_empty() {
        eprintln!("scan: no input paths\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut files = Vec::new();
    for path in &cli.paths {
        if let Err(e) = collect_class_files(path, &mut files) {
            eprintln!("scan: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if files.is_empty() {
        eprintln!("scan: no .class files under the given paths");
        return ExitCode::FAILURE;
    }
    eprintln!("loading {} class file(s)…", files.len());
    let mut blobs = Vec::with_capacity(files.len());
    for file in &files {
        match std::fs::read(file) {
            Ok(bytes) => blobs.push(bytes),
            Err(e) => {
                eprintln!("scan: {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match tabby::scan_class_bytes(&blobs, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit(&cli, report)
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut pb = tabby::ir::ProgramBuilder::new();
    tabby::workloads::jdk::add_jdk_model(&mut pb);
    let program = pb.build();
    eprintln!(
        "scanning the bundled JDK model ({} classes)…",
        program.classes().len()
    );
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = tabby::scan(&program, &options);
    emit(&cli, report)
}

fn emit(cli: &CliOptions, report: ScanReport) -> ExitCode {
    if let Some(path) = &cli.dot {
        let dot = report.cpg.graph.to_dot(Some(report.cpg.schema.signature));
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("dot: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("DOT graph saved to {}", path.display());
    }
    if let Some(path) = &cli.save_cpg {
        match serde_json::to_string(&report.cpg.graph)
            .map_err(|e| e.to_string())
            .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("CPG saved to {}", path.display()),
            Err(e) => {
                eprintln!("save-cpg: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cli.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.chains).expect("chains serialize")
        );
    } else {
        eprintln!(
            "CPG: {} nodes, {} edges; {} chain(s) found\n",
            report.cpg.graph.node_count(),
            report.cpg.graph.edge_count(),
            report.chains.len()
        );
        for (i, chain) in report.chains.iter().enumerate() {
            println!("--- chain #{} [{}] ---", i + 1, chain.sink_category);
            println!("{chain}\n");
        }
    }
    if report.chains.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Nonzero exit when chains are found, for CI gating.
        ExitCode::from(2)
    }
}

fn cmd_sinks(args: &[String]) -> ExitCode {
    let catalog = SinkCatalog::paper();
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&catalog).expect("catalog serializes")
        );
        return ExitCode::SUCCESS;
    }
    println!("{:<62} {:<6} TC", "Sink method", "Type");
    for sink in catalog.entries() {
        println!(
            "{:<62} {:<6} {:?}",
            format!("{}.{}()", sink.class, sink.method),
            sink.category.as_str(),
            sink.trigger_condition
        );
    }
    ExitCode::SUCCESS
}
