//! The `tabby` command-line scanner.
//!
//! ```text
//! tabby scan <path>...        scan .class files (or directories of them)
//! tabby demo                  scan the bundled JDK model (finds URLDNS)
//! tabby sinks                 print the sink catalog (Table VII)
//! tabby serve                 run the persistent scan daemon
//! tabby submit <path>...      submit a scan to a running daemon
//! ```
//!
//! Options for `scan`/`demo`:
//!
//! ```text
//! --depth <n>           maximum chain length (default 12)
//! --extended            use the extended source catalog (XStream-style entry points)
//! --jobs <n>            analysis worker threads (default: available parallelism)
//! --search-threads <n>  chain-search worker threads (0 = one per core)
//! --no-tc-memo          disable the TC-dominance search memo
//! --sinks <file>        custom sink catalog (JSON; `tabby sinks --json` emits one)
//! --json                emit the chains as JSON
//! --save-cpg <file>     persist the code property graph as JSON
//! --dot <file>          export the code property graph as Graphviz DOT
//! ```
//!
//! The daemon protocol, its options, and the cache layout are documented in
//! the repository README under "Running as a service".

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tabby::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "scan" => cmd_scan(rest),
        "demo" => cmd_demo(rest),
        "sinks" => cmd_sinks(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tabby — automated gadget-chain detection for Java deserialization

USAGE:
    tabby scan [OPTIONS] <path>...   scan .class files / directories
    tabby demo [OPTIONS]             scan the bundled JDK model
    tabby sinks                      print the sink catalog (Table VII)
    tabby serve [OPTIONS]            run the persistent scan daemon
    tabby submit [OPTIONS] <path>... submit a scan to a running daemon

OPTIONS (scan/demo):
    --depth <n>           maximum chain length (default 12)
    --extended            extended source catalog (hashCode/equals/compare/toString)
    --jobs <n>            analysis worker threads (default: available parallelism)
    --search-threads <n>  chain-search worker threads (default 1; 0 = one per
                          core; the chain set is identical at any count)
    --no-tc-memo          disable the TC-dominance search memo (same chains,
                          more expansions — for benchmarking)
    --sinks <file>        custom sink catalog (JSON; see `tabby sinks --json`)
    --strict              fail on the first malformed class instead of
                          quarantining it and scanning the survivors
    --json                emit chains as JSON
    --save-cpg <file>     persist the code property graph as JSON
    --dot <file>          export the code property graph as Graphviz DOT

OPTIONS (serve):
    --addr <ip:port>      listen address (default 127.0.0.1:7433)
    --workers <n>         scan worker threads (default: available parallelism)
    --search-threads <n>  default per-job chain-search threads (default 1)
    --cache-dir <dir>     persist chain/CPG cache entries under <dir>

OPTIONS (submit):
    --addr <ip:port>      daemon address (default 127.0.0.1:7433)
    --depth <n>           maximum chain length (default 12)
    --extended            extended source catalog
    --fresh               bypass daemon cache reads (results are still cached)
    --strict              fail the job on the first malformed class
    --search-threads <n>  chain-search threads for this job (0 = one per core)
    --no-tc-memo          disable the TC-dominance search memo
    --no-retry            fail immediately on connection refused / queue full
                          instead of retrying with backoff
    --json                emit chains as JSON";

#[derive(Default)]
struct CliOptions {
    depth: Option<usize>,
    extended: bool,
    json: bool,
    jobs: Option<usize>,
    search_threads: Option<usize>,
    no_tc_memo: bool,
    strict: bool,
    save_cpg: Option<PathBuf>,
    dot: Option<PathBuf>,
    sinks: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                options.depth = Some(v.parse().map_err(|_| format!("bad depth {v:?}"))?);
            }
            "--extended" => options.extended = true,
            "--json" => options.json = true,
            "--strict" => options.strict = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                options.jobs = Some(n.max(1));
            }
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a value")?;
                options.search_threads =
                    Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--no-tc-memo" => options.no_tc_memo = true,
            "--save-cpg" => {
                let v = it.next().ok_or("--save-cpg needs a path")?;
                options.save_cpg = Some(PathBuf::from(v));
            }
            "--dot" => {
                let v = it.next().ok_or("--dot needs a path")?;
                options.dot = Some(PathBuf::from(v));
            }
            "--sinks" => {
                let v = it.next().ok_or("--sinks needs a path")?;
                options.sinks = Some(PathBuf::from(v));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

fn scan_options(cli: &CliOptions) -> Result<ScanOptions, String> {
    let mut options = ScanOptions::default();
    if let Some(depth) = cli.depth {
        options.search.max_depth = depth;
    }
    if let Some(threads) = cli.search_threads {
        options.search.search_threads = threads;
    }
    options.search.tc_memo = !cli.no_tc_memo;
    options.jobs = cli.jobs.unwrap_or_else(default_jobs);
    options.strict = cli.strict;
    if cli.extended {
        options.sources = SourceCatalog::extended();
    }
    if let Some(path) = &cli.sinks {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--sinks {}: {e}", path.display()))?;
        options.sinks =
            serde_json::from_str(&text).map_err(|e| format!("--sinks {}: {e}", path.display()))?;
    }
    Ok(options)
}

fn collect_class_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        for entry in std::fs::read_dir(path)? {
            collect_class_files(&entry?.path(), out)?;
        }
    } else if path.extension().and_then(|e| e.to_str()) == Some("class") {
        out.push(path.to_owned());
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if cli.paths.is_empty() {
        eprintln!("scan: no input paths\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut files = Vec::new();
    for path in &cli.paths {
        // A nonexistent input must be a clear error, not a silent empty
        // scan: the walk below skips non-`.class` names without checking
        // that they exist.
        if let Err(e) = std::fs::metadata(path) {
            eprintln!("scan: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = collect_class_files(path, &mut files) {
            eprintln!("scan: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if files.is_empty() {
        let searched: Vec<String> = cli.paths.iter().map(|p| p.display().to_string()).collect();
        eprintln!("scan: no .class files found under: {}", searched.join(", "));
        return ExitCode::FAILURE;
    }
    eprintln!("loading {} class file(s)…", files.len());
    let mut blobs = Vec::with_capacity(files.len());
    for file in &files {
        match std::fs::read(file) {
            Ok(bytes) => blobs.push(bytes),
            Err(e) => {
                eprintln!("scan: {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match tabby::scan_class_bytes(&blobs, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan: {e}");
            return ExitCode::FAILURE;
        }
    };
    emit(&cli, report)
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let cli = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut pb = tabby::ir::ProgramBuilder::new();
    tabby::workloads::jdk::add_jdk_model(&mut pb);
    let program = pb.build();
    eprintln!(
        "scanning the bundled JDK model ({} classes)…",
        program.classes().len()
    );
    let options = match scan_options(&cli) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = tabby::scan(&program, &options);
    emit(&cli, report)
}

/// Prints a human-readable account of everything the scan skipped,
/// quarantined, or truncated.
fn print_degradation(diagnostics: &tabby::core::ScanDiagnostics) {
    eprintln!("warning: scan {}", diagnostics.summary());
    for s in &diagnostics.skipped_classes {
        let name = s.class_name.as_deref().unwrap_or("<unparsed>");
        eprintln!("  skipped class {name} from {}: {}", s.source, s.error);
    }
    for q in &diagnostics.quarantined_methods {
        eprintln!("  quarantined method {}: {}", q.method, q.error);
    }
    if diagnostics.fixpoint_truncations > 0 {
        eprintln!(
            "  {} method fixpoint(s) hit their step budget (partial summaries kept)",
            diagnostics.fixpoint_truncations
        );
    }
    if diagnostics.search_truncated {
        eprintln!("  chain search hit its budget — the chain list may be incomplete");
    }
}

fn emit(cli: &CliOptions, report: ScanReport) -> ExitCode {
    if report.diagnostics.is_degraded() {
        if cli.strict {
            eprintln!("scan: degraded result in strict mode");
            print_degradation(&report.diagnostics);
            return ExitCode::FAILURE;
        }
        print_degradation(&report.diagnostics);
    }
    if let Some(path) = &cli.dot {
        let dot = report.cpg.graph.to_dot(Some(report.cpg.schema.signature));
        if let Err(e) = std::fs::write(path, dot) {
            eprintln!("dot: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("DOT graph saved to {}", path.display());
    }
    if let Some(path) = &cli.save_cpg {
        match serde_json::to_string(&report.cpg.graph)
            .map_err(|e| e.to_string())
            .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("CPG saved to {}", path.display()),
            Err(e) => {
                eprintln!("save-cpg: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cli.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.chains).expect("chains serialize")
        );
    } else {
        eprintln!(
            "CPG: {} nodes, {} edges; summarized {}/{} methods in {} wave(s) \
             (largest SCC {}); {} chain(s) found\n",
            report.cpg.graph.node_count(),
            report.cpg.graph.edge_count(),
            report.diagnostics.summaries_computed,
            report.diagnostics.methods_with_bodies,
            report.diagnostics.summarize_waves,
            report.diagnostics.summarize_largest_scc,
            report.chains.len()
        );
        for (i, chain) in report.chains.iter().enumerate() {
            println!("--- chain #{} [{}] ---", i + 1, chain.sink_category);
            println!("{chain}\n");
        }
    }
    if report.chains.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Nonzero exit when chains are found, for CI gating.
        ExitCode::from(2)
    }
}

fn parse_serve_config(args: &[String]) -> Result<tabby::service::ServiceConfig, String> {
    let mut config = tabby::service::ServiceConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                config.workers = n.max(1);
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                config.cache_dir = Some(PathBuf::from(v));
            }
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a value")?;
                config.search_threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }
    Ok(config)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let config = match parse_serve_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    tabby::service::install_handlers();
    let daemon = match tabby::service::Daemon::bind(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Ok(addr) = daemon.local_addr() {
        eprintln!("tabby daemon listening on {addr} (ctrl-c or a shutdown request stops it)");
    }
    daemon.run();
    eprintln!("tabby daemon stopped");
    ExitCode::SUCCESS
}

struct SubmitOptions {
    addr: String,
    scan: tabby::service::ScanRequestOptions,
    json: bool,
    retry: bool,
    paths: Vec<PathBuf>,
}

fn parse_submit_options(args: &[String]) -> Result<SubmitOptions, String> {
    let mut options = SubmitOptions {
        addr: "127.0.0.1:7433".to_owned(),
        scan: tabby::service::ScanRequestOptions::default(),
        json: false,
        retry: true,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                options.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                options.scan.depth = v.parse().map_err(|_| format!("bad depth {v:?}"))?;
            }
            "--extended" => options.scan.extended = true,
            "--fresh" => options.scan.fresh = true,
            "--strict" => options.scan.strict = true,
            "--search-threads" => {
                let v = it.next().ok_or("--search-threads needs a value")?;
                options.scan.search_threads =
                    Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--no-tc-memo" => options.scan.tc_memo = false,
            "--no-retry" => options.retry = false,
            "--json" => options.json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown submit option {other:?}"));
            }
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let options = match parse_submit_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if options.paths.is_empty() {
        eprintln!("submit: no input paths\n{USAGE}");
        return ExitCode::FAILURE;
    }
    // Resolve client-side: the daemon may run in another directory, and a
    // typo'd path should fail here, not inside the daemon.
    let mut paths = Vec::with_capacity(options.paths.len());
    for p in &options.paths {
        match std::fs::canonicalize(p) {
            Ok(abs) => paths.push(abs.to_string_lossy().into_owned()),
            Err(e) => {
                eprintln!("submit: {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let policy = if options.retry {
        tabby::service::RetryPolicy::default()
    } else {
        tabby::service::RetryPolicy::none()
    };
    let response =
        match tabby::service::submit_with_retry(&options.addr, paths, options.scan, &policy) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("submit: {e}");
                return ExitCode::FAILURE;
            }
        };
    if !response.ok {
        eprintln!(
            "submit: {}",
            response.error.as_deref().unwrap_or("unknown daemon error")
        );
        return ExitCode::FAILURE;
    }
    if let Some(diagnostics) = &response.diagnostics {
        print_degradation(diagnostics);
    }
    let chains = response.chains.unwrap_or_default();
    let stats = response.stats.unwrap_or_default();
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&chains).expect("chains serialize")
        );
    } else {
        eprintln!(
            "{} chain(s); queue {} ms, lift {} ms, summarize {} ms, build {} ms, \
             search {} ms, total {} ms; cache hit {:.0}%{}",
            chains.len(),
            stats.queue_ms,
            stats.lift_ms,
            stats.summarize_ms,
            stats.build_ms,
            stats.search_ms,
            stats.total_ms,
            stats.cache_hit_ratio * 100.0,
            if stats.job_cache_hit {
                " (chains cached)"
            } else if stats.cpg_cache_hit {
                " (CPG cached)"
            } else {
                ""
            }
        );
        if stats.summarize_waves > 0 {
            eprintln!(
                "summarized {} of {} method(s) in {} wave(s) (largest SCC {})",
                stats.summaries_computed,
                stats.methods,
                stats.summarize_waves,
                stats.summarize_largest_scc
            );
        }
        for (i, chain) in chains.iter().enumerate() {
            println!("--- chain #{} [{}] ---", i + 1, chain.sink_category);
            println!("{chain}\n");
        }
    }
    if chains.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_sinks(args: &[String]) -> ExitCode {
    let catalog = SinkCatalog::paper();
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&catalog).expect("catalog serializes")
        );
        return ExitCode::SUCCESS;
    }
    println!("{:<62} {:<6} TC", "Sink method", "Type");
    for sink in catalog.entries() {
        println!(
            "{:<62} {:<6} {:?}",
            format!("{}.{}()", sink.class, sink.method),
            sink.category.as_str(),
            sink.trigger_condition
        );
    }
    ExitCode::SUCCESS
}
